//! Pure, message-free Chord routing state.
//!
//! Everything here is a deterministic function of the node's knowledge
//! (predecessor, successor list, finger table), which makes the
//! routing and maintenance decisions unit-testable without a network.
//! The message-passing protocol around this state lives in
//! [`crate::proto`].

use simnet::NodeId;

use crate::id::ChordId;

/// A reference to a DHT peer: its ring identifier and its underlay
/// address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PeerRef {
    /// Ring position.
    pub id: ChordId,
    /// Underlay address to send messages to.
    pub node: NodeId,
}

/// Tunables of the Chord instance.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Length of the successor list (robustness to consecutive
    /// failures).
    pub successor_list_len: usize,
    /// Routing TTL: a routed message that exceeds this many hops is
    /// delivered at the current node (the application decides how to
    /// recover).
    pub max_hops: u8,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list_len: 8,
            max_hops: 64,
        }
    }
}

/// The local routing state of one Chord peer.
#[derive(Clone, Debug)]
pub struct ChordState {
    cfg: ChordConfig,
    me: PeerRef,
    predecessor: Option<PeerRef>,
    /// Immediate successor first; deduplicated; length bounded by
    /// `cfg.successor_list_len`.
    successors: Vec<PeerRef>,
    /// `fingers[i]` ≈ successor(me.id + 2^i).
    fingers: Vec<Option<PeerRef>>,
    next_finger: u32,
}

impl ChordState {
    /// A fresh single-node ring.
    pub fn new(me: PeerRef, cfg: ChordConfig) -> Self {
        ChordState {
            cfg,
            me,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; ChordId::BITS as usize],
            next_finger: 0,
        }
    }

    /// This peer's reference.
    pub fn me(&self) -> PeerRef {
        self.me
    }

    /// This peer's ring id.
    pub fn id(&self) -> ChordId {
        self.me.id
    }

    /// The configuration.
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<PeerRef> {
        self.predecessor
    }

    /// Immediate successor, if any.
    pub fn successor(&self) -> Option<PeerRef> {
        self.successors.first().copied()
    }

    /// The whole successor list.
    pub fn successors(&self) -> &[PeerRef] {
        &self.successors
    }

    /// The finger table (sparse).
    pub fn fingers(&self) -> impl Iterator<Item = PeerRef> + '_ {
        self.fingers.iter().flatten().copied()
    }

    /// Is this node responsible for `key`? True when `key ∈
    /// (predecessor, me]`, or when the node knows no one else.
    pub fn is_responsible(&self, key: ChordId) -> bool {
        match self.predecessor {
            Some(p) => ChordId::in_open_closed(p.id, self.me.id, key),
            // No predecessor: responsible unless a known successor is
            // a better owner (conservative bootstrap behaviour).
            None => match self.successor() {
                Some(s) => !ChordId::in_open_closed(self.me.id, s.id, key) || s.id == self.me.id,
                None => true,
            },
        }
    }

    /// Every peer this node knows: fingers, successor list and
    /// predecessor (deduplicated).
    pub fn known_peers(&self) -> Vec<PeerRef> {
        let mut out: Vec<PeerRef> = Vec::with_capacity(self.successors.len() + 8);
        out.extend(self.successors.iter().copied());
        out.extend(self.fingers.iter().flatten().copied());
        if let Some(p) = self.predecessor {
            out.push(p);
        }
        out.sort_by_key(|p| p.id.0);
        out.dedup_by_key(|p| p.node);
        out
    }

    /// The classic `closest_preceding_node`: the known peer with the
    /// largest id in `(me, key)`, i.e. the longest safe jump toward
    /// `key` that cannot overshoot the owner.
    pub fn closest_preceding(&self, key: ChordId) -> Option<PeerRef> {
        self.known_peers()
            .into_iter()
            .filter(|p| p.node != self.me.node && ChordId::in_open(self.me.id, key, p.id))
            .max_by_key(|p| self.me.id.clockwise_distance(p.id))
    }

    /// The paper's `local_lookup(key)` (Algorithm 1): the best
    /// candidate for `key` among this node and its routing table.
    /// Returns `me` when this node believes it is the owner.
    pub fn local_lookup(&self, key: ChordId) -> PeerRef {
        if self.is_responsible(key) {
            return self.me;
        }
        if let Some(s) = self.successor() {
            if ChordId::in_open_closed(self.me.id, s.id, key) {
                return s;
            }
        }
        self.closest_preceding(key)
            .or(self.successor())
            .unwrap_or(self.me)
    }

    /// Install a peer into the finger table slot it fixes.
    pub fn set_finger(&mut self, index: u32, peer: PeerRef) {
        if peer.node == self.me.node {
            self.fingers[index as usize] = None;
        } else {
            self.fingers[index as usize] = Some(peer);
        }
    }

    /// Round-robin finger index to refresh next, with its target key.
    pub fn next_finger_target(&mut self) -> (u32, ChordId) {
        let i = self.next_finger;
        self.next_finger = (self.next_finger + 1) % ChordId::BITS;
        (i, self.me.id.finger_target(i))
    }

    /// Adopt `s` as immediate successor (join/repair), keeping the
    /// rest of the list.
    pub fn adopt_successor(&mut self, s: PeerRef) {
        if s.node == self.me.node {
            return;
        }
        self.successors.retain(|p| p.node != s.node);
        self.successors.insert(0, s);
        self.successors.truncate(self.cfg.successor_list_len);
    }

    /// Merge the successor's own list into ours (stabilization step):
    /// `ours = [succ] ++ succ_list_of_succ`, truncated and deduped.
    pub fn refresh_successor_list(&mut self, succ: PeerRef, its_list: &[PeerRef]) {
        let mut merged = Vec::with_capacity(self.cfg.successor_list_len);
        merged.push(succ);
        for p in its_list {
            if p.node != self.me.node && !merged.iter().any(|q| q.node == p.node) {
                merged.push(*p);
            }
            if merged.len() >= self.cfg.successor_list_len {
                break;
            }
        }
        self.successors = merged;
    }

    /// Chord's `notify`: `candidate` claims to be our predecessor.
    /// Accept if we have none or it sits between the current
    /// predecessor and us. Returns true if adopted.
    pub fn on_notify(&mut self, candidate: PeerRef) -> bool {
        if candidate.node == self.me.node {
            return false;
        }
        let adopt = match self.predecessor {
            None => true,
            Some(p) => ChordId::in_open(p.id, self.me.id, candidate.id),
        };
        if adopt {
            self.predecessor = Some(candidate);
        }
        adopt
    }

    /// Stabilization: our successor reported its predecessor `x`. If
    /// `x` sits between us and the successor, it becomes our new
    /// successor. Returns the peer we should `notify`.
    pub fn on_successor_predecessor(&mut self, succ: PeerRef, x: Option<PeerRef>) -> PeerRef {
        if let Some(x) = x {
            if x.node != self.me.node && ChordId::in_open(self.me.id, succ.id, x.id) {
                self.adopt_successor(x);
                return x;
            }
        }
        succ
    }

    /// Purge a dead peer from every routing structure. Returns true if
    /// anything referenced it.
    pub fn on_peer_dead(&mut self, node: NodeId) -> bool {
        let mut touched = false;
        if self.predecessor.map(|p| p.node) == Some(node) {
            self.predecessor = None;
            touched = true;
        }
        let before = self.successors.len();
        self.successors.retain(|p| p.node != node);
        touched |= self.successors.len() != before;
        for f in &mut self.fingers {
            if f.map(|p| p.node) == Some(node) {
                *f = None;
                touched = true;
            }
        }
        touched
    }

    /// Directly install full state (used to bootstrap the paper's
    /// "stable D-ring" start condition and by tests).
    pub fn install(
        &mut self,
        predecessor: Option<PeerRef>,
        successors: Vec<PeerRef>,
        fingers: Vec<Option<PeerRef>>,
    ) {
        assert_eq!(
            fingers.len(),
            ChordId::BITS as usize,
            "finger table must have {} slots",
            ChordId::BITS
        );
        self.predecessor = predecessor;
        self.successors = successors;
        self.successors.truncate(self.cfg.successor_list_len);
        self.fingers = fingers;
    }
}

/// Compute exact, globally consistent Chord states for a set of
/// members — the paper's evaluation "starts with a stable D-ring", and
/// Squirrel likewise starts from a converged ring.
///
/// Members must have distinct ids and nodes. Returns states in the
/// same order as `members`.
pub fn stable_ring(members: &[PeerRef], cfg: &ChordConfig) -> Vec<ChordState> {
    assert!(!members.is_empty(), "ring needs at least one member");
    let mut sorted: Vec<PeerRef> = members.to_vec();
    sorted.sort_by_key(|p| p.id.0);
    for w in sorted.windows(2) {
        assert!(w[0].id != w[1].id, "duplicate ring id {:?}", w[0].id);
    }
    let n = sorted.len();
    // successor(key): first member with id >= key, wrapping.
    let successor_of_key = |key: ChordId| -> PeerRef {
        match sorted.binary_search_by(|p| p.id.0.cmp(&key.0)) {
            Ok(i) => sorted[i],
            Err(i) => sorted[i % n],
        }
    };

    members
        .iter()
        .map(|me| {
            let pos = sorted
                .iter()
                .position(|p| p.node == me.node)
                .expect("member in ring");
            let mut st = ChordState::new(*me, cfg.clone());
            let pred = sorted[(pos + n - 1) % n];
            let succs: Vec<PeerRef> = (1..=cfg.successor_list_len.min(n - 1))
                .map(|d| sorted[(pos + d) % n])
                .collect();
            let fingers: Vec<Option<PeerRef>> = (0..ChordId::BITS)
                .map(|i| {
                    let t = me.id.finger_target(i);
                    let s = successor_of_key(t);
                    if s.node == me.node {
                        None
                    } else {
                        Some(s)
                    }
                })
                .collect();
            let pred = if n == 1 { None } else { Some(pred) };
            st.install(pred, succs, fingers);
            st
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, node: u32) -> PeerRef {
        PeerRef {
            id: ChordId(id),
            node: NodeId(node),
        }
    }

    fn ring(ids: &[u64]) -> Vec<ChordState> {
        let members: Vec<PeerRef> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| peer(*id, i as u32))
            .collect();
        stable_ring(&members, &ChordConfig::default())
    }

    #[test]
    fn single_node_owns_everything() {
        let sts = ring(&[42]);
        assert!(sts[0].is_responsible(ChordId(0)));
        assert!(sts[0].is_responsible(ChordId(u64::MAX)));
        assert_eq!(sts[0].local_lookup(ChordId(7)).node, NodeId(0));
    }

    #[test]
    fn stable_ring_structure() {
        let sts = ring(&[10, 20, 30, 40]);
        // Node with id 20: predecessor 10, successor 30.
        let s20 = &sts[1];
        assert_eq!(s20.predecessor().unwrap().id, ChordId(10));
        assert_eq!(s20.successor().unwrap().id, ChordId(30));
        // Responsibility: (10, 20].
        assert!(s20.is_responsible(ChordId(15)));
        assert!(s20.is_responsible(ChordId(20)));
        assert!(!s20.is_responsible(ChordId(10)));
        assert!(!s20.is_responsible(ChordId(25)));
        // Wrap-around: node 10 owns (40, 10].
        assert!(sts[0].is_responsible(ChordId(5)));
        assert!(sts[0].is_responsible(ChordId(u64::MAX)));
    }

    #[test]
    fn local_lookup_finds_owner_or_progress() {
        let sts = ring(&[10, 20, 30, 40]);
        // From node 10, key 25 is owned by 30; 10's successor is 20 so
        // lookup must return a node strictly closer to 30.
        let next = sts[0].local_lookup(ChordId(25));
        assert!(next.id == ChordId(20) || next.id == ChordId(30));
        // Owner lookup is identity.
        assert_eq!(sts[2].local_lookup(ChordId(25)).id, ChordId(30));
    }

    #[test]
    fn closest_preceding_never_overshoots() {
        let sts = ring(&[0, 1 << 16, 1 << 32, 1 << 48]);
        let st = &sts[0];
        for key in [5u64, 1 << 20, 1 << 40, 1 << 60, u64::MAX] {
            if let Some(p) = st.closest_preceding(ChordId(key)) {
                assert!(ChordId::in_open(st.id(), ChordId(key), p.id));
            }
        }
    }

    #[test]
    fn notify_adopts_closer_predecessor() {
        let mut st = ChordState::new(peer(100, 0), ChordConfig::default());
        assert!(st.on_notify(peer(50, 1)));
        assert_eq!(st.predecessor().unwrap().id, ChordId(50));
        // 80 ∈ (50, 100): closer predecessor, adopt.
        assert!(st.on_notify(peer(80, 2)));
        // 20 ∉ (80, 100): reject.
        assert!(!st.on_notify(peer(20, 3)));
        assert_eq!(st.predecessor().unwrap().id, ChordId(80));
    }

    #[test]
    fn stabilize_adopts_interposed_node() {
        let mut st = ChordState::new(peer(10, 0), ChordConfig::default());
        st.adopt_successor(peer(30, 2));
        // Successor 30 reports predecessor 20: 20 ∈ (10, 30) → new succ.
        let to_notify = st.on_successor_predecessor(peer(30, 2), Some(peer(20, 1)));
        assert_eq!(to_notify.id, ChordId(20));
        assert_eq!(st.successor().unwrap().id, ChordId(20));
        // Successor list keeps 30 as backup.
        assert!(st.successors().iter().any(|p| p.id == ChordId(30)));
    }

    #[test]
    fn peer_death_purges_everywhere() {
        let sts = ring(&[10, 20, 30, 40]);
        let mut st = sts[0].clone();
        let dead = st.successor().unwrap();
        assert!(st.on_peer_dead(dead.node));
        assert_ne!(st.successor().map(|p| p.node), Some(dead.node));
        assert!(st.known_peers().iter().all(|p| p.node != dead.node));
        assert!(!st.on_peer_dead(dead.node), "second purge is a no-op");
    }

    #[test]
    fn successor_list_is_bounded_and_deduped() {
        let cfg = ChordConfig {
            successor_list_len: 3,
            ..Default::default()
        };
        let mut st = ChordState::new(peer(0, 0), cfg);
        st.adopt_successor(peer(10, 1));
        st.refresh_successor_list(
            peer(10, 1),
            &[
                peer(20, 2),
                peer(10, 1),
                peer(30, 3),
                peer(40, 4),
                peer(0, 0),
            ],
        );
        let ids: Vec<u64> = st.successors().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn next_finger_round_robin() {
        let mut st = ChordState::new(peer(0, 0), ChordConfig::default());
        let (i0, t0) = st.next_finger_target();
        assert_eq!((i0, t0), (0, ChordId(1)));
        let (i1, t1) = st.next_finger_target();
        assert_eq!((i1, t1), (1, ChordId(2)));
        for _ in 2..64 {
            st.next_finger_target();
        }
        assert_eq!(st.next_finger_target().0, 0, "wraps after BITS fingers");
    }

    #[test]
    fn fingers_skip_self() {
        let mut st = ChordState::new(peer(0, 0), ChordConfig::default());
        st.set_finger(3, peer(0, 0));
        assert_eq!(st.fingers().count(), 0);
        st.set_finger(3, peer(9, 1));
        assert_eq!(st.fingers().count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate ring id")]
    fn stable_ring_rejects_duplicate_ids() {
        let members = vec![peer(5, 0), peer(5, 1)];
        let _ = stable_ring(&members, &ChordConfig::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn distinct_ids() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::btree_set(any::<u64>(), 1..40).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// In a stable ring, exactly one member is responsible for any
        /// key, and it is the clockwise successor of the key.
        #[test]
        fn unique_owner(ids in distinct_ids(), key in any::<u64>()) {
            let members: Vec<PeerRef> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| PeerRef { id: ChordId(*id), node: NodeId(i as u32) })
                .collect();
            let states = stable_ring(&members, &ChordConfig::default());
            let owners: Vec<&ChordState> =
                states.iter().filter(|s| s.is_responsible(ChordId(key))).collect();
            prop_assert_eq!(owners.len(), 1, "key must have exactly one owner");
            // The owner is the member minimizing clockwise distance key→owner.
            let owner = owners[0].id();
            for m in &members {
                prop_assert!(
                    ChordId(key).clockwise_distance(owner) <= ChordId(key).clockwise_distance(m.id)
                );
            }
        }

        /// local_lookup from any member makes progress: the result is
        /// either the owner or strictly closer (clockwise) to the key.
        #[test]
        fn lookup_progress(ids in distinct_ids(), key in any::<u64>()) {
            let members: Vec<PeerRef> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| PeerRef { id: ChordId(*id), node: NodeId(i as u32) })
                .collect();
            let states = stable_ring(&members, &ChordConfig::default());
            let key = ChordId(key);
            // The true owner minimizes the clockwise distance key→owner.
            let owner = members
                .iter()
                .min_by_key(|p| key.clockwise_distance(p.id))
                .unwrap();
            for st in &states {
                let next = st.local_lookup(key);
                if next.node == st.me().node {
                    prop_assert!(st.is_responsible(key));
                    prop_assert_eq!(next.node, owner.node, "self-delivery at a non-owner");
                } else {
                    // Either we hand directly to the owner, or we jump
                    // strictly closer to the key (remaining clockwise
                    // distance next→key shrinks).
                    let me_to_key = st.id().clockwise_distance(key);
                    let next_to_key = next.id.clockwise_distance(key);
                    prop_assert!(
                        next.node == owner.node || next_to_key < me_to_key,
                        "no progress: me={:?} next={:?} key={:?}", st.id(), next.id, key
                    );
                }
            }
        }
    }
}
