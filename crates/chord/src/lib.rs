//! # chord — a Chord DHT substrate
//!
//! From-scratch implementation of Chord (Stoica et al., SIGCOMM 2001),
//! the structured overlay the Flower-CDN paper simulates underneath
//! its D-ring ("we choose to simulate Chord for its simplicity", §6.1)
//! and underneath the Squirrel baseline.
//!
//! The crate is split into:
//!
//! * [`id`] — 64-bit ring arithmetic (intervals, distances, finger
//!   targets, hashing of names onto the ring);
//! * [`state`] — the pure per-node routing state: predecessor,
//!   successor list, finger table, `local_lookup` (the paper's
//!   Algorithm 1 primitive), join/stabilize/notify decision logic,
//!   and [`state::stable_ring`] which produces the converged ring the
//!   paper's evaluation starts from;
//! * [`proto`] — the message protocol: recursive key-based routing
//!   with a pluggable [`proto::RoutePolicy`] next-hop hook (the
//!   single extension point D-ring's Algorithm 2 needs),
//!   `FindSuccessor` lookups, join, stabilization and finger repair.
//!
//! Higher-level protocols embed [`proto::ChordMsg`] in their own
//! message enums and call [`proto::handle`] from their event loops;
//! the DHT never talks to the network directly.

pub mod id;
pub mod proto;
pub mod state;

pub use id::{hash64, hash_bytes, ChordId};
pub use proto::{
    handle, on_undeliverable, start_fix_finger, start_join, start_route, start_stabilize, ChordMsg,
    ChordOutcome, DeliveryReason, LookupToken, RoutePayload, RoutePolicy, StandardPolicy,
    Transport, Wire,
};
pub use state::{stable_ring, ChordConfig, ChordState, PeerRef};
