//! Identifier-ring arithmetic.
//!
//! Chord places peers and keys on a circular identifier space
//! `[0, 2^m)`; we use `m = 64` (the paper leaves `m` free and uses a
//! toy `m = 7` in its Figure 3 example). All interval tests wrap
//! around the ring and follow the conventions of the Chord paper
//! (Stoica et al., SIGCOMM 2001).

/// A position on the 2^64 identifier circle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChordId(pub u64);

impl ChordId {
    /// Number of bits of the identifier space.
    pub const BITS: u32 = 64;

    /// Clockwise distance from `self` to `to` (how far a key must
    /// travel forward to reach `to`).
    pub fn clockwise_distance(self, to: ChordId) -> u64 {
        to.0.wrapping_sub(self.0)
    }

    /// Ring distance: the shorter way around, used for the paper's
    /// "numerically closest" tie-breaking.
    pub fn ring_distance(self, other: ChordId) -> u64 {
        let cw = self.clockwise_distance(other);
        cw.min(cw.wrapping_neg())
    }

    /// The id `2^i` clockwise from `self` — the i-th finger target.
    pub fn finger_target(self, i: u32) -> ChordId {
        debug_assert!(i < Self::BITS);
        ChordId(self.0.wrapping_add(1u64 << i))
    }

    /// True if `x` lies in the open interval `(a, b)` going clockwise.
    /// When `a == b` the interval is the full ring minus `a` (the
    /// Chord convention for a single-node ring).
    pub fn in_open(a: ChordId, b: ChordId, x: ChordId) -> bool {
        if a == b {
            x != a
        } else {
            let d_ab = a.clockwise_distance(b);
            let d_ax = a.clockwise_distance(x);
            d_ax > 0 && d_ax < d_ab
        }
    }

    /// True if `x` lies in the half-open interval `(a, b]` clockwise.
    /// When `a == b` the interval is the full ring (everything is in
    /// `(a, a]`), matching Chord's single-node responsibility.
    pub fn in_open_closed(a: ChordId, b: ChordId, x: ChordId) -> bool {
        if a == b {
            true
        } else {
            let d_ab = a.clockwise_distance(b);
            let d_ax = a.clockwise_distance(x);
            d_ax > 0 && d_ax <= d_ab
        }
    }
}

impl std::fmt::Debug for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id:{:016x}", self.0)
    }
}

impl std::fmt::Display for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A 64-bit mixing hash (SplitMix64 finalizer) used to derive ring
/// identifiers from names/URLs; strong enough that 100 websites or a
/// few thousand peers collide with negligible probability.
pub fn hash64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte string (e.g. a URL) onto the ring.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    // FNV-1a into the SplitMix finalizer.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ChordId = ChordId(10);
    const B: ChordId = ChordId(20);

    #[test]
    fn open_interval_no_wrap() {
        assert!(ChordId::in_open(A, B, ChordId(15)));
        assert!(!ChordId::in_open(A, B, A));
        assert!(!ChordId::in_open(A, B, B));
        assert!(!ChordId::in_open(A, B, ChordId(25)));
    }

    #[test]
    fn open_interval_wraps() {
        // (20, 10): wraps through 0.
        assert!(ChordId::in_open(B, A, ChordId(u64::MAX)));
        assert!(ChordId::in_open(B, A, ChordId(0)));
        assert!(ChordId::in_open(B, A, ChordId(5)));
        assert!(!ChordId::in_open(B, A, ChordId(15)));
    }

    #[test]
    fn open_closed_includes_bound() {
        assert!(ChordId::in_open_closed(A, B, B));
        assert!(!ChordId::in_open_closed(A, B, A));
        assert!(ChordId::in_open_closed(A, B, ChordId(11)));
    }

    #[test]
    fn degenerate_intervals() {
        // (a, a) = ring minus a; (a, a] = full ring.
        assert!(ChordId::in_open(A, A, B));
        assert!(!ChordId::in_open(A, A, A));
        assert!(ChordId::in_open_closed(A, A, A));
        assert!(ChordId::in_open_closed(A, A, B));
    }

    #[test]
    fn distances() {
        assert_eq!(A.clockwise_distance(B), 10);
        assert_eq!(B.clockwise_distance(A), u64::MAX - 9);
        assert_eq!(A.ring_distance(B), 10);
        assert_eq!(B.ring_distance(A), 10);
        assert_eq!(A.ring_distance(A), 0);
    }

    #[test]
    fn finger_targets() {
        assert_eq!(ChordId(0).finger_target(0), ChordId(1));
        assert_eq!(ChordId(0).finger_target(63), ChordId(1 << 63));
        assert_eq!(ChordId(u64::MAX).finger_target(0), ChordId(0));
    }

    #[test]
    fn hashes_spread() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(hash64(i));
        }
        assert_eq!(seen.len(), 1000, "hash64 collisions on small input set");
        assert_ne!(hash_bytes(b"site-a"), hash_bytes(b"site-b"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// x ∈ (a,b] iff x ∈ (a,b) or x == b (for a != b).
        #[test]
        fn interval_relation(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
            prop_assume!(a != b);
            let (a, b, x) = (ChordId(a), ChordId(b), ChordId(x));
            prop_assert_eq!(
                ChordId::in_open_closed(a, b, x),
                ChordId::in_open(a, b, x) || x == b
            );
        }

        /// Exactly one of: x == a, x ∈ (a,b], x ∈ (b,a] — the two
        /// half-open arcs plus the point a partition the ring.
        #[test]
        fn arcs_partition_ring(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
            prop_assume!(a != b);
            let (a, b, x) = (ChordId(a), ChordId(b), ChordId(x));
            let cases = [x == a, ChordId::in_open_closed(a, b, x), ChordId::in_open_closed(b, a, x)];
            prop_assert_eq!(cases.iter().filter(|c| **c).count(), 1);
        }

        /// Ring distance is symmetric and at most half the ring.
        #[test]
        fn ring_distance_laws(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (ChordId(a), ChordId(b));
            prop_assert_eq!(a.ring_distance(b), b.ring_distance(a));
            prop_assert!(a.ring_distance(b) <= 1u64 << 63);
            prop_assert_eq!(a.ring_distance(a), 0);
        }

        /// Clockwise distance concatenates: d(a,b) + d(b,c) ≡ d(a,c) (mod 2^64).
        #[test]
        fn clockwise_additive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (ChordId(a), ChordId(b), ChordId(c));
            let lhs = a.clockwise_distance(b).wrapping_add(b.clockwise_distance(c));
            prop_assert_eq!(lhs, a.clockwise_distance(c));
        }
    }
}
