//! The Chord message protocol: recursive key-based routing
//! (Algorithm 1 of the Flower-CDN paper), join, stabilization and
//! finger maintenance.
//!
//! The protocol is written against a tiny [`Transport`] abstraction so
//! that higher-level protocols (Flower-CDN's D-ring, Squirrel) can
//! embed [`ChordMsg`] inside their own message enums and drive this
//! module from their event handlers.
//!
//! Routing is *recursive*: each hop runs `local_lookup` and forwards,
//! exactly as the paper's Algorithm 1 presents it. The next-hop choice
//! can be adjusted by a [`RoutePolicy`] — the single extension point
//! Flower-CDN's Algorithm 2 needs (the conditional website-aware
//! lookup), demonstrating the paper's claim that D-ring integrates
//! into an existing DHT without modifying it.

use simnet::NodeId;

use crate::id::ChordId;
use crate::state::{ChordState, PeerRef};

/// Bytes of the fixed routing header we model for every Chord message
/// (key + hop counter + addressing).
pub const HEADER_BYTES: u32 = 24;

/// Application payloads carried through the DHT must report their
/// modelled wire size.
pub trait Wire {
    /// Serialized size in bytes.
    fn wire_size(&self) -> u32;
}

/// Why a routed message was handed to the application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryReason {
    /// This node is the owner of the key (normal case).
    Responsible,
    /// The hop limit was exceeded; the application decides how to
    /// recover (Flower-CDN falls back to the origin server).
    HopLimit,
}

/// Outcome of handling a Chord message, surfaced to the embedding
/// protocol.
#[derive(Debug)]
pub enum ChordOutcome<A> {
    /// A routed application payload terminated here.
    Deliver {
        /// The routed key.
        key: ChordId,
        /// The application payload.
        payload: A,
        /// Hops taken from the first routing step.
        hops: u8,
        /// Why it was delivered here.
        reason: DeliveryReason,
    },
    /// This node's join lookup completed; the state has adopted the
    /// returned successor.
    JoinComplete,
}

/// Messages exchanged by Chord peers. `A` is the application payload
/// type routed through the ring.
#[derive(Clone, Debug)]
pub enum ChordMsg<A> {
    /// A routed message: forwarded greedily toward the owner of `key`.
    Route {
        /// Destination key.
        key: ChordId,
        /// Hops taken so far.
        hops: u8,
        /// What is being routed.
        payload: RoutePayload<A>,
    },
    /// Direct answer to a routed `FindSuccessor`.
    FoundSuccessor {
        /// Correlates with the lookup request.
        token: LookupToken,
        /// The owner of the looked-up key.
        owner: PeerRef,
    },
    /// Stabilization: ask a peer for its predecessor and successors.
    NeighborsReq,
    /// Stabilization answer.
    NeighborsResp {
        /// The peer's predecessor.
        pred: Option<PeerRef>,
        /// The peer's successor list.
        succs: Vec<PeerRef>,
    },
    /// Chord `notify`: the sender believes it is our predecessor.
    Notify {
        /// The candidate predecessor.
        peer: PeerRef,
    },
}

/// What a lookup was for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LookupToken {
    /// Fixing finger `i`.
    Finger(u32),
    /// A join lookup for our own id.
    Join,
}

/// Internal payloads routed through the ring.
#[derive(Clone, Debug)]
pub enum RoutePayload<A> {
    /// An application message.
    App(A),
    /// A successor lookup on behalf of `requester`.
    FindSuccessor {
        /// Who asked (gets the `FoundSuccessor` reply directly).
        requester: PeerRef,
        /// Correlation token.
        token: LookupToken,
    },
}

impl<A: Wire> ChordMsg<A> {
    /// Modelled wire size of this message.
    pub fn wire_size(&self) -> u32 {
        match self {
            ChordMsg::Route { payload, .. } => {
                HEADER_BYTES
                    + match payload {
                        RoutePayload::App(a) => a.wire_size(),
                        RoutePayload::FindSuccessor { .. } => 16,
                    }
            }
            ChordMsg::FoundSuccessor { .. } => HEADER_BYTES + 16,
            ChordMsg::NeighborsReq => HEADER_BYTES,
            ChordMsg::NeighborsResp { succs, .. } => HEADER_BYTES + 16 + 16 * succs.len() as u32,
            ChordMsg::Notify { .. } => HEADER_BYTES + 16,
        }
    }

    /// Whether this message is routing traffic (`Route`,
    /// `FoundSuccessor`) as opposed to ring maintenance.
    pub fn is_routing(&self) -> bool {
        matches!(
            self,
            ChordMsg::Route { .. } | ChordMsg::FoundSuccessor { .. }
        )
    }
}

/// Message-sending abstraction the embedding protocol provides.
pub trait Transport<A> {
    /// Send a Chord message to an underlay node.
    fn send_chord(&mut self, to: NodeId, msg: ChordMsg<A>);
}

/// Next-hop adjustment hook — Algorithm 2 of the paper overrides this
/// for website-aware D-ring routing.
pub trait RoutePolicy {
    /// Given the default candidate `dflt` chosen by `local_lookup`,
    /// return the peer to actually forward to. The default
    /// implementation is the unmodified DHT (Algorithm 1).
    fn adjust_next_hop(&self, st: &ChordState, key: ChordId, dflt: PeerRef) -> PeerRef {
        let _ = (st, key);
        dflt
    }
}

/// The unmodified Chord routing of Algorithm 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardPolicy;

impl RoutePolicy for StandardPolicy {}

/// Start routing `payload` toward `key` from this node (the first
/// routing step runs locally). May deliver immediately.
pub fn start_route<A: Wire, T: Transport<A>>(
    st: &mut ChordState,
    t: &mut T,
    key: ChordId,
    payload: A,
    policy: &impl RoutePolicy,
) -> Option<ChordOutcome<A>> {
    step_route(st, t, key, 0, RoutePayload::App(payload), policy)
}

/// Handle an incoming Chord message. Returns an outcome if something
/// terminated at this node.
pub fn handle<A: Wire, T: Transport<A>>(
    st: &mut ChordState,
    t: &mut T,
    from: NodeId,
    msg: ChordMsg<A>,
    policy: &impl RoutePolicy,
) -> Option<ChordOutcome<A>> {
    match msg {
        ChordMsg::Route { key, hops, payload } => step_route(st, t, key, hops, payload, policy),
        ChordMsg::FoundSuccessor { token, owner } => {
            match token {
                LookupToken::Finger(i) => {
                    st.set_finger(i, owner);
                    None
                }
                LookupToken::Join => {
                    st.adopt_successor(owner);
                    // Kick stabilization toward the new successor so
                    // the ring learns about us quickly.
                    t.send_chord(owner.node, ChordMsg::NeighborsReq);
                    t.send_chord(owner.node, ChordMsg::Notify { peer: st.me() });
                    Some(ChordOutcome::JoinComplete)
                }
            }
        }
        ChordMsg::NeighborsReq => {
            let resp = ChordMsg::NeighborsResp {
                pred: st.predecessor(),
                succs: st.successors().to_vec(),
            };
            t.send_chord(from, resp);
            None
        }
        ChordMsg::NeighborsResp { pred, succs } => {
            // `from` is (one of) our successors answering stabilize.
            if let Some(succ) = st.successors().iter().copied().find(|p| p.node == from) {
                let to_notify = st.on_successor_predecessor(succ, pred);
                if to_notify.node == succ.node {
                    st.refresh_successor_list(succ, &succs);
                }
                t.send_chord(to_notify.node, ChordMsg::Notify { peer: st.me() });
            }
            None
        }
        ChordMsg::Notify { peer } => {
            st.on_notify(peer);
            None
        }
    }
}

/// One recursive routing step at this node.
fn step_route<A: Wire, T: Transport<A>>(
    st: &mut ChordState,
    t: &mut T,
    key: ChordId,
    hops: u8,
    payload: RoutePayload<A>,
    policy: &impl RoutePolicy,
) -> Option<ChordOutcome<A>> {
    let candidate = st.local_lookup(key);
    let me = st.me();
    let (deliver, reason) = if candidate.node == me.node {
        (true, DeliveryReason::Responsible)
    } else if hops >= st.config().max_hops {
        (true, DeliveryReason::HopLimit)
    } else {
        (false, DeliveryReason::Responsible)
    };

    if deliver {
        return terminate(st, t, key, hops, payload, reason);
    }

    let next = policy.adjust_next_hop(st, key, candidate);
    if next.node == me.node {
        return terminate(st, t, key, hops, payload, DeliveryReason::Responsible);
    }
    t.send_chord(
        next.node,
        ChordMsg::Route {
            key,
            hops: hops + 1,
            payload,
        },
    );
    None
}

fn terminate<A: Wire, T: Transport<A>>(
    st: &mut ChordState,
    t: &mut T,
    key: ChordId,
    hops: u8,
    payload: RoutePayload<A>,
    reason: DeliveryReason,
) -> Option<ChordOutcome<A>> {
    match payload {
        RoutePayload::App(payload) => Some(ChordOutcome::Deliver {
            key,
            payload,
            hops,
            reason,
        }),
        RoutePayload::FindSuccessor { requester, token } => {
            t.send_chord(
                requester.node,
                ChordMsg::FoundSuccessor {
                    token,
                    owner: st.me(),
                },
            );
            None
        }
    }
}

/// Periodic stabilization tick: probe our successor.
pub fn start_stabilize<A: Wire, T: Transport<A>>(st: &mut ChordState, t: &mut T) {
    if let Some(s) = st.successor() {
        t.send_chord(s.node, ChordMsg::NeighborsReq);
    }
}

/// Periodic finger-fix tick: look up the next finger target through
/// the ring.
pub fn start_fix_finger<A: Wire, T: Transport<A>>(
    st: &mut ChordState,
    t: &mut T,
    policy: &impl RoutePolicy,
) {
    let (i, target) = st.next_finger_target();
    let me = st.me();
    let payload = RoutePayload::FindSuccessor {
        requester: me,
        token: LookupToken::Finger(i),
    };
    let _ = step_route::<A, T>(st, t, target, 0, payload, policy);
}

/// Join the ring through `bootstrap`: route a successor lookup for our
/// own id. The [`ChordOutcome::JoinComplete`] outcome arrives via the
/// `FoundSuccessor` reply.
pub fn start_join<A: Wire, T: Transport<A>>(st: &mut ChordState, t: &mut T, bootstrap: NodeId) {
    let me = st.me();
    let msg = ChordMsg::Route {
        key: me.id,
        hops: 0,
        payload: RoutePayload::FindSuccessor {
            requester: me,
            token: LookupToken::Join,
        },
    };
    t.send_chord(bootstrap, msg);
}

/// A previously sent message bounced (destination down): purge the
/// dead peer from the routing state. Returns true if the state
/// referenced it.
pub fn on_undeliverable<A>(st: &mut ChordState, dead: NodeId, _msg: &ChordMsg<A>) -> bool {
    st.on_peer_dead(dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{stable_ring, ChordConfig};

    #[derive(Clone, Debug, PartialEq)]
    struct Payload(u64);
    impl Wire for Payload {
        fn wire_size(&self) -> u32 {
            8
        }
    }

    /// A loop-back transport over a vector of (to, msg).
    #[derive(Default)]
    struct VecTransport {
        out: Vec<(NodeId, ChordMsg<Payload>)>,
    }
    impl Transport<Payload> for VecTransport {
        fn send_chord(&mut self, to: NodeId, msg: ChordMsg<Payload>) {
            self.out.push((to, msg));
        }
    }

    fn ring(ids: &[u64]) -> Vec<ChordState> {
        let members: Vec<PeerRef> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| PeerRef {
                id: ChordId(*id),
                node: NodeId(i as u32),
            })
            .collect();
        stable_ring(&members, &ChordConfig::default())
    }

    /// Synchronously run routing across a set of states until delivery.
    fn route_to_completion(
        states: &mut [ChordState],
        start: usize,
        key: ChordId,
        payload: Payload,
    ) -> (usize, u8) {
        let mut t = VecTransport::default();
        if let Some(ChordOutcome::Deliver { hops, .. }) = start_route(
            &mut states[start],
            &mut t,
            key,
            payload.clone(),
            &StandardPolicy,
        ) {
            return (start, hops);
        }
        let mut steps = 0;
        while let Some((to, msg)) = t.out.pop() {
            steps += 1;
            assert!(steps < 1000, "routing did not terminate");
            let idx = to.idx();
            if let Some(ChordOutcome::Deliver {
                hops, payload: p, ..
            }) = handle(&mut states[idx], &mut t, NodeId(0), msg, &StandardPolicy)
            {
                assert_eq!(p, payload);
                return (idx, hops);
            }
        }
        panic!("message lost");
    }

    #[test]
    fn routes_reach_the_owner() {
        let ids: Vec<u64> = (0..32).map(crate::id::hash64).collect();
        let mut states = ring(&ids);
        // The owner of key k is the member minimizing clockwise k→owner.
        for probe in 0..50u64 {
            let key = ChordId(crate::id::hash64(1000 + probe));
            let expected = states
                .iter()
                .map(|s| s.me())
                .min_by_key(|p| key.clockwise_distance(p.id))
                .unwrap();
            let (got, _) =
                route_to_completion(&mut states, (probe % 32) as usize, key, Payload(probe));
            assert_eq!(
                states[got].me().node,
                expected.node,
                "wrong owner for {key:?}"
            );
        }
    }

    #[test]
    fn hop_count_is_logarithmic() {
        let n = 256u64;
        let ids: Vec<u64> = (0..n).map(crate::id::hash64).collect();
        let mut states = ring(&ids);
        let mut total_hops = 0u32;
        let probes = 100u64;
        for probe in 0..probes {
            let key = ChordId(crate::id::hash64(77_000 + probe));
            let (_, hops) =
                route_to_completion(&mut states, (probe % n) as usize, key, Payload(probe));
            total_hops += hops as u32;
        }
        let avg = total_hops as f64 / probes as f64;
        // log2(256) = 8; expect roughly half that on average, never more.
        assert!(avg <= 8.0, "average hops {avg} too high for 256 nodes");
        assert!(avg >= 1.0, "suspiciously low hop count {avg}");
    }

    #[test]
    fn exact_key_delivers_at_exact_owner() {
        let ids = [100u64, 200, 300];
        let mut states = ring(&ids);
        let (idx, _) = route_to_completion(&mut states, 0, ChordId(200), Payload(1));
        assert_eq!(states[idx].id(), ChordId(200));
    }

    #[test]
    fn find_successor_fixes_finger() {
        let ids = [0u64, 1 << 62, 1 << 63];
        let mut states = ring(&ids);
        // Clear node 0's finger for 2^62 and re-fix it via lookup.
        let me0 = states[0].me();
        states[0].set_finger(62, me0);
        let mut t = VecTransport::default();
        // Force the round-robin to index 62.
        for _ in 0..62 {
            states[0].next_finger_target();
        }
        start_fix_finger(&mut states[0], &mut t, &StandardPolicy);
        // Drive messages.
        let mut guard = 0;
        while let Some((to, msg)) = t.out.pop() {
            guard += 1;
            assert!(guard < 100);
            let idx = to.idx();
            let _ = handle(&mut states[idx], &mut t, NodeId(99), msg, &StandardPolicy);
        }
        let f: Vec<ChordId> = states[0].fingers().map(|p| p.id).collect();
        assert!(f.contains(&ChordId(1 << 62)), "finger 62 not fixed: {f:?}");
    }

    #[test]
    fn join_adopts_successor_and_notifies() {
        let ids = [100u64, 200];
        let mut states = ring(&ids);
        let newbie_ref = PeerRef {
            id: ChordId(150),
            node: NodeId(2),
        };
        let mut newbie = ChordState::new(newbie_ref, ChordConfig::default());
        let mut t = VecTransport::default();
        start_join(&mut newbie, &mut t, NodeId(0));
        let mut all = [states.remove(0), states.remove(0), newbie];
        let mut joined = false;
        let mut guard = 0;
        while let Some((to, msg)) = t.out.pop() {
            guard += 1;
            assert!(guard < 100);
            let idx = to.idx();
            if let Some(ChordOutcome::JoinComplete) =
                handle(&mut all[idx], &mut t, NodeId(0), msg, &StandardPolicy)
            {
                joined = true;
            }
        }
        assert!(joined);
        // 150's successor is 200 (owner of key 150).
        assert_eq!(all[2].successor().unwrap().id, ChordId(200));
        // 200 should have been notified and adopted 150 as predecessor.
        assert_eq!(all[1].predecessor().unwrap().id, ChordId(150));
    }

    #[test]
    fn stabilization_repairs_successor() {
        // 10 → 30 ring, node 20 interposed (it joined; 10 doesn't know).
        let mut s10 = ChordState::new(
            PeerRef {
                id: ChordId(10),
                node: NodeId(0),
            },
            ChordConfig::default(),
        );
        let mut s30 = ChordState::new(
            PeerRef {
                id: ChordId(30),
                node: NodeId(2),
            },
            ChordConfig::default(),
        );
        s10.adopt_successor(s30.me());
        s30.on_notify(PeerRef {
            id: ChordId(20),
            node: NodeId(1),
        });
        let mut t = VecTransport::default();
        start_stabilize(&mut s10, &mut t);
        // s30 answers NeighborsReq.
        let (to, msg) = t.out.remove(0);
        assert_eq!(to, NodeId(2));
        let _ = handle(&mut s30, &mut t, NodeId(0), msg, &StandardPolicy);
        // s10 processes the response.
        let (to, msg) = t.out.remove(0);
        assert_eq!(to, NodeId(0));
        let _ = handle(&mut s10, &mut t, NodeId(2), msg, &StandardPolicy);
        assert_eq!(
            s10.successor().unwrap().id,
            ChordId(20),
            "stabilize must adopt 20"
        );
        // And s10 notifies 20.
        assert!(t
            .out
            .iter()
            .any(|(to, m)| *to == NodeId(1) && matches!(m, ChordMsg::Notify { .. })));
    }

    #[test]
    fn undeliverable_purges_dead_peer() {
        let ids = [1u64, 2, 3];
        let mut states = ring(&ids);
        let dead = states[0].successor().unwrap().node;
        let bounced: ChordMsg<Payload> = ChordMsg::NeighborsReq;
        assert!(on_undeliverable(&mut states[0], dead, &bounced));
        assert_ne!(states[0].successor().map(|p| p.node), Some(dead));
    }

    #[test]
    fn wire_sizes_are_plausible() {
        let m: ChordMsg<Payload> = ChordMsg::Route {
            key: ChordId(1),
            hops: 0,
            payload: RoutePayload::App(Payload(9)),
        };
        assert_eq!(m.wire_size(), HEADER_BYTES + 8);
        assert!(m.is_routing());
        let n: ChordMsg<Payload> = ChordMsg::NeighborsResp {
            pred: None,
            succs: vec![
                PeerRef {
                    id: ChordId(0),
                    node: NodeId(0)
                };
                3
            ],
        };
        assert_eq!(n.wire_size(), HEADER_BYTES + 16 + 48);
        assert!(!n.is_routing());
    }
}
