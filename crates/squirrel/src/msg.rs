//! The Squirrel wire protocol (directory variant).

use bloom::ObjectId;
use chord::{ChordMsg, Wire};
use simnet::{Locality, Message, NodeId, SimTime, TrafficClass};
use workload::WebsiteId;

/// A query travelling through Squirrel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SQuery {
    /// Unique id assigned at submission.
    pub id: u64,
    /// The querying peer.
    pub origin: NodeId,
    /// The origin's locality (metrics only — Squirrel itself is
    /// locality-blind, which is the point of the comparison).
    pub origin_locality: Locality,
    /// The website (identifies the origin server).
    pub website: WebsiteId,
    /// The requested object; its hash is the DHT key.
    pub object: ObjectId,
    /// Submission instant.
    pub submitted_at: SimTime,
}

impl Wire for SQuery {
    fn wire_size(&self) -> u32 {
        8 + 6 + 2 + 2 + 8 + 8
    }
}

/// Messages of the Squirrel protocol.
#[derive(Clone, Debug)]
pub enum SquirrelMsg {
    /// Harness injection: submit a query at the origin (never sent on
    /// the wire).
    Submit {
        /// Query id.
        qid: u64,
        /// Target website.
        website: WebsiteId,
        /// Requested object.
        object: ObjectId,
    },
    /// DHT traffic (queries routed to object home nodes).
    Chord(ChordMsg<SQuery>),
    /// The home node answers the origin with pointers to recent
    /// downloaders (empty ⇒ fetch from the origin server).
    Pointers {
        /// The query being answered.
        query: SQuery,
        /// Recent downloaders that potentially cache the object.
        candidates: Vec<NodeId>,
    },
    /// The origin asks a pointed-to peer for the object.
    Fetch {
        /// The query.
        query: SQuery,
    },
    /// The probed peer does not cache the object (stale pointer).
    FetchMiss {
        /// The query.
        query: SQuery,
    },
    /// Fallback request to the website's origin server.
    ServerQuery {
        /// The query.
        query: SQuery,
    },
    /// Home-store strategy: after a server fetch, the downloader
    /// pushes a replica to the object's home node so subsequent
    /// queries are served from the DHT.
    StoreAtHome {
        /// The object being replicated at its home.
        object: ObjectId,
        /// Payload size.
        size: u32,
    },
    /// Object delivery.
    ServeObject {
        /// The query being answered.
        query: SQuery,
        /// When the provider received the query.
        resolved_at: SimTime,
        /// True if served by the origin server (a miss).
        from_server: bool,
        /// Object payload size.
        size: u32,
    },
}

impl Message for SquirrelMsg {
    fn wire_size(&self) -> u32 {
        match self {
            SquirrelMsg::Submit { .. } => 0,
            SquirrelMsg::Chord(m) => m.wire_size(),
            SquirrelMsg::Pointers { query, candidates } => {
                16 + query.wire_size() + 6 * candidates.len() as u32
            }
            SquirrelMsg::Fetch { query }
            | SquirrelMsg::FetchMiss { query }
            | SquirrelMsg::ServerQuery { query } => 16 + query.wire_size(),
            SquirrelMsg::ServeObject { query, size, .. } => 16 + query.wire_size() + size,
            SquirrelMsg::StoreAtHome { size, .. } => 16 + 8 + size,
        }
    }

    fn class(&self) -> TrafficClass {
        match self {
            SquirrelMsg::Submit { .. } => TrafficClass::QueryControl,
            SquirrelMsg::Chord(m) => {
                if m.is_routing() {
                    TrafficClass::DhtRouting
                } else {
                    TrafficClass::DhtMaintenance
                }
            }
            SquirrelMsg::Pointers { .. }
            | SquirrelMsg::Fetch { .. }
            | SquirrelMsg::FetchMiss { .. }
            | SquirrelMsg::ServerQuery { .. } => TrafficClass::QueryControl,
            SquirrelMsg::ServeObject { .. } | SquirrelMsg::StoreAtHome { .. } => {
                TrafficClass::Transfer
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_classes() {
        let q = SQuery {
            id: 1,
            origin: NodeId(0),
            origin_locality: Locality(0),
            website: WebsiteId(0),
            object: ObjectId(9),
            submitted_at: SimTime::ZERO,
        };
        let p = SquirrelMsg::Pointers {
            query: q,
            candidates: vec![NodeId(1); 4],
        };
        assert_eq!(p.wire_size(), 16 + q.wire_size() + 24);
        assert_eq!(p.class(), TrafficClass::QueryControl);
        let s = SquirrelMsg::ServeObject {
            query: q,
            resolved_at: SimTime::ZERO,
            from_server: true,
            size: 1000,
        };
        assert_eq!(s.class(), TrafficClass::Transfer);
        assert!(s.wire_size() > 1000);
        assert_eq!(
            SquirrelMsg::Submit {
                qid: 0,
                website: WebsiteId(0),
                object: ObjectId(0)
            }
            .wire_size(),
            0
        );
    }
}
