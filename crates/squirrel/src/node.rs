//! The Squirrel peer (directory variant, Iyer et al. PODC 2002),
//! as the Flower-CDN paper describes its comparator (§6.1, §7):
//!
//! * all participants form **one** DHT (Chord here) with uniformly
//!   hashed node ids — no locality, no interest clustering;
//! * for each object, the peer whose id is closest to `hash(url)` is
//!   the object's **home node**, storing "a small directory of
//!   pointers to recent downloaders of the object";
//! * *every* query (after a local cache miss) "navigates through the
//!   DHT and then receives a pointer to a peer that potentially has
//!   the object"; stale pointers fall back to further candidates and
//!   finally the origin web server.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bloom::ObjectId;
use chord::{ChordMsg, ChordOutcome, ChordState, RoutePayload, StandardPolicy, Transport};
use simnet::stats::ServedBy;
use simnet::{Ctx, Event, NodeId, SimTime};
use workload::{Catalog, WebsiteId};

use crate::msg::{SQuery, SquirrelMsg};

/// Timer kinds for Squirrel nodes.
pub mod timers {
    /// Chord stabilization tick.
    pub const STABILIZE: u16 = 1;
    /// Chord finger repair tick.
    pub const FIX_FINGER: u16 = 2;
}

/// Which of the Squirrel paper's two strategies to run (§7 of the
/// Flower-CDN paper describes both; its evaluation uses `Directory`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SquirrelStrategy {
    /// The home node keeps pointers to recent downloaders.
    #[default]
    Directory,
    /// The home node stores the object itself ("home-store").
    HomeStore,
}

/// Deployment-wide shared knowledge.
#[derive(Debug)]
pub struct SquirrelDeployment {
    /// The website/object universe.
    pub catalog: Catalog,
    /// Origin server node per website.
    pub servers: Vec<NodeId>,
    /// Max pointers a home node keeps per object ("a small directory
    /// of pointers to *recent* downloaders").
    pub pointer_cap: usize,
    /// How many stale pointers the origin tries before the server.
    pub fetch_retries: usize,
    /// Directory or home-store strategy.
    pub strategy: SquirrelStrategy,
}

impl SquirrelDeployment {
    /// The origin server of `ws`.
    pub fn server_of(&self, ws: WebsiteId) -> NodeId {
        self.servers[ws.idx()]
    }
}

/// A pending query at its origin.
#[derive(Debug, Clone)]
struct Pending {
    query: SQuery,
    candidates: Vec<NodeId>,
    next: usize,
    /// The home node that answered (home-store replication target).
    home: Option<NodeId>,
}

/// Per-node Squirrel state machine.
pub struct SquirrelNode {
    shared: Arc<SquirrelDeployment>,
    /// Ring state (participants only; servers stay outside the DHT).
    chord: Option<ChordState>,
    /// The local web cache.
    cache: HashSet<ObjectId>,
    /// Home-node directory: object → recent downloaders (most recent
    /// last).
    home: HashMap<ObjectId, Vec<NodeId>>,
    /// Queries we originated, awaiting resolution.
    pending: HashMap<u64, Pending>,
    /// Which website this node serves as origin server.
    server_for: Option<WebsiteId>,
    /// Observability counters.
    pub stats: SquirrelCounters,
}

/// Per-node counters.
#[derive(Debug, Default, Clone)]
pub struct SquirrelCounters {
    /// Queries submitted by this node.
    pub queries_submitted: u64,
    /// Local-cache hits.
    pub self_hits: u64,
    /// Objects served to other peers.
    pub serves: u64,
    /// Queries answered as origin server.
    pub server_hits: u64,
    /// Queries handled as a home node.
    pub home_lookups: u64,
}

struct CtxTransport<'a, 'b> {
    ctx: &'a mut Ctx<'b, SquirrelMsg>,
}

impl Transport<SQuery> for CtxTransport<'_, '_> {
    fn send_chord(&mut self, to: NodeId, msg: ChordMsg<SQuery>) {
        self.ctx.send(to, SquirrelMsg::Chord(msg));
    }
}

impl SquirrelNode {
    /// A non-participant (not in the ring; servers and idle nodes).
    pub fn bystander(shared: Arc<SquirrelDeployment>) -> Self {
        SquirrelNode {
            shared,
            chord: None,
            cache: HashSet::new(),
            home: HashMap::new(),
            pending: HashMap::new(),
            server_for: None,
            stats: SquirrelCounters::default(),
        }
    }

    /// An origin-server node.
    pub fn server(shared: Arc<SquirrelDeployment>, ws: WebsiteId) -> Self {
        let mut n = Self::bystander(shared);
        n.server_for = Some(ws);
        n
    }

    /// A ring participant with a pre-installed stable Chord state.
    pub fn participant(shared: Arc<SquirrelDeployment>, chord: ChordState) -> Self {
        let mut n = Self::bystander(shared);
        n.chord = Some(chord);
        n
    }

    /// Is this node in the DHT?
    pub fn is_participant(&self) -> bool {
        self.chord.is_some()
    }

    /// Number of objects in the local cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of objects this node is home for.
    pub fn home_entries(&self) -> usize {
        self.home.len()
    }

    fn on_submit(
        &mut self,
        ctx: &mut Ctx<'_, SquirrelMsg>,
        qid: u64,
        ws: WebsiteId,
        object: ObjectId,
    ) {
        self.stats.queries_submitted += 1;
        ctx.query_stats().on_submit();
        let me = ctx.id();
        let query = SQuery {
            id: qid,
            origin: me,
            origin_locality: ctx.locality(me),
            website: ws,
            object,
            submitted_at: ctx.now(),
        };
        // Local cache first (the Squirrel proxy model).
        if self.cache.contains(&object) {
            self.stats.self_hits += 1;
            let now = ctx.now();
            ctx.query_stats()
                .on_resolved(now, me, 0, 0, ServedBy::OwnCache);
            return;
        }
        self.pending.insert(
            qid,
            Pending {
                query,
                candidates: Vec::new(),
                next: 0,
                home: None,
            },
        );
        // Route to the object's home node through the DHT.
        let key = chord::ChordId(object.key());
        let Some(chord_st) = &mut self.chord else {
            // Not a DHT member (shouldn't originate queries, but stay
            // robust): straight to the server.
            ctx.send(
                self.shared.server_of(ws),
                SquirrelMsg::ServerQuery { query },
            );
            return;
        };
        let mut t = CtxTransport { ctx };
        if let Some(outcome) = chord::start_route(chord_st, &mut t, key, query, &StandardPolicy) {
            self.on_chord_outcome(ctx, outcome);
        }
    }

    /// Home-node processing. Directory strategy: answer with the
    /// pointer list and optimistically record the requester as a
    /// recent downloader. Home-store strategy: serve the stored
    /// replica, or send the requester to the server (it will push the
    /// replica back to us).
    fn home_process(&mut self, ctx: &mut Ctx<'_, SquirrelMsg>, query: SQuery) {
        self.stats.home_lookups += 1;
        let me = ctx.id();
        // Either strategy: a home that caches the object serves it.
        if self.cache.contains(&query.object) {
            self.serve_from_cache(ctx, query);
            return;
        }
        let candidates = match self.shared.strategy {
            SquirrelStrategy::HomeStore => Vec::new(),
            SquirrelStrategy::Directory => {
                let cap = self.shared.pointer_cap;
                let entry = self.home.entry(query.object).or_default();
                // Most recent downloaders first, excluding the requester.
                let candidates: Vec<NodeId> = entry
                    .iter()
                    .rev()
                    .filter(|n| **n != query.origin && **n != me)
                    .copied()
                    .collect();
                // Optimistic record (the requester is about to download it).
                entry.retain(|n| *n != query.origin);
                entry.push(query.origin);
                let len = entry.len();
                if len > cap {
                    entry.drain(0..len - cap);
                }
                candidates
            }
        };
        ctx.send(query.origin, SquirrelMsg::Pointers { query, candidates });
    }

    fn serve_from_cache(&mut self, ctx: &mut Ctx<'_, SquirrelMsg>, query: SQuery) {
        self.stats.serves += 1;
        let size = self.shared.catalog.object_size(query.object);
        let now = ctx.now();
        ctx.send(
            query.origin,
            SquirrelMsg::ServeObject {
                query,
                resolved_at: now,
                from_server: false,
                size,
            },
        );
    }

    /// Try the next pointer candidate, else the origin server.
    fn try_next_candidate(&mut self, ctx: &mut Ctx<'_, SquirrelMsg>, qid: u64) {
        let Some(p) = self.pending.get_mut(&qid) else {
            return;
        };
        let query = p.query;
        let retries = self.shared.fetch_retries;
        if p.next < p.candidates.len() && p.next < retries {
            let target = p.candidates[p.next];
            p.next += 1;
            ctx.send(target, SquirrelMsg::Fetch { query });
            return;
        }
        ctx.send(
            self.shared.server_of(query.website),
            SquirrelMsg::ServerQuery { query },
        );
    }

    fn on_resolved(
        &mut self,
        ctx: &mut Ctx<'_, SquirrelMsg>,
        from: NodeId,
        query: SQuery,
        resolved_at: SimTime,
        from_server: bool,
    ) {
        let Some(pending) = self.pending.remove(&query.id) else {
            return;
        };
        // Home-store: replicate server fetches back at the home node.
        if from_server && self.shared.strategy == SquirrelStrategy::HomeStore {
            if let Some(home) = pending.home {
                let size = self.shared.catalog.object_size(query.object);
                ctx.send(
                    home,
                    SquirrelMsg::StoreAtHome {
                        object: query.object,
                        size,
                    },
                );
            }
        }
        let me = ctx.id();
        let lookup_ms = resolved_at.since(query.submitted_at).as_ms();
        let transfer_ms = ctx.latency_ms(me, from);
        let served_by = if from_server {
            ServedBy::OriginServer
        } else if ctx.locality(from) == ctx.locality(me) {
            // Same locality by chance — Squirrel does not aim for it,
            // but the metric records it for the Figure 8 comparison.
            ServedBy::LocalOverlay
        } else {
            ServedBy::RemoteOverlay
        };
        let now = ctx.now();
        ctx.query_stats()
            .on_resolved(now, me, lookup_ms, transfer_ms, served_by);
        self.cache.insert(query.object);
    }

    fn on_chord_outcome(&mut self, ctx: &mut Ctx<'_, SquirrelMsg>, outcome: ChordOutcome<SQuery>) {
        match outcome {
            ChordOutcome::Deliver { payload, .. } => self.home_process(ctx, payload),
            ChordOutcome::JoinComplete => {}
        }
    }
}

impl simnet::Node<SquirrelMsg> for SquirrelNode {
    fn on_event(&mut self, ctx: &mut Ctx<'_, SquirrelMsg>, ev: Event<SquirrelMsg>) {
        match ev {
            Event::Recv { from, msg } => match msg {
                SquirrelMsg::Submit {
                    qid,
                    website,
                    object,
                } => self.on_submit(ctx, qid, website, object),
                SquirrelMsg::Chord(cm) => {
                    let Some(chord_st) = &mut self.chord else {
                        return;
                    };
                    let mut t = CtxTransport { ctx };
                    let outcome = chord::handle(chord_st, &mut t, from, cm, &StandardPolicy);
                    if let Some(outcome) = outcome {
                        self.on_chord_outcome(ctx, outcome);
                    }
                }
                SquirrelMsg::Pointers { query, candidates } => {
                    if let Some(p) = self.pending.get_mut(&query.id) {
                        p.candidates = candidates;
                        p.next = 0;
                        p.home = Some(from);
                        self.try_next_candidate(ctx, query.id);
                    }
                }
                SquirrelMsg::Fetch { query } => {
                    if self.cache.contains(&query.object) {
                        self.serve_from_cache(ctx, query);
                    } else {
                        ctx.send(from, SquirrelMsg::FetchMiss { query });
                    }
                }
                SquirrelMsg::FetchMiss { query } => {
                    self.try_next_candidate(ctx, query.id);
                }
                SquirrelMsg::ServerQuery { query } => {
                    debug_assert_eq!(self.server_for, Some(query.website));
                    self.stats.server_hits += 1;
                    ctx.gauge("server_load", 1.0);
                    let size = self.shared.catalog.object_size(query.object);
                    let now = ctx.now();
                    ctx.send(
                        query.origin,
                        SquirrelMsg::ServeObject {
                            query,
                            resolved_at: now,
                            from_server: true,
                            size,
                        },
                    );
                }
                SquirrelMsg::StoreAtHome { object, .. } => {
                    self.cache.insert(object);
                }
                SquirrelMsg::ServeObject {
                    query,
                    resolved_at,
                    from_server,
                    ..
                } => self.on_resolved(ctx, from, query, resolved_at, from_server),
            },
            Event::Timer { kind, tag: _ } => match kind {
                timers::STABILIZE => {
                    if let Some(chord_st) = &mut self.chord {
                        let mut t = CtxTransport { ctx };
                        chord::start_stabilize(chord_st, &mut t);
                    }
                }
                timers::FIX_FINGER => {
                    if let Some(chord_st) = &mut self.chord {
                        let mut t = CtxTransport { ctx };
                        chord::start_fix_finger(chord_st, &mut t, &StandardPolicy);
                    }
                }
                _ => {}
            },
            Event::Undeliverable { to, msg } => match msg {
                SquirrelMsg::Chord(cm) => {
                    let Some(chord_st) = &mut self.chord else {
                        return;
                    };
                    chord::on_undeliverable(chord_st, to, &cm);
                    if let ChordMsg::Route {
                        key,
                        hops,
                        payload: RoutePayload::App(q),
                    } = cm
                    {
                        // Re-route around the dead hop.
                        let me = ctx.id();
                        let mut t = CtxTransport { ctx };
                        let oc = chord::handle(
                            chord_st,
                            &mut t,
                            me,
                            ChordMsg::Route {
                                key,
                                hops,
                                payload: RoutePayload::App(q),
                            },
                            &StandardPolicy,
                        );
                        if let Some(oc) = oc {
                            self.on_chord_outcome(ctx, oc);
                        }
                    }
                }
                SquirrelMsg::Fetch { query } => self.try_next_candidate(ctx, query.id),
                SquirrelMsg::Pointers { query, .. } => {
                    // The requester vanished; drop our optimistic pointer.
                    if let Some(list) = self.home.get_mut(&query.object) {
                        list.retain(|n| *n != to);
                    }
                }
                _ => {}
            },
            Event::NodeUp => {
                self.cache.clear();
                self.home.clear();
                self.pending.clear();
            }
        }
    }
}
