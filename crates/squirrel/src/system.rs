//! Harness building the Squirrel comparison runs (§6.1): the same
//! topology, catalog and query trace as the Flower-CDN system, but
//! with every participant in a single locality-blind DHT.

use std::collections::HashMap;
use std::sync::Arc;

use chord::PeerRef;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simnet::{Engine, Event, Locality, NodeId, SimDuration, SimTime, Topology, TopologyConfig};
use workload::{Catalog, CatalogConfig, QueryStream, WorkloadConfig};

use crate::msg::SquirrelMsg;
use crate::node::{SquirrelDeployment, SquirrelNode, SquirrelStrategy};

/// Configuration of a Squirrel run. Mirrors
/// `flower_core::SystemConfig` so comparisons share topology, catalog,
/// workload and seed.
#[derive(Clone, Debug)]
pub struct SquirrelConfig {
    /// Underlay shape.
    pub topology: TopologyConfig,
    /// Website/object universe.
    pub catalog: CatalogConfig,
    /// Query trace shape.
    pub workload: WorkloadConfig,
    /// Participants per (active website, locality) — kept equal to the
    /// Flower run's `Sco` so both systems see the same client base.
    pub clients_per_locality: usize,
    /// Home-node pointer directory size.
    pub pointer_cap: usize,
    /// Stale pointers tried before the server.
    pub fetch_retries: usize,
    /// Directory (the paper's comparator) or home-store strategy.
    pub strategy: SquirrelStrategy,
    /// Master seed.
    pub seed: u64,
    /// Metric series window.
    pub window: SimDuration,
    /// Locality shards the engine runs on (worker threads); results
    /// are bit-identical for every value.
    pub shards: usize,
}

impl Default for SquirrelConfig {
    fn default() -> Self {
        SquirrelConfig {
            topology: TopologyConfig::default(),
            catalog: CatalogConfig::default(),
            workload: WorkloadConfig::default(),
            clients_per_locality: 100,
            pointer_cap: 4,
            fetch_retries: 3,
            strategy: SquirrelStrategy::Directory,
            seed: 42,
            window: SimDuration::from_mins(30),
            shards: 1,
        }
    }
}

impl SquirrelConfig {
    /// The paper's Table 1 setup.
    pub fn paper() -> Self {
        SquirrelConfig::default()
    }

    /// Small fast-test deployment (mirrors
    /// `flower_core::SystemConfig::small_test`).
    pub fn small_test() -> Self {
        SquirrelConfig {
            topology: TopologyConfig {
                nodes: 300,
                localities: 3,
                ..Default::default()
            },
            catalog: CatalogConfig {
                num_websites: 6,
                active_websites: 2,
                objects_per_website: 30,
                ..Default::default()
            },
            workload: WorkloadConfig {
                query_rate_per_sec: 10.0,
                duration_ms: 10 * 60 * 1000,
                ..Default::default()
            },
            clients_per_locality: 20,
            seed: 42,
            window: SimDuration::from_mins(1),
            ..Default::default()
        }
    }
}

/// End-of-run summary (same fields as the Flower report for easy
/// side-by-side printing).
#[derive(Clone, Debug)]
pub struct SquirrelReport {
    /// Queries submitted.
    pub submitted: u64,
    /// Queries resolved.
    pub resolved: u64,
    /// Hit ratio.
    pub hit_ratio: f64,
    /// Mean lookup latency (ms).
    pub mean_lookup_ms: f64,
    /// Mean transfer distance (ms).
    pub mean_transfer_ms: f64,
    /// Mean transfer distance of P2P hits only (ms).
    pub mean_transfer_hit_ms: f64,
    /// Participants in the ring.
    pub participants: usize,
}

/// A built Squirrel simulation.
pub struct SquirrelSystem {
    engine: Engine<SquirrelMsg, SquirrelNode>,
    participants: Vec<NodeId>,
    duration: SimTime,
}

impl SquirrelSystem {
    /// Build the deployment and schedule the query trace.
    pub fn build(cfg: &SquirrelConfig) -> SquirrelSystem {
        let topo = Topology::generate(&cfg.topology, cfg.seed);
        let catalog = Catalog::new(cfg.catalog.clone());
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5_901_u64);
        let k = topo.num_localities();

        let mut pools: Vec<Vec<NodeId>> = (0..k)
            .map(|l| {
                let mut v = topo.nodes_in(Locality(l as u16));
                v.shuffle(&mut rng);
                v
            })
            .collect();
        debug_assert_eq!(pools.len(), k);

        // Origin servers (outside the DHT, as in the Flower runs).
        let mut servers = Vec::new();
        {
            let mut l = 0usize;
            for _ws in catalog.websites() {
                let mut placed = None;
                for _ in 0..k {
                    l = (l + 1) % k;
                    if let Some(n) = pools[l].pop() {
                        placed = Some(n);
                        break;
                    }
                }
                servers.push(placed.expect("topology too small for servers"));
            }
        }

        // Client communities: same shape as the Flower run; the union
        // of all communities forms the single Squirrel ring.
        let mut communities: HashMap<(u16, u16), Vec<NodeId>> = HashMap::new();
        let mut ring_members: Vec<NodeId> = Vec::new();
        for ws in catalog.active_websites() {
            for (l, pool) in pools.iter().enumerate() {
                let take = cfg.clients_per_locality.min(pool.len());
                let mut comm: Vec<NodeId> = pool.choose_multiple(&mut rng, take).copied().collect();
                comm.sort_unstable_by_key(|n| n.0);
                for n in &comm {
                    if !ring_members.contains(n) {
                        ring_members.push(*n);
                    }
                }
                communities.insert((ws.0, l as u16), comm);
            }
        }
        ring_members.sort_unstable_by_key(|n| n.0);

        // One stable Chord ring over all participants, ids uniformly
        // hashed (locality-blind).
        let members: Vec<PeerRef> = ring_members
            .iter()
            .map(|n| PeerRef {
                id: chord::ChordId(chord::hash64(0x5014_u64 ^ n.0 as u64)),
                node: *n,
            })
            .collect();
        let states = chord::stable_ring(&members, &chord::ChordConfig::default());
        let state_by_node: HashMap<NodeId, chord::ChordState> = members
            .iter()
            .zip(states)
            .map(|(m, s)| (m.node, s))
            .collect();

        let deployment = Arc::new(SquirrelDeployment {
            catalog: Catalog::new(cfg.catalog.clone()),
            servers: servers.clone(),
            pointer_cap: cfg.pointer_cap,
            fetch_retries: cfg.fetch_retries,
            strategy: cfg.strategy,
        });

        let server_of_node: HashMap<NodeId, u16> = servers
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i as u16))
            .collect();
        let nodes: Vec<SquirrelNode> = topo
            .node_ids()
            .map(|n| {
                if let Some(st) = state_by_node.get(&n) {
                    SquirrelNode::participant(Arc::clone(&deployment), st.clone())
                } else if let Some(ws) = server_of_node.get(&n) {
                    SquirrelNode::server(Arc::clone(&deployment), workload::WebsiteId(*ws))
                } else {
                    SquirrelNode::bystander(Arc::clone(&deployment))
                }
            })
            .collect();

        let mut engine = Engine::with_shards(
            topo,
            nodes,
            cfg.seed ^ 0x50_13_17,
            cfg.window,
            cfg.shards.max(1),
        );

        // Schedule the trace with the same originator policy as the
        // Flower harness: uniform locality, uniform community member.
        let stream = QueryStream::generate(&cfg.workload, &catalog, cfg.seed ^ 0x0077_ACE5);
        for (qid, ev) in stream.events().iter().enumerate() {
            let mut origin = None;
            for _ in 0..4 {
                let loc = rng.gen_range(0..k) as u16;
                let comm = &communities[&(ev.website.0, loc)];
                if !comm.is_empty() {
                    origin = Some(comm[rng.gen_range(0..comm.len())]);
                    break;
                }
            }
            let Some(origin) = origin else { continue };
            engine.schedule_at(
                SimTime::from_ms(ev.at_ms),
                origin,
                Event::Recv {
                    from: origin,
                    msg: SquirrelMsg::Submit {
                        qid: qid as u64,
                        website: ev.website,
                        object: ev.object,
                    },
                },
            );
        }

        SquirrelSystem {
            engine,
            participants: ring_members,
            duration: SimTime::from_ms(cfg.workload.duration_ms),
        }
    }

    /// Build and run to the horizon (plus drain margin).
    pub fn run(cfg: &SquirrelConfig) -> (SquirrelSystem, SquirrelReport) {
        let mut sys = SquirrelSystem::build(cfg);
        let horizon = sys.duration + SimDuration::from_secs(30);
        sys.engine.run_until(horizon);
        let report = sys.report();
        (sys, report)
    }

    /// The engine (metric access).
    pub fn engine(&self) -> &Engine<SquirrelMsg, SquirrelNode> {
        &self.engine
    }

    /// Ring participants.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// End-of-run report.
    pub fn report(&self) -> SquirrelReport {
        let q = self.engine.query_stats();
        SquirrelReport {
            submitted: q.submitted(),
            resolved: q.resolved(),
            hit_ratio: q.hit_ratio(),
            mean_lookup_ms: q.mean_lookup_ms(),
            mean_transfer_ms: q.mean_transfer_ms(),
            mean_transfer_hit_ms: q.mean_transfer_hit_ms(),
            participants: self.participants.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (SquirrelSystem, SquirrelReport) {
        let cfg = SquirrelConfig {
            seed,
            ..SquirrelConfig::small_test()
        };
        SquirrelSystem::run(&cfg)
    }

    #[test]
    fn processes_queries_and_converges() {
        let (_, r) = run_small(1);
        assert!(r.submitted > 1000);
        assert!(
            r.resolved as f64 >= r.submitted as f64 * 0.99,
            "resolved {} of {}",
            r.resolved,
            r.submitted
        );
        assert!(r.hit_ratio > 0.5, "hit ratio {}", r.hit_ratio);
    }

    #[test]
    fn deterministic() {
        let (_, a) = run_small(3);
        let (_, b) = run_small(3);
        assert_eq!(a.submitted, b.submitted);
        assert!((a.hit_ratio - b.hit_ratio).abs() < 1e-12);
        assert!((a.mean_lookup_ms - b.mean_lookup_ms).abs() < 1e-9);
    }

    #[test]
    fn dht_lookups_cost_latency() {
        let (_, r) = run_small(5);
        // Squirrel routes through the DHT: non-self-hit lookups pay
        // several wide-area hops, so the mean must be well above zero
        // even with self-hits mixed in.
        assert!(r.mean_lookup_ms > 50.0, "mean lookup {}", r.mean_lookup_ms);
    }

    #[test]
    fn home_nodes_accumulate_pointers() {
        let (sys, _) = run_small(7);
        let total_home: usize = sys
            .participants()
            .iter()
            .map(|n| sys.engine().node(*n).home_entries())
            .sum();
        assert!(total_home > 0, "home directories never used");
    }
}
