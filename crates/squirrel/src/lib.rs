//! # squirrel — the paper's baseline P2P web cache
//!
//! Implementation of **Squirrel** (Iyer, Rowstron, Druschel; PODC
//! 2002) in its *directory* variant — the comparator of the
//! Flower-CDN paper's evaluation (§6.1): all participants join one
//! locality-blind DHT; the node whose id is closest to `hash(url)`
//! is the object's *home node* and keeps a small directory of
//! pointers to recent downloaders; every query (after a local cache
//! miss) is routed through the DHT to the home node, receives a
//! pointer, and fetches from the pointed-to peer — wherever on the
//! planet it happens to be. The contrast with Flower-CDN's
//! locality-aware one-hop content overlays produces the paper's
//! headline 9×/2× improvements (Figures 7–8).

pub mod msg;
pub mod node;
pub mod system;

pub use msg::{SQuery, SquirrelMsg};
pub use node::{SquirrelCounters, SquirrelDeployment, SquirrelNode, SquirrelStrategy};
pub use system::{SquirrelConfig, SquirrelReport, SquirrelSystem};
