//! Configured paper-scale runs, with optional time scaling.
//!
//! A full reproduction simulates 24 hours of a 5000-node underlay
//! (Table 1). `RunScale` shrinks the *simulated duration* (and,
//! proportionally, the gossip/keepalive periods and the metric
//! window) so the same dynamics play out faster — the standard trick
//! for iterating on event simulations. `RunScale::Full` is the
//! paper's exact setup and the one recorded in `EXPERIMENTS.md`.

use flower_core::{FlowerConfig, FlowerSystem, SubstrateKind, SystemConfig, SystemReport};
use simnet::SimDuration;
use squirrel::{SquirrelConfig, SquirrelReport, SquirrelSystem};

/// How much of the 24-hour experiment to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunScale {
    /// The paper's full 24 h at 5000 nodes.
    Full,
    /// Duration (and protocol periods) scaled by the factor; 0.1 ⇒
    /// 2.4 simulated hours with 3-minute gossip periods.
    Scaled(f64),
}

impl RunScale {
    /// The scale factor.
    pub fn factor(self) -> f64 {
        match self {
            RunScale::Full => 1.0,
            RunScale::Scaled(f) => f,
        }
    }

    /// Parse `"full"` or a float factor.
    pub fn parse(s: &str) -> Result<RunScale, String> {
        if s == "full" || s == "1" || s == "1.0" {
            return Ok(RunScale::Full);
        }
        let f: f64 = s.parse().map_err(|_| format!("bad scale {s:?}"))?;
        if !(f > 0.0 && f <= 1.0) {
            return Err(format!("scale must be in (0, 1], got {f}"));
        }
        Ok(RunScale::Scaled(f))
    }

    fn scale_duration(self, d: SimDuration) -> SimDuration {
        match self {
            RunScale::Full => d,
            RunScale::Scaled(f) => {
                SimDuration::from_ms(((d.as_ms() as f64 * f).round() as u64).max(1))
            }
        }
    }
}

/// The paper-scale Flower-CDN configuration at a given time scale,
/// with the D-ring on `substrate` (every paper experiment runs over
/// either DHT from config alone; the paper's own evaluation simulates
/// Chord).
///
/// Time-like protocol parameters (`Tgossip`, keepalive, `Tdead` ticks
/// stay ratio-identical because the tick period scales) shrink with
/// the scale so convergence dynamics match the full run's shape.
pub fn flower_config(scale: RunScale, seed: u64, substrate: SubstrateKind) -> SystemConfig {
    let mut cfg = SystemConfig::paper();
    cfg.seed = seed;
    cfg.workload.duration_ms = scale.scale_duration(SimDuration::from_hours(24)).as_ms();
    cfg.flower = scale_flower(&cfg.flower, scale);
    cfg.flower.substrate = substrate;
    cfg.window = scale.scale_duration(SimDuration::from_mins(30));
    cfg
}

/// Scale the time-like fields of a [`FlowerConfig`].
pub fn scale_flower(base: &FlowerConfig, scale: RunScale) -> FlowerConfig {
    let mut f = base.clone();
    f.t_gossip = scale.scale_duration(f.t_gossip);
    f.keepalive_period = scale.scale_duration(f.keepalive_period);
    f.stabilize_period = scale.scale_duration(f.stabilize_period);
    f.fix_finger_period = scale.scale_duration(f.fix_finger_period);
    f.dir_replacement_jitter = scale.scale_duration(f.dir_replacement_jitter);
    f
}

/// The matching Squirrel configuration (same topology, catalog,
/// workload, seed).
pub fn squirrel_config(scale: RunScale, seed: u64) -> SquirrelConfig {
    let mut cfg = SquirrelConfig::paper();
    cfg.seed = seed;
    cfg.workload.duration_ms = scale.scale_duration(SimDuration::from_hours(24)).as_ms();
    cfg.window = scale.scale_duration(SimDuration::from_mins(30));
    cfg
}

/// Run Flower-CDN and return the system (for series/histograms) plus
/// its report.
pub fn run_flower(cfg: &SystemConfig) -> (FlowerSystem, SystemReport) {
    FlowerSystem::run(cfg)
}

/// Run Squirrel likewise.
pub fn run_squirrel(cfg: &SquirrelConfig) -> (SquirrelSystem, SquirrelReport) {
    SquirrelSystem::run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(RunScale::parse("full").unwrap(), RunScale::Full);
        assert_eq!(RunScale::parse("0.25").unwrap(), RunScale::Scaled(0.25));
        assert!(RunScale::parse("0").is_err());
        assert!(RunScale::parse("2.0").is_err());
        assert!(RunScale::parse("x").is_err());
    }

    #[test]
    fn substrate_choice_is_config_only() {
        let chord = flower_config(RunScale::Scaled(0.1), 1, SubstrateKind::Chord);
        let pastry = flower_config(RunScale::Scaled(0.1), 1, SubstrateKind::Pastry);
        assert_eq!(chord.flower.substrate, SubstrateKind::Chord);
        assert_eq!(pastry.flower.substrate, SubstrateKind::Pastry);
        assert_eq!(chord.workload.duration_ms, pastry.workload.duration_ms);
        assert_eq!(chord.seed, pastry.seed);
    }

    #[test]
    fn scaled_config_shrinks_time_not_space() {
        let full = flower_config(RunScale::Full, 1, SubstrateKind::Chord);
        let tenth = flower_config(RunScale::Scaled(0.1), 1, SubstrateKind::Chord);
        assert_eq!(tenth.topology.nodes, full.topology.nodes);
        assert_eq!(tenth.catalog.num_websites, full.catalog.num_websites);
        assert_eq!(tenth.workload.duration_ms, full.workload.duration_ms / 10);
        assert_eq!(
            tenth.flower.t_gossip.as_ms(),
            full.flower.t_gossip.as_ms() / 10
        );
        assert_eq!(tenth.flower.v_gossip, full.flower.v_gossip);
    }
}
