//! Configured paper-scale runs, with optional time scaling.
//!
//! A full reproduction simulates 24 hours of a 5000-node underlay
//! (Table 1). `RunScale` shrinks the *simulated duration* (and,
//! proportionally, the gossip/keepalive periods and the metric
//! window) so the same dynamics play out faster — the standard trick
//! for iterating on event simulations. `RunScale::Full` is the
//! paper's exact setup and the one recorded in `EXPERIMENTS.md`.

use flower_core::{FlowerConfig, FlowerSystem, SubstrateKind, SystemConfig, SystemReport};
use simnet::{EventQueueKind, LookaheadKind, SimDuration};
use squirrel::{SquirrelConfig, SquirrelReport, SquirrelSystem};

use crate::report::BenchRecord;

/// The run parameters every experiment takes: time scale, master
/// seed, DHT substrate, engine shard count and event-queue backend.
/// All of them are execution/reproduction knobs orthogonal to the
/// paper's protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// How much of the 24-hour experiment to simulate.
    pub scale: RunScale,
    /// Master seed; a run is a pure function of config + seed.
    pub seed: u64,
    /// Which DHT the D-ring runs over (§3.1 portability).
    pub substrate: SubstrateKind,
    /// Engine locality shards (worker threads); results are
    /// bit-identical for every value.
    pub shards: usize,
    /// Event-queue backend; results are bit-identical for both.
    pub queue: EventQueueKind,
    /// Epoch-bound derivation of the sharded engine (per-pair matrix
    /// or global floor); results are bit-identical for both.
    pub lookahead: LookaheadKind,
    /// §5.3 PetalUp instance bits `b`: up to `2^b` directory
    /// instances per (website, locality) petal. 0 is the paper's base
    /// design.
    pub instance_bits: u32,
    /// Pin shard worker threads to cores under the engine's
    /// latency-aware placement (`--pin`); wall-clock only, results
    /// are bit-identical either way.
    pub pin: bool,
    /// Override the underlay node count (`--nodes` on non-`scale`
    /// experiments); `None` keeps the paper's population. Communities
    /// and the D-ring keep their configured sizes — a larger
    /// population grows the topology and its background machinery,
    /// which is exactly what the 50k churn smoke exercises.
    pub nodes: Option<usize>,
}

impl RunOpts {
    /// Defaults: 1/10 time scale, seed 42, Chord, one shard, calendar
    /// queue, no §5.3 instances.
    pub fn new() -> Self {
        RunOpts {
            scale: RunScale::Scaled(0.1),
            seed: 42,
            substrate: SubstrateKind::Chord,
            shards: 1,
            queue: EventQueueKind::default(),
            lookahead: LookaheadKind::default(),
            instance_bits: 0,
            pin: false,
            nodes: None,
        }
    }

    /// Replace the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        Self::new()
    }
}

/// How much of the 24-hour experiment to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunScale {
    /// The paper's full 24 h at 5000 nodes.
    Full,
    /// Duration (and protocol periods) scaled by the factor; 0.1 ⇒
    /// 2.4 simulated hours with 3-minute gossip periods.
    Scaled(f64),
}

impl RunScale {
    /// The scale factor.
    pub fn factor(self) -> f64 {
        match self {
            RunScale::Full => 1.0,
            RunScale::Scaled(f) => f,
        }
    }

    /// Parse `"full"` or a float factor.
    pub fn parse(s: &str) -> Result<RunScale, String> {
        if s == "full" || s == "1" || s == "1.0" {
            return Ok(RunScale::Full);
        }
        let f: f64 = s.parse().map_err(|_| format!("bad scale {s:?}"))?;
        if !(f > 0.0 && f <= 1.0) {
            return Err(format!("scale must be in (0, 1], got {f}"));
        }
        Ok(RunScale::Scaled(f))
    }

    fn scale_duration(self, d: SimDuration) -> SimDuration {
        match self {
            RunScale::Full => d,
            RunScale::Scaled(f) => {
                SimDuration::from_ms(((d.as_ms() as f64 * f).round() as u64).max(1))
            }
        }
    }
}

/// The paper-scale Flower-CDN configuration under `opts`: the D-ring
/// on `opts.substrate` (every paper experiment runs over either DHT
/// from config alone; the paper's own evaluation simulates Chord), the
/// engine on `opts.shards` locality shards and the `opts.queue` event
/// storage (results are bit-identical for every shard count and both
/// queue backends).
///
/// Time-like protocol parameters (`Tgossip`, keepalive, `Tdead` ticks
/// stay ratio-identical because the tick period scales) shrink with
/// the scale so convergence dynamics match the full run's shape.
pub fn flower_config(opts: RunOpts) -> SystemConfig {
    let mut cfg = SystemConfig::paper();
    cfg.seed = opts.seed;
    cfg.workload.duration_ms = opts
        .scale
        .scale_duration(SimDuration::from_hours(24))
        .as_ms();
    cfg.flower = scale_flower(&cfg.flower, opts.scale);
    cfg.flower.substrate = opts.substrate;
    cfg.flower.instance_bits = opts.instance_bits;
    cfg.window = opts.scale.scale_duration(SimDuration::from_mins(30));
    cfg.shards = opts.shards.max(1);
    cfg.topology.event_queue = opts.queue;
    cfg.topology.lookahead = opts.lookahead;
    cfg.topology.pin = opts.pin;
    if let Some(n) = opts.nodes {
        cfg.topology.nodes = n;
    }
    cfg
}

/// Scale the time-like fields of a [`FlowerConfig`].
pub fn scale_flower(base: &FlowerConfig, scale: RunScale) -> FlowerConfig {
    let mut f = base.clone();
    f.t_gossip = scale.scale_duration(f.t_gossip);
    f.keepalive_period = scale.scale_duration(f.keepalive_period);
    f.stabilize_period = scale.scale_duration(f.stabilize_period);
    f.fix_finger_period = scale.scale_duration(f.fix_finger_period);
    f.dir_replacement_jitter = scale.scale_duration(f.dir_replacement_jitter);
    f.query_timeout = f.query_timeout.map(|t| scale.scale_duration(t));
    f
}

/// The matching Squirrel configuration (same topology, catalog,
/// workload, seed, shard count, queue backend).
pub fn squirrel_config(opts: RunOpts) -> SquirrelConfig {
    let mut cfg = SquirrelConfig::paper();
    cfg.seed = opts.seed;
    cfg.workload.duration_ms = opts
        .scale
        .scale_duration(SimDuration::from_hours(24))
        .as_ms();
    cfg.window = opts.scale.scale_duration(SimDuration::from_mins(30));
    cfg.shards = opts.shards.max(1);
    cfg.topology.event_queue = opts.queue;
    cfg.topology.lookahead = opts.lookahead;
    cfg.topology.pin = opts.pin;
    cfg
}

/// Run Flower-CDN and return the system (for series/histograms) plus
/// its report.
pub fn run_flower(cfg: &SystemConfig) -> (FlowerSystem, SystemReport) {
    FlowerSystem::run(cfg)
}

/// As [`run_flower`], additionally measuring the engine: wall-clock of
/// the simulation itself (build excluded), events/second and peak
/// queue depth, packaged as a [`BenchRecord`] for `BENCH_engine.json`.
pub fn run_flower_timed(
    cfg: &SystemConfig,
    experiment: &str,
) -> (FlowerSystem, SystemReport, BenchRecord) {
    run_flower_timed_with(cfg, experiment, |_| {})
}

/// As [`run_flower_timed`], with a hook run on the freshly built
/// system before the clock starts — the chaos cells use it to install
/// their `FaultPlane` and churn scripts (scripted state, not wall
/// time, so it stays outside the measurement).
pub fn run_flower_timed_with(
    cfg: &SystemConfig,
    experiment: &str,
    prep: impl FnOnce(&mut FlowerSystem),
) -> (FlowerSystem, SystemReport, BenchRecord) {
    let mut sys = FlowerSystem::build(cfg);
    prep(&mut sys);
    let horizon = sys.drain_horizon();
    let t0 = std::time::Instant::now();
    sys.run_until(horizon);
    let wall_s = t0.elapsed().as_secs_f64();
    let report = sys.report();
    let engine = sys.engine();
    let events = engine.events_processed();
    let idle = engine.barrier_idle_secs();
    let idle_mean = if idle.is_empty() {
        0.0
    } else {
        idle.iter().sum::<f64>() / idle.len() as f64
    };
    let idle_max = idle.iter().copied().fold(0.0f64, f64::max);
    let record = BenchRecord {
        experiment: experiment.to_string(),
        nodes: cfg.topology.nodes,
        shards: engine.num_shards(),
        queue: engine.queue_kind(),
        wall_s,
        events,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_queue_depth: engine.peak_queue_depth(),
        sim_ms: horizon.as_ms(),
        dir_load_max_mean: report.dir_load_max_mean,
        epochs: engine.epochs(),
        cores: simnet::available_cores(),
        fused_rounds: engine.fused_rounds(),
        barrier_idle_mean_s: idle_mean,
        barrier_idle_max_s: idle_max,
        peak_rss_mb: peak_rss_mb(),
    };
    (sys, report, record)
}

/// Peak resident-set size of this process in MB (Linux `VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is
/// unavailable. The kernel reports the high-water mark since process
/// start, so in a multi-cell sweep the value attached to a cell is
/// "largest footprint so far" — exact for the biggest cell, an upper
/// bound for the rest.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Run Squirrel likewise.
pub fn run_squirrel(cfg: &SquirrelConfig) -> (SquirrelSystem, SquirrelReport) {
    SquirrelSystem::run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(RunScale::parse("full").unwrap(), RunScale::Full);
        assert_eq!(RunScale::parse("0.25").unwrap(), RunScale::Scaled(0.25));
        assert!(RunScale::parse("0").is_err());
        assert!(RunScale::parse("2.0").is_err());
        assert!(RunScale::parse("x").is_err());
    }

    fn opts(scale: RunScale, substrate: SubstrateKind, shards: usize) -> RunOpts {
        RunOpts {
            scale,
            substrate,
            shards,
            ..RunOpts::new().seed(1)
        }
    }

    #[test]
    fn substrate_choice_is_config_only() {
        let chord = flower_config(opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 1));
        let pastry = flower_config(opts(RunScale::Scaled(0.1), SubstrateKind::Pastry, 1));
        assert_eq!(chord.flower.substrate, SubstrateKind::Chord);
        assert_eq!(pastry.flower.substrate, SubstrateKind::Pastry);
        assert_eq!(chord.workload.duration_ms, pastry.workload.duration_ms);
        assert_eq!(chord.seed, pastry.seed);
    }

    #[test]
    fn instance_bits_flow_into_the_flower_config() {
        let mut o = opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 1);
        o.instance_bits = 2;
        let cfg = flower_config(o);
        assert_eq!(cfg.flower.instance_bits, 2);
        assert_eq!(
            flower_config(opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 1))
                .flower
                .instance_bits,
            0,
            "base design by default"
        );
    }

    #[test]
    fn shards_and_queue_flow_into_the_configs() {
        let f = flower_config(opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 4));
        assert_eq!(f.shards, 4);
        assert_eq!(f.topology.event_queue, EventQueueKind::Calendar);
        let s = squirrel_config(opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 4));
        assert_eq!(s.shards, 4);
        // 0 is normalized to 1.
        assert_eq!(
            flower_config(opts(RunScale::Full, SubstrateKind::Chord, 0)).shards,
            1
        );
        // The queue backend threads through both configs.
        let mut o = opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 1);
        o.queue = EventQueueKind::Heap;
        assert_eq!(flower_config(o).topology.event_queue, EventQueueKind::Heap);
        assert_eq!(
            squirrel_config(o).topology.event_queue,
            EventQueueKind::Heap
        );
    }

    #[test]
    fn scaled_config_shrinks_time_not_space() {
        let full = flower_config(opts(RunScale::Full, SubstrateKind::Chord, 1));
        let tenth = flower_config(opts(RunScale::Scaled(0.1), SubstrateKind::Chord, 1));
        assert_eq!(tenth.topology.nodes, full.topology.nodes);
        assert_eq!(tenth.catalog.num_websites, full.catalog.num_websites);
        assert_eq!(tenth.workload.duration_ms, full.workload.duration_ms / 10);
        assert_eq!(
            tenth.flower.t_gossip.as_ms(),
            full.flower.t_gossip.as_ms() / 10
        );
        assert_eq!(tenth.flower.v_gossip, full.flower.v_gossip);
    }
}
