//! Command-line driver regenerating every table and figure of the
//! Flower-CDN paper (§6).
//!
//! ```text
//! flower-experiments <experiment> [--scale <f|full>] [--seed <n>]
//!                    [--substrate <chord|pastry>] [--csv-dir <dir>]
//!
//! experiments:
//!   table2a | table2b | table2c | push-threshold
//!   fig5 | fig6 | fig7 | fig8
//!   churn | ablation | replication | cache | substrates | all
//! ```
//!
//! `--scale 0.1` simulates 2.4 h instead of 24 h (protocol periods
//! scale along); `--scale full` is the paper's exact setup.
//! `--substrate pastry` runs the D-ring over Pastry instead of Chord
//! (§3.1 portability; `substrates` compares the two side by side).

use std::io::Write;

use experiments::exps::{self, ExpOutput};
use experiments::runner::RunScale;
use experiments::SubstrateKind;

struct Args {
    cmd: String,
    scale: RunScale,
    seed: u64,
    substrate: SubstrateKind,
    csv_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut scale = RunScale::Scaled(0.1);
    let mut seed = 42u64;
    let mut substrate = SubstrateKind::Chord;
    let mut csv_dir = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = RunScale::parse(&v)?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--substrate" => {
                let v = args.next().ok_or("--substrate needs a value")?;
                substrate = SubstrateKind::parse(&v)?;
            }
            "--csv-dir" => {
                csv_dir = Some(args.next().ok_or("--csv-dir needs a value")?);
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        cmd,
        scale,
        seed,
        substrate,
        csv_dir,
    })
}

fn usage() -> String {
    "usage: flower-experiments <table2a|table2b|table2c|push-threshold|fig5|fig6|fig7|fig8|churn|ablation|replication|cache|substrates|all> \
     [--scale <f|full>] [--seed <n>] [--substrate <chord|pastry>] [--csv-dir <dir>]"
        .to_string()
}

fn emit(name: &str, out: &ExpOutput, csv_dir: &Option<String>) {
    println!("{}", out.text);
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        for (stem, content) in &out.csv {
            let path = format!("{dir}/{name}_{stem}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(content.as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
    if !out.all_passed() {
        eprintln!("WARNING: {name}: some shape checks failed");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    let seed = args.seed;
    let substrate = args.substrate;
    eprintln!(
        "# running {} at scale {:?} seed {} over {} ({} simulated hours)",
        args.cmd,
        scale,
        seed,
        substrate,
        24.0 * scale.factor()
    );
    let t0 = std::time::Instant::now();
    let mut failed = false;

    let mut outputs: Vec<(String, ExpOutput)> = Vec::new();
    match args.cmd.as_str() {
        "all" => {
            for name in ["table2a", "table2b", "table2c", "push-threshold", "fig5"] {
                outputs.push((name.to_string(), run_one(name, scale, seed, substrate)));
            }
            let (fsys, ssys) = exps::comparison_pair(scale, seed, substrate);
            outputs.push(("fig6".into(), exps::fig6(&fsys, &ssys)));
            outputs.push(("fig7".into(), exps::fig7(&fsys, &ssys)));
            outputs.push(("fig8".into(), exps::fig8(&fsys, &ssys)));
            drop((fsys, ssys));
            outputs.push(("churn".into(), run_one("churn", scale, seed, substrate)));
            outputs.push((
                "ablation".into(),
                run_one("ablation", scale, seed, substrate),
            ));
            outputs.push((
                "replication".into(),
                run_one("replication", scale, seed, substrate),
            ));
            outputs.push(("cache".into(), run_one("cache", scale, seed, substrate)));
            outputs.push((
                "substrates".into(),
                run_one("substrates", scale, seed, substrate),
            ));
        }
        name => outputs.push((name.to_string(), run_one(name, scale, seed, substrate))),
    }

    for (name, out) in &outputs {
        failed |= !out.all_passed();
        emit(name, out, &args.csv_dir);
    }
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}

fn run_one(name: &str, scale: RunScale, seed: u64, substrate: SubstrateKind) -> ExpOutput {
    match name {
        "table2a" => exps::table2a(scale, seed, substrate),
        "table2b" => exps::table2b(scale, seed, substrate),
        "table2c" => exps::table2c(scale, seed, substrate),
        "push-threshold" => exps::push_threshold(scale, seed, substrate),
        "fig5" => exps::fig5(scale, seed, substrate),
        "fig6" | "fig7" | "fig8" => {
            let (fsys, ssys) = exps::comparison_pair(scale, seed, substrate);
            match name {
                "fig6" => exps::fig6(&fsys, &ssys),
                "fig7" => exps::fig7(&fsys, &ssys),
                _ => exps::fig8(&fsys, &ssys),
            }
        }
        "churn" => exps::churn(scale, seed, substrate),
        "ablation" => exps::ablation(scale, seed, substrate),
        "replication" => exps::replication(scale, seed, substrate),
        "cache" => exps::cache_pressure(scale, seed, substrate),
        "substrates" => exps::substrates(scale, seed),
        other => {
            eprintln!("unknown experiment {other:?}\n{}", usage());
            std::process::exit(2);
        }
    }
}
