//! Command-line driver regenerating every table and figure of the
//! Flower-CDN paper (§6), plus the engine-scaling sweep.
//!
//! ```text
//! flower-experiments <experiment> [--scale <f|full>] [--seed <n>]
//!                    [--substrate <chord|pastry>] [--shards <n>]
//!                    [--event-queue <calendar|heap|both>]
//!                    [--lookahead <matrix|global|both>]
//!                    [--instance-bits <b|a,b,..>] [--pin]
//!                    [--csv-dir <dir>] [--bench-out <file>]
//!                    [--metrics-out <file>]
//!
//! experiments:
//!   table2a | table2b | table2c | push-threshold
//!   fig5 | fig6 | fig7 | fig8
//!   churn | ablation | replication | cache | substrates | chaos | all
//!   scale [--nodes <a,b,..>] [--shard-sweep <a,b,..>] [--horizon-secs <s>]
//!   bench-check --baseline <file> --fresh <file>
//!               [--max-drop <frac>] [--summary-out <file>] [--metrics <file>]
//!   metrics-check --metrics <file> [--summary-out <file>]
//! ```
//!
//! `--scale 0.1` simulates 2.4 h instead of 24 h (protocol periods
//! scale along); `--scale full` is the paper's exact setup.
//! `--substrate pastry` runs the D-ring over Pastry instead of Chord
//! (§3.1 portability; `substrates` compares the two side by side).
//! `--shards N` runs the simulation engine on N locality shards
//! (worker threads); results are bit-identical for every N.
//! `--instance-bits b` enables the §5.3 PetalUp scale-up: up to `2^b`
//! load-adaptive directory instances per (website, locality) petal
//! (`scale` accepts a comma list and sweeps it).
//! `--event-queue` picks the engine's event storage (results are
//! bit-identical for both backends; `both` is only valid for `scale`,
//! which then sweeps the two side by side).
//! `--lookahead` picks how the sharded engine bounds its epochs: the
//! per-shard-pair lookahead matrix (default) or the single global
//! floor — bit-identical results, fewer barrier rounds under
//! `matrix`; `both` (scale only) sweeps the two, naming global-floor
//! cells `…/glf`.
//! `scale` sweeps node counts × shard counts × queue backends and
//! reports events/sec, wall time and peak queue depth; `--bench-out
//! BENCH_engine.json` writes all engine measurements machine-readably.
//! `--pin` pins each shard worker thread to a core chosen by the
//! engine's latency-aware placement (chattiest shard pairs on
//! adjacent cores); wall-clock only — results are bit-identical with
//! and without it, and it degrades gracefully where the host forbids
//! affinity changes.
//! `bench-check` is the CI regression gate: it compares a fresh
//! bench document against the committed baseline, prints a markdown
//! throughput summary, and exits non-zero if events/sec dropped more
//! than `--max-drop` (default 0.20) at any matched point. Records
//! only compare within one host core count; a core-count mismatch is
//! an explicit SKIP (exit 0), not a pass. With `--metrics
//! METRICS.json` it validates the run's registry snapshots and
//! appends the per-subsystem attribution table to the summary.
//! `--metrics-out METRICS.json` (for `scale`, `churn` and `chaos`)
//! writes the registry snapshots of every cell machine-readably;
//! `metrics-check` validates such a document standalone (the CI
//! metrics-smoke assertions) and prints its attribution table.
//! `chaos` runs the fault-injection plane end to end (scripted
//! partition + heal, flash crowd, cross-locality message loss,
//! correlated regional failure), each family across a shard sweep
//! that must stay bit-identical, and reports the availability each
//! fault costs (hit-ratio dip depth, time-to-recover after heal).
//! Chaos cells are availability experiments, not throughput cells, so
//! the committed bench baseline omits them: a bench-check whose fresh
//! document holds only chaos cells prints an explicit per-cell SKIP
//! and exits 0 instead of the zero-matches hard error.
//! `--nodes` with a single value overrides the underlay node count of
//! any experiment (e.g. `churn --nodes 50000`, `chaos --nodes 1000`).

use std::io::Write;

use experiments::exps::{self, ExpOutput, ScaleParams};
use experiments::gate;
use experiments::report::{bench_json, metrics_json, BenchRecord, MetricsRecord};
use experiments::runner::{RunOpts, RunScale};
use experiments::{EventQueueKind, LookaheadKind, SubstrateKind};
use simnet::SimDuration;

struct Args {
    cmd: String,
    opts: RunOpts,
    /// Queue sweep of the `scale` experiment (`--event-queue both`).
    queue_sweep: Vec<EventQueueKind>,
    /// Lookahead sweep of the `scale` experiment (`--lookahead both`).
    lookahead_sweep: Vec<LookaheadKind>,
    csv_dir: Option<String>,
    bench_out: Option<String>,
    /// `--metrics-out`: write the registry snapshots as METRICS.json.
    metrics_out: Option<String>,
    /// `--metrics`: METRICS.json to validate (metrics-check) or fold
    /// into the bench-check summary.
    metrics_in: Option<String>,
    scale_nodes: Vec<usize>,
    scale_shards: Vec<usize>,
    /// Append the WAN lookahead-comparison cells to the `scale` sweep.
    scale_wan: bool,
    /// §5.3 instance-bits sweep of the `scale` experiment (single
    /// value for every other experiment).
    scale_bits: Vec<u32>,
    horizon_secs: u64,
    // bench-check:
    baseline: Option<String>,
    fresh: Option<String>,
    max_drop: f64,
    summary_out: Option<String>,
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list entry {p:?}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut out = Args {
        cmd,
        opts: RunOpts::new(),
        queue_sweep: vec![EventQueueKind::default()],
        lookahead_sweep: vec![LookaheadKind::default()],
        csv_dir: None,
        bench_out: None,
        metrics_out: None,
        metrics_in: None,
        scale_nodes: vec![10_000, 50_000, 100_000],
        scale_shards: vec![1, 2, 4, 8],
        scale_wan: false,
        scale_bits: vec![0],
        horizon_secs: 60,
        baseline: None,
        fresh: None,
        max_drop: 0.20,
        summary_out: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                out.opts.scale = RunScale::parse(&v)?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                out.opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--substrate" => {
                let v = args.next().ok_or("--substrate needs a value")?;
                out.opts.substrate = SubstrateKind::parse(&v)?;
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                out.opts.shards = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if out.opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--event-queue" => {
                let v = args.next().ok_or("--event-queue needs a value")?;
                if v == "both" {
                    if out.cmd != "scale" {
                        return Err("--event-queue both is only valid for `scale`".into());
                    }
                    out.queue_sweep = vec![EventQueueKind::Calendar, EventQueueKind::Heap];
                } else {
                    out.opts.queue = EventQueueKind::parse(&v)?;
                    out.queue_sweep = vec![out.opts.queue];
                }
            }
            "--lookahead" => {
                let v = args.next().ok_or("--lookahead needs a value")?;
                if v == "both" {
                    if out.cmd != "scale" {
                        return Err("--lookahead both is only valid for `scale`".into());
                    }
                    out.lookahead_sweep = vec![LookaheadKind::Matrix, LookaheadKind::GlobalFloor];
                } else {
                    out.opts.lookahead = LookaheadKind::parse(&v)?;
                    out.lookahead_sweep = vec![out.opts.lookahead];
                }
            }
            "--csv-dir" => {
                out.csv_dir = Some(args.next().ok_or("--csv-dir needs a value")?);
            }
            "--bench-out" => {
                out.bench_out = Some(args.next().ok_or("--bench-out needs a value")?);
            }
            "--metrics-out" => {
                out.metrics_out = Some(args.next().ok_or("--metrics-out needs a value")?);
            }
            "--metrics" => {
                out.metrics_in = Some(args.next().ok_or("--metrics needs a value")?);
            }
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                out.scale_nodes = parse_list(&v)?;
                // Outside `scale` the flag is a single node-count
                // override for the experiment's deployment.
                if out.scale_nodes.len() == 1 {
                    out.opts.nodes = Some(out.scale_nodes[0]);
                } else if out.cmd != "scale" {
                    return Err("--nodes takes a single value outside `scale`".into());
                }
            }
            "--shard-sweep" => {
                let v = args.next().ok_or("--shard-sweep needs a value")?;
                out.scale_shards = parse_list(&v)?;
            }
            "--instance-bits" => {
                let v = args.next().ok_or("--instance-bits needs a value")?;
                let bits: Vec<u32> = parse_list(&v)?.into_iter().map(|b| b as u32).collect();
                if bits.is_empty() {
                    return Err("--instance-bits needs at least one value".into());
                }
                if bits.len() > 1 && out.cmd != "scale" {
                    return Err("an --instance-bits sweep is only valid for `scale`".into());
                }
                out.opts.instance_bits = bits[0];
                out.scale_bits = bits;
            }
            "--wan" => {
                if out.cmd != "scale" {
                    return Err("--wan is only valid for `scale`".into());
                }
                out.scale_wan = true;
            }
            "--pin" => {
                out.opts.pin = true;
            }
            "--horizon-secs" => {
                let v = args.next().ok_or("--horizon-secs needs a value")?;
                out.horizon_secs = v.parse().map_err(|_| format!("bad horizon {v:?}"))?;
            }
            "--baseline" => {
                out.baseline = Some(args.next().ok_or("--baseline needs a value")?);
            }
            "--fresh" => {
                out.fresh = Some(args.next().ok_or("--fresh needs a value")?);
            }
            "--max-drop" => {
                let v = args.next().ok_or("--max-drop needs a value")?;
                out.max_drop = v.parse().map_err(|_| format!("bad max drop {v:?}"))?;
                if !(0.0..1.0).contains(&out.max_drop) {
                    return Err(format!(
                        "--max-drop must be in [0, 1), got {}",
                        out.max_drop
                    ));
                }
            }
            "--summary-out" => {
                out.summary_out = Some(args.next().ok_or("--summary-out needs a value")?);
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(out)
}

fn usage() -> String {
    "usage: flower-experiments <table2a|table2b|table2c|push-threshold|fig5|fig6|fig7|fig8|churn|ablation|replication|cache|substrates|chaos|scale|bench-check|metrics-check|all> \
     [--scale <f|full>] [--seed <n>] [--substrate <chord|pastry>] [--shards <n>] \
     [--event-queue <calendar|heap|both>] [--lookahead <matrix|global|both>] \
     [--instance-bits <b|a,b,..>] [--pin] \
     [--csv-dir <dir>] [--bench-out <file>] [--metrics-out <file>] \
     [--nodes <a,b,..>] [--shard-sweep <a,b,..>] [--horizon-secs <s>] [--wan] \
     [--baseline <file> --fresh <file> [--max-drop <frac>] [--summary-out <file>] [--metrics <file>]]"
        .to_string()
}

/// The CI bench-regression gate (`bench-check`): compare a fresh
/// BENCH document against the committed baseline, print the markdown
/// summary, and exit non-zero on a regression beyond `--max-drop`.
///
/// Zero matched points is an *error*, not a pass: it means the CI
/// flags and the committed baseline have drifted apart (different
/// horizon, sweep cells or queue backends), which would otherwise
/// turn the gate into a permanently green no-op. The one exception:
/// when the same cells matched but the *host core count* differs
/// (baseline recorded on a 1-core container, fresh run on an 8-core
/// runner, or vice versa), the check prints an explicit SKIP and
/// exits 0 — cross-core throughput deltas decide nothing, and a hard
/// failure would block every PR touching only the runner fleet.
fn bench_check(args: &Args) -> Result<bool, String> {
    let baseline_path = args
        .baseline
        .as_deref()
        .ok_or("bench-check needs --baseline <file>")?;
    let fresh_path = args
        .fresh
        .as_deref()
        .ok_or("bench-check needs --fresh <file>")?;
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"));
    let baseline =
        gate::parse_bench(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = gate::parse_bench(&read(fresh_path)?).map_err(|e| format!("{fresh_path}: {e}"))?;
    let report = gate::compare(&baseline, &fresh, args.max_drop);
    let mut md = report.to_markdown();
    if let Some(path) = &args.metrics_in {
        let doc = gate::parse_metrics(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
        gate::validate_metrics(&doc).map_err(|e| format!("{path}: {e}"))?;
        md.push('\n');
        md.push_str(&gate::metrics_markdown(&doc));
    }
    println!("{md}");
    if let Some(path) = &args.summary_out {
        std::fs::write(path, &md).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.core_skip() {
        eprintln!(
            "bench-check: SKIPPED, not passed — every matching cell in the baseline was \
             measured on a different host core count ({} fresh point(s); baseline host \
             {:?}, fresh host {:?}). Throughput is only comparable within one core \
             count; re-record the baseline on this runner class to re-arm the gate.",
            report.skipped_cores.len(),
            baseline.host,
            fresh.host,
        );
        return Ok(true);
    }
    if report.chaos_skip() {
        for r in &report.unmatched {
            eprintln!(
                "bench-check: SKIP {} ({} nodes, {} shards): chaos cell not in the \
                 committed baseline",
                r.experiment, r.nodes, r.shards
            );
        }
        eprintln!(
            "bench-check: SKIPPED, not passed — all {} fresh point(s) are chaos \
             availability cells the committed baseline intentionally omits; the \
             throughput gate decides nothing here.",
            report.unmatched.len()
        );
        return Ok(true);
    }
    if report.rows.is_empty() {
        return Err(
            "bench-check: no fresh point matched the baseline — the gate would compare \
             nothing. The smoke run's flags (experiment names, node/shard counts, queue \
             backends, horizons) have drifted from the committed BENCH_engine.json; \
             re-record the baseline or fix the flags."
                .into(),
        );
    }
    Ok(report.passed())
}

/// The CI metrics-smoke check (`metrics-check`): parse a METRICS.json
/// document, run the [`gate::validate_metrics`] assertions (non-empty
/// registry, counter cross-invariants, histogram count/sum
/// consistency, sim-scope equality across execution variants), and
/// print the per-subsystem attribution table.
fn metrics_check(args: &Args) -> Result<(), String> {
    let path = args
        .metrics_in
        .as_deref()
        .ok_or("metrics-check needs --metrics <file>")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = gate::parse_metrics(&json).map_err(|e| format!("{path}: {e}"))?;
    gate::validate_metrics(&doc).map_err(|e| format!("{path}: {e}"))?;
    let md = gate::metrics_markdown(&doc);
    println!("{md}");
    if let Some(out) = &args.summary_out {
        std::fs::write(out, &md).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    eprintln!(
        "metrics-check: OK — {} record(s), schema {}",
        doc.records.len(),
        doc.schema
    );
    Ok(())
}

fn emit(name: &str, out: &ExpOutput, csv_dir: &Option<String>) {
    println!("{}", out.text);
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        for (stem, content) in &out.csv {
            let path = format!("{dir}/{name}_{stem}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(content.as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
    if !out.all_passed() {
        eprintln!("WARNING: {name}: some shape checks failed");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.cmd == "metrics-check" {
        match metrics_check(&args) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if args.cmd == "bench-check" {
        match bench_check(&args) {
            Ok(true) => return,
            Ok(false) => {
                eprintln!("bench-check: throughput regression beyond the gate");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let opts = args.opts;
    eprintln!(
        "# running {} at scale {:?} seed {} over {} with {} shard(s) on the {} queue",
        args.cmd, opts.scale, opts.seed, opts.substrate, opts.shards, opts.queue
    );
    let t0 = std::time::Instant::now();
    let mut failed = false;

    let mut outputs: Vec<(String, ExpOutput)> = Vec::new();
    match args.cmd.as_str() {
        "all" => {
            for name in ["table2a", "table2b", "table2c", "push-threshold", "fig5"] {
                outputs.push((name.to_string(), run_one(name, &args)));
            }
            let (fsys, ssys) = exps::comparison_pair(opts);
            outputs.push(("fig6".into(), exps::fig6(&fsys, &ssys)));
            outputs.push(("fig7".into(), exps::fig7(&fsys, &ssys)));
            outputs.push(("fig8".into(), exps::fig8(&fsys, &ssys)));
            drop((fsys, ssys));
            for name in ["churn", "ablation", "replication", "cache", "substrates"] {
                outputs.push((name.to_string(), run_one(name, &args)));
            }
        }
        name => outputs.push((name.to_string(), run_one(name, &args))),
    }

    let mut bench: Vec<BenchRecord> = Vec::new();
    let mut metrics_records: Vec<MetricsRecord> = Vec::new();
    for (name, out) in &outputs {
        failed |= !out.all_passed();
        emit(name, out, &args.csv_dir);
        bench.extend(out.bench.iter().cloned());
        metrics_records.extend(out.metrics.iter().cloned());
    }
    let queues = args
        .queue_sweep
        .iter()
        .map(|q| q.to_string())
        .collect::<Vec<_>>()
        .join("+");
    let host = format!(
        "{} cpus, {}, queue={}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0),
        std::env::consts::ARCH,
        queues
    );
    if let Some(path) = &args.bench_out {
        std::fs::write(path, bench_json(&host, &bench)).expect("write bench json");
        eprintln!("wrote {path} ({} records)", bench.len());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics_json(&host, &metrics_records)).expect("write metrics json");
        eprintln!("wrote {path} ({} records)", metrics_records.len());
    }
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}

fn run_one(name: &str, args: &Args) -> ExpOutput {
    let opts = args.opts;
    match name {
        "table2a" => exps::table2a(opts),
        "table2b" => exps::table2b(opts),
        "table2c" => exps::table2c(opts),
        "push-threshold" => exps::push_threshold(opts),
        "fig5" => exps::fig5(opts),
        "fig6" | "fig7" | "fig8" => {
            let (fsys, ssys) = exps::comparison_pair(opts);
            match name {
                "fig6" => exps::fig6(&fsys, &ssys),
                "fig7" => exps::fig7(&fsys, &ssys),
                _ => exps::fig8(&fsys, &ssys),
            }
        }
        "churn" => exps::churn(opts),
        "chaos" => exps::chaos(opts),
        "ablation" => exps::ablation(opts),
        "replication" => exps::replication(opts),
        "cache" => exps::cache_pressure(opts),
        "substrates" => exps::substrates(opts),
        "scale" => exps::scale(&ScaleParams {
            nodes: args.scale_nodes.clone(),
            shards: args.scale_shards.clone(),
            queues: args.queue_sweep.clone(),
            lookaheads: args.lookahead_sweep.clone(),
            instance_bits: args.scale_bits.clone(),
            horizon: SimDuration::from_secs(args.horizon_secs),
            seed: opts.seed,
            wan: args.scale_wan,
            pin: opts.pin,
        }),
        other => {
            eprintln!("unknown experiment {other:?}\n{}", usage());
            std::process::exit(2);
        }
    }
}
