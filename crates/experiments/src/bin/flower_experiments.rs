//! Command-line driver regenerating every table and figure of the
//! Flower-CDN paper (§6), plus the engine-scaling sweep.
//!
//! ```text
//! flower-experiments <experiment> [--scale <f|full>] [--seed <n>]
//!                    [--substrate <chord|pastry>] [--shards <n>]
//!                    [--csv-dir <dir>] [--bench-out <file>]
//!
//! experiments:
//!   table2a | table2b | table2c | push-threshold
//!   fig5 | fig6 | fig7 | fig8
//!   churn | ablation | replication | cache | substrates | all
//!   scale [--nodes <a,b,..>] [--shard-sweep <a,b,..>] [--horizon-secs <s>]
//! ```
//!
//! `--scale 0.1` simulates 2.4 h instead of 24 h (protocol periods
//! scale along); `--scale full` is the paper's exact setup.
//! `--substrate pastry` runs the D-ring over Pastry instead of Chord
//! (§3.1 portability; `substrates` compares the two side by side).
//! `--shards N` runs the simulation engine on N locality shards
//! (worker threads); results are bit-identical for every N.
//! `scale` sweeps node counts × shard counts and reports events/sec,
//! wall time and peak queue depth; `--bench-out BENCH_engine.json`
//! writes all engine measurements machine-readably.

use std::io::Write;

use experiments::exps::{self, ExpOutput, ScaleParams};
use experiments::report::{bench_json, BenchRecord};
use experiments::runner::RunScale;
use experiments::SubstrateKind;
use simnet::SimDuration;

struct Args {
    cmd: String,
    scale: RunScale,
    seed: u64,
    substrate: SubstrateKind,
    shards: usize,
    csv_dir: Option<String>,
    bench_out: Option<String>,
    scale_nodes: Vec<usize>,
    scale_shards: Vec<usize>,
    horizon_secs: u64,
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list entry {p:?}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut out = Args {
        cmd,
        scale: RunScale::Scaled(0.1),
        seed: 42,
        substrate: SubstrateKind::Chord,
        shards: 1,
        csv_dir: None,
        bench_out: None,
        scale_nodes: vec![10_000, 50_000, 100_000],
        scale_shards: vec![1, 2, 4, 8],
        horizon_secs: 60,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                out.scale = RunScale::parse(&v)?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--substrate" => {
                let v = args.next().ok_or("--substrate needs a value")?;
                out.substrate = SubstrateKind::parse(&v)?;
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                out.shards = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if out.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--csv-dir" => {
                out.csv_dir = Some(args.next().ok_or("--csv-dir needs a value")?);
            }
            "--bench-out" => {
                out.bench_out = Some(args.next().ok_or("--bench-out needs a value")?);
            }
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                out.scale_nodes = parse_list(&v)?;
            }
            "--shard-sweep" => {
                let v = args.next().ok_or("--shard-sweep needs a value")?;
                out.scale_shards = parse_list(&v)?;
            }
            "--horizon-secs" => {
                let v = args.next().ok_or("--horizon-secs needs a value")?;
                out.horizon_secs = v.parse().map_err(|_| format!("bad horizon {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(out)
}

fn usage() -> String {
    "usage: flower-experiments <table2a|table2b|table2c|push-threshold|fig5|fig6|fig7|fig8|churn|ablation|replication|cache|substrates|scale|all> \
     [--scale <f|full>] [--seed <n>] [--substrate <chord|pastry>] [--shards <n>] \
     [--csv-dir <dir>] [--bench-out <file>] \
     [--nodes <a,b,..>] [--shard-sweep <a,b,..>] [--horizon-secs <s>]"
        .to_string()
}

fn emit(name: &str, out: &ExpOutput, csv_dir: &Option<String>) {
    println!("{}", out.text);
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        for (stem, content) in &out.csv {
            let path = format!("{dir}/{name}_{stem}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(content.as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
    if !out.all_passed() {
        eprintln!("WARNING: {name}: some shape checks failed");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    let seed = args.seed;
    let substrate = args.substrate;
    let shards = args.shards;
    eprintln!(
        "# running {} at scale {:?} seed {} over {} with {} shard(s)",
        args.cmd, scale, seed, substrate, shards
    );
    let t0 = std::time::Instant::now();
    let mut failed = false;

    let mut outputs: Vec<(String, ExpOutput)> = Vec::new();
    match args.cmd.as_str() {
        "all" => {
            for name in ["table2a", "table2b", "table2c", "push-threshold", "fig5"] {
                outputs.push((name.to_string(), run_one(name, &args)));
            }
            let (fsys, ssys) = exps::comparison_pair(scale, seed, substrate, shards);
            outputs.push(("fig6".into(), exps::fig6(&fsys, &ssys)));
            outputs.push(("fig7".into(), exps::fig7(&fsys, &ssys)));
            outputs.push(("fig8".into(), exps::fig8(&fsys, &ssys)));
            drop((fsys, ssys));
            for name in ["churn", "ablation", "replication", "cache", "substrates"] {
                outputs.push((name.to_string(), run_one(name, &args)));
            }
        }
        name => outputs.push((name.to_string(), run_one(name, &args))),
    }

    let mut bench: Vec<BenchRecord> = Vec::new();
    for (name, out) in &outputs {
        failed |= !out.all_passed();
        emit(name, out, &args.csv_dir);
        bench.extend(out.bench.iter().cloned());
    }
    if let Some(path) = &args.bench_out {
        let host = format!(
            "{} cpus, {}",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0),
            std::env::consts::ARCH
        );
        std::fs::write(path, bench_json(&host, &bench)).expect("write bench json");
        eprintln!("wrote {path} ({} records)", bench.len());
    }
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}

fn run_one(name: &str, args: &Args) -> ExpOutput {
    let (scale, seed, substrate, shards) = (args.scale, args.seed, args.substrate, args.shards);
    match name {
        "table2a" => exps::table2a(scale, seed, substrate, shards),
        "table2b" => exps::table2b(scale, seed, substrate, shards),
        "table2c" => exps::table2c(scale, seed, substrate, shards),
        "push-threshold" => exps::push_threshold(scale, seed, substrate, shards),
        "fig5" => exps::fig5(scale, seed, substrate, shards),
        "fig6" | "fig7" | "fig8" => {
            let (fsys, ssys) = exps::comparison_pair(scale, seed, substrate, shards);
            match name {
                "fig6" => exps::fig6(&fsys, &ssys),
                "fig7" => exps::fig7(&fsys, &ssys),
                _ => exps::fig8(&fsys, &ssys),
            }
        }
        "churn" => exps::churn(scale, seed, substrate, shards),
        "ablation" => exps::ablation(scale, seed, substrate, shards),
        "replication" => exps::replication(scale, seed, substrate, shards),
        "cache" => exps::cache_pressure(scale, seed, substrate, shards),
        "substrates" => exps::substrates(scale, seed, shards),
        "scale" => exps::scale(&ScaleParams {
            nodes: args.scale_nodes.clone(),
            shards: args.scale_shards.clone(),
            horizon: SimDuration::from_secs(args.horizon_secs),
            seed,
        }),
        other => {
            eprintln!("unknown experiment {other:?}\n{}", usage());
            std::process::exit(2);
        }
    }
}
