//! The CI bench-regression gate: parse two `BENCH_engine.json`
//! documents (the committed baseline and a freshly measured one),
//! match their records point by point, and fail if throughput dropped
//! beyond a tolerance at any matched point. Also home of the
//! `METRICS.json` side of the gate: schema-v1 parsing, the
//! metrics-smoke validation (non-empty registry, counter
//! cross-invariants, histogram count/sum consistency, sim-scope
//! equality across execution variants) and the per-subsystem
//! attribution table rendered into the CI step summary.
//!
//! The parser is hand-rolled for exactly the document shape
//! [`crate::report::bench_json`] emits (the build environment has no
//! serde): a flat object with `schema`/`host` strings and a `records`
//! array of flat objects with string, number and `null` fields. Every
//! schema from `v1` through the current `v6` is accepted, so the gate
//! keeps working across schema bumps: `v1` (no `queue` field; records
//! default to the heap backend that was the only implementation
//! then), `v2` (no `dir_load_max_mean` column; defaults to 0), `v3`
//! (no `epochs` barrier-round column; defaults to 0), `v4` (no
//! `cores`/`fused_rounds`/barrier-idle columns; `cores` falls back to
//! the count parsed from the `host` string, the rest default to 0),
//! `v5` (no `peak_rss_mb` column; backfilled as `None`, i.e. "not
//! measured" — memory deltas are *reported* in the summary but never
//! gate the build).
//!
//! Records are matched **within one core count only**: throughput on
//! a 1-core container says nothing about an 8-core runner, so a
//! baseline measured on a different core count yields an explicit
//! *skip* ([`GateReport::core_skip`]) rather than a hollow pass or a
//! bogus fail.

use std::fmt::Write as _;

use simnet::EventQueueKind;

use crate::report::{BenchRecord, BENCH_SCHEMA};

/// A parsed `BENCH_engine.json`.
#[derive(Clone, Debug)]
pub struct BenchDoc {
    /// Schema tag (`flower-cdn/bench-engine/v1` through `v6`).
    pub schema: String,
    /// Free-form host description (core count, arch, queue backend).
    pub host: String,
    /// The measurements.
    pub records: Vec<BenchRecord>,
}

/// Identity of a measured point: two records are comparable when the
/// experiment cell, population, shard count, queue backend, simulated
/// horizon *and host core count* all agree.
fn match_key(r: &BenchRecord) -> (String, usize, usize, EventQueueKind, u64, usize) {
    (
        r.experiment.clone(),
        r.nodes,
        r.shards,
        r.queue,
        r.sim_ms,
        r.cores,
    )
}

/// As [`match_key`] without the core count — used to tell a *new*
/// cell (nothing like it in the baseline) from a *skipped* one (same
/// cell, measured on a host with a different core count).
fn cell_key(r: &BenchRecord) -> (String, usize, usize, EventQueueKind, u64) {
    (r.experiment.clone(), r.nodes, r.shards, r.queue, r.sim_ms)
}

/// The core count a host string like `"8 cpus, x86_64, …"` advertises
/// (every emitter since `v1` has used that shape); `None` when the
/// string does not lead with an integer.
fn host_cores(host: &str) -> Option<usize> {
    let digits: String = host.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------- //
// Parsing                                                          //
// ---------------------------------------------------------------- //

#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    /// JSON `null` — used by nullable columns (`peak_rss_mb`) for
    /// "not measured".
    Null,
}

/// A full JSON tree — the `METRICS.json` document nests objects and
/// arrays, so the flat-scalar [`Value`] is not enough there.
#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field(&self, key: &str, what: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            _ => Err(format!("{what}: missing string field {key:?}")),
        }
    }

    fn u64_field(&self, key: &str, what: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err(format!(
                "{what}: field {key:?} must be a non-negative integer"
            )),
        }
    }

    fn arr_field<'a>(&'a self, key: &str, what: &str) -> Result<&'a [Json], String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(format!("{what}: missing array field {key:?}")),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("bench json: {what} at byte {}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.i += 1;
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(self.err(&format!("escape \\{}", other as char))),
                    });
                }
                other => out.push(other as char),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => {
                if self.s[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected null"))
                }
            }
            Some(_) => Ok(Value::Num(self.number()?)),
            None => Err(self.err("unexpected end")),
        }
    }

    /// A full JSON tree (used by the `METRICS.json` parser, whose
    /// records nest arrays of objects).
    fn json(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.eat(b'}') {
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.json()?));
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.json()?);
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    self.expect(b',')?;
                }
            }
            _ => Ok(match self.value()? {
                Value::Str(s) => Json::Str(s),
                Value::Num(n) => Json::Num(n),
                Value::Null => Json::Null,
            }),
        }
    }

    /// A flat `{"key": scalar, ...}` object.
    fn flat_object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            if self.eat(b'}') {
                return Ok(fields);
            }
            self.expect(b',')?;
        }
    }
}

fn record_from_fields(fields: Vec<(String, Value)>, idx: usize) -> Result<BenchRecord, String> {
    let mut r = BenchRecord {
        experiment: String::new(),
        nodes: 0,
        shards: 0,
        // v1 documents predate the calendar backend.
        queue: EventQueueKind::Heap,
        wall_s: 0.0,
        events: 0,
        events_per_sec: 0.0,
        peak_queue_depth: 0,
        sim_ms: 0,
        // v1/v2 documents predate the directory-load column.
        dir_load_max_mean: 0.0,
        // v1–v3 documents predate the epochs column.
        epochs: 0,
        // v1–v4 documents predate the multi-core columns; `cores` is
        // backfilled from the host string by [`parse_bench`].
        cores: 0,
        fused_rounds: 0,
        barrier_idle_mean_s: 0.0,
        barrier_idle_max_s: 0.0,
        // v1–v5 documents predate the peak-RSS column; `None` means
        // "not measured", which the memory report renders as a dash.
        peak_rss_mb: None,
    };
    let mut seen_experiment = false;
    for (key, value) in fields {
        let bad = || format!("record {idx}: field {key:?} has the wrong type");
        match (key.as_str(), value) {
            ("experiment", Value::Str(s)) => {
                r.experiment = s;
                seen_experiment = true;
            }
            ("queue", Value::Str(s)) => r.queue = EventQueueKind::parse(&s)?,
            ("nodes", Value::Num(n)) => r.nodes = n as usize,
            ("shards", Value::Num(n)) => r.shards = n as usize,
            ("wall_s", Value::Num(n)) => r.wall_s = n,
            ("events", Value::Num(n)) => r.events = n as u64,
            ("events_per_sec", Value::Num(n)) => r.events_per_sec = n,
            ("peak_queue_depth", Value::Num(n)) => r.peak_queue_depth = n as usize,
            ("sim_ms", Value::Num(n)) => r.sim_ms = n as u64,
            ("dir_load_max_mean", Value::Num(n)) => r.dir_load_max_mean = n,
            ("epochs", Value::Num(n)) => r.epochs = n as u64,
            ("cores", Value::Num(n)) => r.cores = n as usize,
            ("fused_rounds", Value::Num(n)) => r.fused_rounds = n as u64,
            ("barrier_idle_mean_s", Value::Num(n)) => r.barrier_idle_mean_s = n,
            ("barrier_idle_max_s", Value::Num(n)) => r.barrier_idle_max_s = n,
            ("peak_rss_mb", Value::Num(n)) => r.peak_rss_mb = Some(n),
            ("peak_rss_mb", Value::Null) => r.peak_rss_mb = None,
            (
                "experiment"
                | "queue"
                | "nodes"
                | "shards"
                | "wall_s"
                | "events"
                | "events_per_sec"
                | "peak_queue_depth"
                | "sim_ms"
                | "dir_load_max_mean"
                | "epochs"
                | "cores"
                | "fused_rounds"
                | "barrier_idle_mean_s"
                | "barrier_idle_max_s"
                | "peak_rss_mb",
                _,
            ) => return Err(bad()),
            _ => {} // unknown fields: forward compatibility
        }
    }
    if !seen_experiment {
        return Err(format!("record {idx}: missing \"experiment\""));
    }
    Ok(r)
}

/// Parse a `BENCH_engine.json` document.
pub fn parse_bench(json: &str) -> Result<BenchDoc, String> {
    let mut p = Parser::new(json);
    let mut doc = BenchDoc {
        schema: String::new(),
        host: String::new(),
        records: Vec::new(),
    };
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "schema" => doc.schema = p.string()?,
            "host" => doc.host = p.string()?,
            "records" => {
                p.expect(b'[')?;
                if !p.eat(b']') {
                    loop {
                        let fields = p.flat_object()?;
                        doc.records
                            .push(record_from_fields(fields, doc.records.len())?);
                        if p.eat(b']') {
                            break;
                        }
                        p.expect(b',')?;
                    }
                }
            }
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    match doc.schema.as_str() {
        "flower-cdn/bench-engine/v1"
        | "flower-cdn/bench-engine/v2"
        | "flower-cdn/bench-engine/v3"
        | "flower-cdn/bench-engine/v4"
        | "flower-cdn/bench-engine/v5"
        | BENCH_SCHEMA => {
            // Pre-v5 records carry no `cores` column; the host string
            // has advertised the core count since v1, so backfill the
            // gate's comparison key from it.
            if let Some(cores) = host_cores(&doc.host) {
                for r in &mut doc.records {
                    if r.cores == 0 {
                        r.cores = cores;
                    }
                }
            }
            Ok(doc)
        }
        other => Err(format!("unsupported schema {other:?}")),
    }
}

// ---------------------------------------------------------------- //
// Comparison                                                       //
// ---------------------------------------------------------------- //

/// One matched (baseline, fresh) measurement pair.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// The measured point (fresh side).
    pub fresh: BenchRecord,
    /// Baseline events/second at the same point.
    pub base_eps: f64,
    /// Relative change: `fresh/base − 1` (negative = regression).
    pub delta: f64,
    /// True if this point regressed beyond the tolerance.
    pub failed: bool,
    /// Baseline peak RSS at the same point (`None` when the baseline
    /// predates the v6 column). Memory is *reported*, never gated —
    /// see [`MEM_REPORT_GROWTH`].
    pub base_rss_mb: Option<f64>,
}

/// Relative peak-RSS growth beyond which the markdown summary calls a
/// matched point out as a memory regression. Informational only: RSS
/// never contributes to [`GateReport::passed`] — the process
/// high-water mark is monotone over a multi-cell sweep, so per-cell
/// attribution is too soft to gate on yet.
pub const MEM_REPORT_GROWTH: f64 = 0.10;

/// Outcome of a bench-regression check.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Matched points, in fresh-document order.
    pub rows: Vec<GateRow>,
    /// Fresh points with no baseline counterpart (reported, not
    /// failed: new sweep cells should not need a two-step landing).
    pub unmatched: Vec<BenchRecord>,
    /// Fresh points whose baseline counterpart was measured on a host
    /// with a *different core count* (same cell otherwise). These are
    /// skipped, not compared: cross-core-count throughput deltas are
    /// meaningless.
    pub skipped_cores: Vec<BenchRecord>,
    /// Host strings of (baseline, fresh) — a mismatch makes absolute
    /// comparisons soft, which the summary calls out.
    pub hosts: (String, String),
    /// The tolerated relative drop (e.g. 0.20).
    pub max_drop: f64,
}

impl GateReport {
    /// True if no matched point regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        !self.rows.iter().any(|r| r.failed)
    }

    /// True when the check decided nothing at all because every cell
    /// the baseline covers was measured on a different core count —
    /// the caller should report a SKIP, not a pass.
    pub fn core_skip(&self) -> bool {
        self.rows.is_empty() && !self.skipped_cores.is_empty()
    }

    /// True when the check decided nothing because every fresh point
    /// is a chaos cell absent from the committed baseline (the chaos
    /// families are availability experiments, not throughput cells, so
    /// the baseline intentionally omits them). The caller should
    /// report an explicit SKIP naming the cells — never a hollow pass.
    pub fn chaos_skip(&self) -> bool {
        self.rows.is_empty()
            && self.skipped_cores.is_empty()
            && !self.unmatched.is_empty()
            && self
                .unmatched
                .iter()
                .all(|r| r.experiment.starts_with("chaos/"))
    }

    /// Render the per-commit throughput summary as GitHub-flavoured
    /// markdown (for `$GITHUB_STEP_SUMMARY`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### Engine throughput vs committed baseline ({})\n",
            if !self.passed() {
                "FAIL"
            } else if self.core_skip() {
                "SKIP — core counts differ"
            } else {
                "PASS"
            }
        );
        let _ = writeln!(
            out,
            "| experiment | nodes | shards | queue | baseline ev/s | fresh ev/s | Δ | epochs | peak RSS | gate |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
        let epochs_cell = |r: &BenchRecord| {
            if r.shards > 1 {
                r.epochs.to_string()
            } else {
                "—".to_string()
            }
        };
        let rss_cell = |fresh: Option<f64>, base: Option<f64>| match (fresh, base) {
            (Some(f), Some(b)) if b > 0.0 => {
                format!("{:.0} MB ({:+.1}%)", f, (f / b - 1.0) * 100.0)
            }
            (Some(f), _) => format!("{f:.0} MB"),
            (None, _) => "—".to_string(),
        };
        for row in &self.rows {
            let r = &row.fresh;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.0} | {:.0} | {:+.1}% | {} | {} | {} |",
                r.experiment,
                r.nodes,
                r.shards,
                r.queue,
                row.base_eps,
                r.events_per_sec,
                row.delta * 100.0,
                epochs_cell(r),
                rss_cell(r.peak_rss_mb, row.base_rss_mb),
                if row.failed { "**FAIL**" } else { "ok" }
            );
        }
        for r in &self.unmatched {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | — | {:.0} | — | {} | {} | new |",
                r.experiment,
                r.nodes,
                r.shards,
                r.queue,
                r.events_per_sec,
                epochs_cell(r),
                rss_cell(r.peak_rss_mb, None)
            );
        }
        for r in &self.skipped_cores {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | — | {:.0} | — | {} | {} | skip ({} cores ≠ baseline) |",
                r.experiment,
                r.nodes,
                r.shards,
                r.queue,
                r.events_per_sec,
                epochs_cell(r),
                rss_cell(r.peak_rss_mb, None),
                r.cores
            );
        }
        let _ = writeln!(
            out,
            "\nGate: fail if events/s drops more than {:.0}% at any matched point.",
            self.max_drop * 100.0
        );
        let mem_regressed: Vec<String> = self
            .rows
            .iter()
            .filter(|row| {
                matches!(
                    (row.fresh.peak_rss_mb, row.base_rss_mb),
                    (Some(f), Some(b)) if b > 0.0 && f / b - 1.0 > MEM_REPORT_GROWTH
                )
            })
            .map(|row| row.fresh.experiment.clone())
            .collect();
        if !mem_regressed.is_empty() {
            let _ = writeln!(
                out,
                "\n> Memory report (informational, not gated): peak RSS grew more \
                 than {:.0}% at {}.",
                MEM_REPORT_GROWTH * 100.0,
                mem_regressed.join(", ")
            );
        }
        let (base_host, fresh_host) = &self.hosts;
        if base_host != fresh_host {
            let _ = writeln!(
                out,
                "\n> Hosts differ — baseline `{base_host}`, fresh `{fresh_host}`; \
                 absolute numbers are not strictly comparable."
            );
        }
        out
    }
}

/// Compare `fresh` against `baseline`: every fresh point that exists
/// in the baseline (same experiment, nodes, shards, queue, sim_ms
/// *and cores*) must not lose more than `max_drop` of its
/// events/second. A fresh point whose baseline twin differs only in
/// core count lands in [`GateReport::skipped_cores`] — the caller
/// should surface a skip, never call it a pass or a regression.
pub fn compare(baseline: &BenchDoc, fresh: &BenchDoc, max_drop: f64) -> GateReport {
    let mut report = GateReport {
        rows: Vec::new(),
        unmatched: Vec::new(),
        skipped_cores: Vec::new(),
        hosts: (baseline.host.clone(), fresh.host.clone()),
        max_drop,
    };
    for f in &fresh.records {
        match baseline
            .records
            .iter()
            .find(|b| match_key(b) == match_key(f))
        {
            Some(b) => {
                let delta = f.events_per_sec / b.events_per_sec.max(1e-9) - 1.0;
                report.rows.push(GateRow {
                    fresh: f.clone(),
                    base_eps: b.events_per_sec,
                    delta,
                    failed: delta < -max_drop,
                    base_rss_mb: b.peak_rss_mb,
                });
            }
            None if baseline.records.iter().any(|b| cell_key(b) == cell_key(f)) => {
                report.skipped_cores.push(f.clone());
            }
            None => report.unmatched.push(f.clone()),
        }
    }
    report
}

// ---------------------------------------------------------------- //
// METRICS.json: parsing, validation, attribution table             //
// ---------------------------------------------------------------- //

/// One counter or gauge snapshot from a `METRICS.json` record.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricPoint {
    /// Registered metric name (`engine_events_total`, …).
    pub name: String,
    /// Owning subsystem (`engine` / `directory` / `gossip`).
    pub subsystem: String,
    /// Determinism scope (`sim` / `exec`).
    pub scope: String,
    /// Unit of the value.
    pub unit: String,
    /// The snapshot value.
    pub value: u64,
}

/// One histogram snapshot from a `METRICS.json` record.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricHistPoint {
    /// Registered metric name.
    pub name: String,
    /// Owning subsystem.
    pub subsystem: String,
    /// Determinism scope.
    pub scope: String,
    /// Unit of the recorded values.
    pub unit: String,
    /// Exact number of recorded values.
    pub count: u64,
    /// Exact (saturating) sum of recorded values.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
}

/// One run's worth of registry snapshots in a `METRICS.json`.
#[derive(Clone, Debug)]
pub struct MetricsRecordDoc {
    /// The experiment / sweep cell.
    pub experiment: String,
    /// Simulation-identity key: records sharing it must agree on
    /// every `sim`-scope cell (see [`validate_metrics`]).
    pub sim_key: String,
    /// Engine shards the run executed on.
    pub shards: usize,
    /// Counter snapshots.
    pub counters: Vec<MetricPoint>,
    /// Gauge snapshots.
    pub gauges: Vec<MetricPoint>,
    /// Histogram snapshots.
    pub hists: Vec<MetricHistPoint>,
}

impl MetricsRecordDoc {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Sum of the counters a predicate selects.
    fn counter_sum(&self, pred: impl Fn(&MetricPoint) -> bool) -> u64 {
        self.counters
            .iter()
            .filter(|c| pred(c))
            .map(|c| c.value)
            .sum()
    }
}

/// A parsed `METRICS.json`.
#[derive(Clone, Debug)]
pub struct MetricsDoc {
    /// Schema tag ([`metrics::METRICS_SCHEMA_NAME`]).
    pub schema: String,
    /// Free-form host description.
    pub host: String,
    /// One record per measured run.
    pub records: Vec<MetricsRecordDoc>,
}

fn metric_point(v: &Json, what: &str) -> Result<MetricPoint, String> {
    Ok(MetricPoint {
        name: v.str_field("name", what)?,
        subsystem: v.str_field("subsystem", what)?,
        scope: v.str_field("scope", what)?,
        unit: v.str_field("unit", what)?,
        value: v.u64_field("value", what)?,
    })
}

fn metric_hist_point(v: &Json, what: &str) -> Result<MetricHistPoint, String> {
    let mut buckets = Vec::new();
    for b in v.arr_field("buckets", what)? {
        match b {
            Json::Arr(pair) => match pair.as_slice() {
                [Json::Num(i), Json::Num(c)]
                    if *i >= 0.0 && i.fract() == 0.0 && *c >= 0.0 && c.fract() == 0.0 =>
                {
                    buckets.push((*i as usize, *c as u64));
                }
                _ => return Err(format!("{what}: bucket must be an [index, count] pair")),
            },
            _ => return Err(format!("{what}: bucket must be an [index, count] pair")),
        }
    }
    Ok(MetricHistPoint {
        name: v.str_field("name", what)?,
        subsystem: v.str_field("subsystem", what)?,
        scope: v.str_field("scope", what)?,
        unit: v.str_field("unit", what)?,
        count: v.u64_field("count", what)?,
        sum: v.u64_field("sum", what)?,
        buckets,
    })
}

/// Parse a `METRICS.json` document (schema v1 only — the format is
/// new; accept-old-schemas leniency starts with v2).
pub fn parse_metrics(json: &str) -> Result<MetricsDoc, String> {
    let mut p = Parser::new(json);
    let tree = p
        .json()
        .map_err(|e| e.replace("bench json", "metrics json"))?;
    let schema = tree.str_field("schema", "document")?;
    if schema != metrics::METRICS_SCHEMA_NAME {
        return Err(format!("unsupported metrics schema {schema:?}"));
    }
    let host = tree.str_field("host", "document")?;
    let mut records = Vec::new();
    for (i, r) in tree.arr_field("records", "document")?.iter().enumerate() {
        let what = format!("record {i}");
        let mut rec = MetricsRecordDoc {
            experiment: r.str_field("experiment", &what)?,
            sim_key: r.str_field("sim_key", &what)?,
            shards: r.u64_field("shards", &what)? as usize,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        };
        for c in r.arr_field("counters", &what)? {
            rec.counters.push(metric_point(c, &what)?);
        }
        for g in r.arr_field("gauges", &what)? {
            rec.gauges.push(metric_point(g, &what)?);
        }
        for h in r.arr_field("hists", &what)? {
            rec.hists.push(metric_hist_point(h, &what)?);
        }
        records.push(rec);
    }
    Ok(MetricsDoc {
        schema,
        host,
        records,
    })
}

/// The metrics-smoke validation: structural and cross-metric
/// invariants every healthy `METRICS.json` must satisfy.
///
/// 1. At least one record, each with a non-empty counter registry and
///    engine activity (`engine_events_total > 0`).
/// 2. Document-level subsystem coverage: some record reports non-zero
///    directory work and some record non-zero gossip/Bloom work.
/// 3. Counter cross-invariants (each checked only when both names are
///    present, so future registries stay parseable): timer events and
///    per-class deliveries never exceed total events; Algorithm 3
///    decisions never exceed Algorithm 3 invocations; every initiated
///    gossip exchange took a Bloom snapshot (CoW or rebuild).
/// 4. Histogram consistency: bucket indices valid and strictly
///    ascending, per-bucket counts summing to `count`, and `sum`
///    inside the value bounds the occupied buckets allow.
/// 5. Sim-scope determinism: records sharing a `sim_key` (same
///    simulation under different shard/queue/lookahead knobs) agree
///    exactly on every `sim`-scope counter, gauge and histogram.
pub fn validate_metrics(doc: &MetricsDoc) -> Result<(), String> {
    if doc.records.is_empty() {
        return Err("metrics: document has no records".into());
    }
    for r in &doc.records {
        let who = &r.experiment;
        if r.counters.is_empty() {
            return Err(format!("metrics {who}: empty counter registry"));
        }
        let events = r.counter("engine_events_total").unwrap_or(0);
        if events == 0 {
            return Err(format!("metrics {who}: engine_events_total is 0"));
        }
        if let Some(timers) = r.counter("engine_timer_events") {
            if timers > events {
                return Err(format!(
                    "metrics {who}: timer events {timers} exceed total events {events}"
                ));
            }
        }
        let recv = r.counter_sum(|c| c.name.starts_with("engine_recv_"));
        if recv > events {
            return Err(format!(
                "metrics {who}: class deliveries {recv} exceed total events {events}"
            ));
        }
        if let Some(process) = r.counter("dir_process_calls") {
            let decisions = r.counter_sum(|c| c.name.starts_with("dir_decision_"));
            if decisions > process {
                return Err(format!(
                    "metrics {who}: {decisions} Algorithm 3 decisions from only \
                     {process} invocations"
                ));
            }
        }
        // Per-class message ledger: deliveries, bounces and fault
        // drops of a traffic class can never exceed its sends (`≤`,
        // not `==`: messages still in flight at the horizon were sent
        // but never resolved). Checked only when the class's full
        // ledger is present so older registries stay parseable.
        for class in [
            "gossip",
            "push",
            "keepalive",
            "dht_routing",
            "dht_maintenance",
            "query_control",
            "transfer",
        ] {
            let (Some(sent), Some(recv), Some(dropped), Some(bounced)) = (
                r.counter(&format!("engine_sent_{class}")),
                r.counter(&format!("engine_recv_{class}")),
                r.counter(&format!("engine_drop_{class}")),
                r.counter(&format!("engine_bounce_{class}")),
            ) else {
                continue;
            };
            if recv + bounced + dropped > sent {
                return Err(format!(
                    "metrics {who}: {class} ledger broken — {recv} delivered + \
                     {bounced} bounced + {dropped} dropped from {sent} sends"
                ));
            }
        }
        // Every per-class bounce is one of the engine's bounced sends,
        // and vice versa: the split must sum back exactly.
        if r.counters
            .iter()
            .any(|c| c.name.starts_with("engine_bounce_"))
        {
            if let Some(total) = r.counter("engine_bounced_sends") {
                let split = r.counter_sum(|c| c.name.starts_with("engine_bounce_"));
                if split != total {
                    return Err(format!(
                        "metrics {who}: per-class bounces sum to {split} but \
                         engine_bounced_sends says {total}"
                    ));
                }
            }
        }
        if let (Some(exchanges), Some(cow), Some(rebuilt)) = (
            r.counter("gossip_exchanges"),
            r.counter("bloom_snapshot_cow_clones"),
            r.counter("bloom_snapshot_rebuilds"),
        ) {
            if cow + rebuilt < exchanges {
                return Err(format!(
                    "metrics {who}: {exchanges} gossip exchanges but only {} Bloom \
                     snapshots",
                    cow + rebuilt
                ));
            }
        }
        for h in &r.hists {
            let mut bucket_total: u64 = 0;
            let mut lo: u128 = 0;
            let mut hi: u128 = 0;
            let mut prev: Option<usize> = None;
            for &(idx, c) in &h.buckets {
                if idx >= metrics::BUCKETS {
                    return Err(format!(
                        "metrics {who}/{}: bucket index {idx} out of range",
                        h.name
                    ));
                }
                if prev.is_some_and(|p| idx <= p) {
                    return Err(format!(
                        "metrics {who}/{}: bucket indices not ascending",
                        h.name
                    ));
                }
                prev = Some(idx);
                let (b_lo, b_hi) = metrics::bucket_bounds(idx);
                bucket_total += c;
                lo += c as u128 * b_lo as u128;
                hi += c as u128 * b_hi as u128;
            }
            if bucket_total != h.count {
                return Err(format!(
                    "metrics {who}/{}: buckets hold {bucket_total} values but count \
                     says {}",
                    h.name, h.count
                ));
            }
            let sum = h.sum as u128;
            if sum < lo || sum > hi {
                return Err(format!(
                    "metrics {who}/{}: sum {} outside the [{lo}, {hi}] range its \
                     buckets allow",
                    h.name, h.sum
                ));
            }
        }
    }
    let dir_work: u64 = doc
        .records
        .iter()
        .map(|r| r.counter_sum(|c| c.subsystem == "directory"))
        .sum();
    if dir_work == 0 {
        return Err("metrics: no record reports directory work".into());
    }
    let gossip_work: u64 = doc
        .records
        .iter()
        .map(|r| r.counter_sum(|c| c.subsystem == "gossip"))
        .sum();
    if gossip_work == 0 {
        return Err("metrics: no record reports gossip/Bloom work".into());
    }
    // Sim-scope determinism across execution variants.
    for (i, a) in doc.records.iter().enumerate() {
        for b in doc.records.iter().skip(i + 1) {
            if a.sim_key != b.sim_key {
                continue;
            }
            let sim = |points: &[MetricPoint]| -> Vec<MetricPoint> {
                points
                    .iter()
                    .filter(|p| p.scope == "sim")
                    .cloned()
                    .collect()
            };
            let sim_h = |hists: &[MetricHistPoint]| -> Vec<MetricHistPoint> {
                hists.iter().filter(|h| h.scope == "sim").cloned().collect()
            };
            if sim(&a.counters) != sim(&b.counters)
                || sim(&a.gauges) != sim(&b.gauges)
                || sim_h(&a.hists) != sim_h(&b.hists)
            {
                return Err(format!(
                    "metrics: sim-scope cells differ between {:?} ({} shards) and \
                     {:?} ({} shards) despite shared sim key {:?}",
                    a.experiment, a.shards, b.experiment, b.shards, a.sim_key
                ));
            }
        }
    }
    Ok(())
}

/// Render the per-subsystem attribution table of the *headline*
/// record (the one with the most engine events — the biggest cell of
/// the sweep) as GitHub-flavoured markdown for the CI step summary.
pub fn metrics_markdown(doc: &MetricsDoc) -> String {
    let mut out = String::new();
    let Some(headline) = doc
        .records
        .iter()
        .max_by_key(|r| r.counter("engine_events_total").unwrap_or(0))
    else {
        let _ = writeln!(out, "### Metrics attribution\n\nNo records.");
        return out;
    };
    let _ = writeln!(
        out,
        "### Metrics attribution — `{}` ({} shard(s); {} record(s) in document)\n",
        headline.experiment,
        headline.shards,
        doc.records.len()
    );
    let _ = writeln!(out, "| subsystem | metric | value | unit |");
    let _ = writeln!(out, "|---|---|---|---|");
    for subsystem in ["engine", "directory", "gossip"] {
        for c in headline
            .counters
            .iter()
            .chain(headline.gauges.iter())
            .filter(|c| c.subsystem == subsystem && c.value > 0)
        {
            let _ = writeln!(
                out,
                "| {} | `{}` | {} | {} |",
                c.subsystem, c.name, c.value, c.unit
            );
        }
        for h in headline
            .hists
            .iter()
            .filter(|h| h.subsystem == subsystem && h.count > 0)
        {
            let _ = writeln!(
                out,
                "| {} | `{}` | n={}, mean={:.1} | {} |",
                h.subsystem,
                h.name,
                h.count,
                h.sum as f64 / h.count as f64,
                h.unit
            );
        }
    }
    let _ = writeln!(out, "\nZero-valued cells omitted; host `{}`.", doc.host);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::bench_json;

    fn record(nodes: usize, shards: usize, queue: EventQueueKind, eps: f64) -> BenchRecord {
        BenchRecord {
            experiment: format!("scale/{nodes}n"),
            nodes,
            shards,
            queue,
            wall_s: 1.0,
            events: (eps * 1.0) as u64,
            events_per_sec: eps,
            peak_queue_depth: 10,
            sim_ms: 30_000,
            dir_load_max_mean: 1.5,
            epochs: if shards > 1 { 400 } else { 0 },
            cores: 4,
            fused_rounds: if shards > 1 { 25 } else { 0 },
            barrier_idle_mean_s: if shards > 1 { 0.125 } else { 0.0 },
            barrier_idle_max_s: if shards > 1 { 0.25 } else { 0.0 },
            peak_rss_mb: Some(nodes as f64 / 100.0),
        }
    }

    #[test]
    fn roundtrips_through_the_emitter() {
        // One record without an RSS measurement: `null` must survive
        // the emit → parse cycle as `None`.
        let mut no_rss = record(20_000, 2, EventQueueKind::Heap, 400_000.5);
        no_rss.peak_rss_mb = None;
        let records = vec![
            record(20_000, 1, EventQueueKind::Calendar, 500_000.0),
            no_rss,
        ];
        let doc = parse_bench(&bench_json("4 cpus, x86_64, queue=calendar", &records)).unwrap();
        assert_eq!(doc.schema, BENCH_SCHEMA);
        assert_eq!(doc.host, "4 cpus, x86_64, queue=calendar");
        assert_eq!(doc.records, records);
    }

    #[test]
    fn parses_v2_documents_without_dir_load_column() {
        let v2 = r#"{
  "schema": "flower-cdn/bench-engine/v2",
  "host": "1 cpus, x86_64, queue=calendar",
  "records": [
    {"experiment": "scale/20000n", "nodes": 20000, "shards": 1, "queue": "calendar", "wall_s": 0.5, "events": 450935, "events_per_sec": 900000.0, "peak_queue_depth": 21206, "sim_ms": 60000}
  ]
}"#;
        let doc = parse_bench(v2).unwrap();
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].dir_load_max_mean, 0.0, "v2 = no column");
        assert_eq!(doc.records[0].queue, EventQueueKind::Calendar);
    }

    #[test]
    fn parses_v3_documents_without_epochs_column() {
        let v3 = r#"{
  "schema": "flower-cdn/bench-engine/v3",
  "host": "1 cpus, x86_64, queue=calendar",
  "records": [
    {"experiment": "scale/20000n", "nodes": 20000, "shards": 2, "queue": "calendar", "wall_s": 0.5, "events": 450935, "events_per_sec": 900000.0, "peak_queue_depth": 21206, "sim_ms": 60000, "dir_load_max_mean": 1.5}
  ]
}"#;
        let doc = parse_bench(v3).unwrap();
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].epochs, 0, "v3 = no epochs column");
        assert_eq!(doc.records[0].dir_load_max_mean, 1.5);
    }

    #[test]
    fn parses_v4_documents_backfilling_cores_from_the_host() {
        let v4 = r#"{
  "schema": "flower-cdn/bench-engine/v4",
  "host": "2 cpus, x86_64, queue=calendar",
  "records": [
    {"experiment": "scale/20000n", "nodes": 20000, "shards": 2, "queue": "calendar", "wall_s": 0.5, "events": 450935, "events_per_sec": 900000.0, "peak_queue_depth": 21206, "sim_ms": 60000, "dir_load_max_mean": 1.5, "epochs": 512}
  ]
}"#;
        let doc = parse_bench(v4).unwrap();
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].epochs, 512);
        assert_eq!(doc.records[0].cores, 2, "cores come from the host string");
        assert_eq!(doc.records[0].fused_rounds, 0, "v4 = no fused column");
        assert_eq!(doc.records[0].barrier_idle_mean_s, 0.0);
        assert_eq!(doc.records[0].barrier_idle_max_s, 0.0);
    }

    #[test]
    fn parses_v5_documents_backfilling_null_rss() {
        let v5 = r#"{
  "schema": "flower-cdn/bench-engine/v5",
  "host": "4 cpus, x86_64, queue=calendar",
  "records": [
    {"experiment": "scale/20000n", "nodes": 20000, "shards": 2, "queue": "calendar", "wall_s": 0.5, "events": 450935, "events_per_sec": 900000.0, "peak_queue_depth": 21206, "sim_ms": 60000, "dir_load_max_mean": 1.5, "epochs": 512, "cores": 4, "fused_rounds": 17, "barrier_idle_mean_s": 0.125, "barrier_idle_max_s": 0.25}
  ]
}"#;
        let doc = parse_bench(v5).unwrap();
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].fused_rounds, 17);
        assert_eq!(doc.records[0].peak_rss_mb, None, "v5 = no RSS column");
    }

    #[test]
    fn parses_v1_documents_without_queue_field() {
        let v1 = r#"{
  "schema": "flower-cdn/bench-engine/v1",
  "host": "1 cpus, x86_64",
  "records": [
    {"experiment": "scale/10000n", "nodes": 10000, "shards": 1, "wall_s": 1.067, "events": 512338, "events_per_sec": 480300.0, "peak_queue_depth": 18347, "sim_ms": 90000}
  ]
}"#;
        let doc = parse_bench(v1).unwrap();
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].queue, EventQueueKind::Heap, "v1 = heap era");
        assert_eq!(doc.records[0].events, 512_338);
        assert_eq!(doc.records[0].events_per_sec, 480_300.0);
        assert_eq!(doc.records[0].cores, 1, "backfilled from the host string");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_bench("").is_err());
        assert!(parse_bench("{}").unwrap_err().contains("expected"));
        assert!(
            parse_bench(r#"{"schema": "nope", "host": "h", "records": []}"#)
                .unwrap_err()
                .contains("unsupported schema")
        );
        assert!(parse_bench(
            r#"{"schema": "flower-cdn/bench-engine/v2", "records": [{"nodes": 5}]}"#
        )
        .unwrap_err()
        .contains("missing"),);
        assert!(parse_bench(
            r#"{"schema": "flower-cdn/bench-engine/v2", "records": [{"experiment": 7}]}"#
        )
        .unwrap_err()
        .contains("wrong type"));
        // `null` is only legal for the nullable column.
        assert!(parse_bench(
            r#"{"schema": "flower-cdn/bench-engine/v6", "records": [{"experiment": "x", "nodes": null}]}"#
        )
        .unwrap_err()
        .contains("wrong type"));
    }

    #[test]
    fn memory_regressions_are_reported_not_gated() {
        let mut base = record(20_000, 1, EventQueueKind::Calendar, 1e5);
        base.peak_rss_mb = Some(100.0);
        let mut fresh_r = record(20_000, 1, EventQueueKind::Calendar, 1e5);
        fresh_r.peak_rss_mb = Some(150.0);
        let report = compare(&doc("h", vec![base]), &doc("h", vec![fresh_r]), 0.20);
        assert!(report.passed(), "RSS growth must never fail the gate");
        let md = report.to_markdown();
        assert!(md.contains("150 MB (+50.0%)"), "{md}");
        assert!(md.contains("Memory report (informational"), "{md}");
        // No note when memory is flat.
        let flat = compare(
            &doc("h", vec![record(20_000, 1, EventQueueKind::Calendar, 1e5)]),
            &doc("h", vec![record(20_000, 1, EventQueueKind::Calendar, 1e5)]),
            0.20,
        );
        assert!(!flat.to_markdown().contains("Memory report"));
    }

    fn doc(host: &str, records: Vec<BenchRecord>) -> BenchDoc {
        BenchDoc {
            schema: BENCH_SCHEMA.into(),
            host: host.into(),
            records,
        }
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = doc(
            "h",
            vec![
                record(20_000, 1, EventQueueKind::Calendar, 100_000.0),
                record(20_000, 2, EventQueueKind::Calendar, 100_000.0),
            ],
        );
        let fresh = doc(
            "h",
            vec![
                record(20_000, 1, EventQueueKind::Calendar, 85_000.0), // −15%: ok
                record(20_000, 2, EventQueueKind::Calendar, 75_000.0), // −25%: fail
            ],
        );
        let report = compare(&baseline, &fresh, 0.20);
        assert!(!report.passed());
        assert!(!report.rows[0].failed);
        assert!(report.rows[1].failed);
        let md = report.to_markdown();
        assert!(md.contains("FAIL"), "{md}");
        assert!(md.contains("-25.0%"), "{md}");
    }

    #[test]
    fn gate_treats_unmatched_points_as_new() {
        let baseline = doc("a", vec![record(20_000, 1, EventQueueKind::Calendar, 1e5)]);
        let fresh = doc(
            "b",
            vec![
                record(20_000, 1, EventQueueKind::Calendar, 1e5),
                // Different queue backend: no baseline counterpart.
                record(20_000, 1, EventQueueKind::Heap, 1e3),
            ],
        );
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.passed(), "new cells must not fail the gate");
        assert_eq!(report.unmatched.len(), 1);
        let md = report.to_markdown();
        assert!(md.contains("new"), "{md}");
        assert!(md.contains("Hosts differ"), "{md}");
    }

    #[test]
    fn improvements_never_fail() {
        let baseline = doc("h", vec![record(10_000, 1, EventQueueKind::Heap, 1e5)]);
        let fresh = doc("h", vec![record(10_000, 1, EventQueueKind::Heap, 9e5)]);
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.passed());
        assert!(report.rows[0].delta > 7.0);
    }

    #[test]
    fn core_count_mismatch_is_a_skip_not_a_pass_or_fail() {
        // Baseline measured on 4 cores (the record() default); the
        // fresh run lands on 8 — same cell otherwise, and even a huge
        // apparent drop must not fail (or silently pass) the gate.
        let baseline = doc(
            "4 cpus, x86_64",
            vec![record(20_000, 2, EventQueueKind::Calendar, 1e6)],
        );
        let mut slow = record(20_000, 2, EventQueueKind::Calendar, 1e4);
        slow.cores = 8;
        let fresh = doc("8 cpus, x86_64", vec![slow]);
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.rows.is_empty());
        assert!(report.unmatched.is_empty(), "not a new cell");
        assert_eq!(report.skipped_cores.len(), 1);
        assert!(report.core_skip());
        assert!(report.passed(), "no matched point can have failed");
        let md = report.to_markdown();
        assert!(md.contains("SKIP"), "{md}");
        assert!(md.contains("8 cores"), "{md}");
    }

    fn metrics_set(scale: u64) -> metrics::MetricSet {
        use metrics::{Counter, Gauge, Hist, MetricSet};
        let mut s = MetricSet::new();
        s.add(Counter::EngineEvents, 1000 * scale);
        s.add(Counter::EngineTimers, 100 * scale);
        // A consistent gossip ledger: every delivery was sent first.
        s.add(Counter::SentGossip, 10 * scale);
        s.add(Counter::RecvGossip, 10 * scale);
        s.add(Counter::DirProcess, 50 * scale);
        s.add(Counter::DirToHolder, 40 * scale);
        s.add(Counter::GossipExchanges, 10 * scale);
        s.add(Counter::BloomCowClones, 8 * scale);
        s.add(Counter::BloomRebuilds, 2 * scale);
        // Exec-scope cells legitimately differ between variants.
        s.add(Counter::EngineEpochs, 7 * scale);
        s.gauge_max(Gauge::PeakQueueDepth, 1234 * scale);
        for i in 0..scale {
            s.record(Hist::GossipPayloadBytes, 100 + i);
        }
        s
    }

    fn metrics_doc_json(records: Vec<crate::report::MetricsRecord>) -> String {
        crate::report::metrics_json("test-host", &records)
    }

    fn metrics_record(
        experiment: &str,
        sim_key: &str,
        shards: usize,
        set: metrics::MetricSet,
    ) -> crate::report::MetricsRecord {
        crate::report::MetricsRecord {
            experiment: experiment.into(),
            sim_key: sim_key.into(),
            shards,
            set,
        }
    }

    #[test]
    fn metrics_roundtrip_validates_and_renders() {
        // Two execution variants of one simulation (same sim cells,
        // different exec cells) plus an unrelated bigger cell.
        let json = metrics_doc_json(vec![
            metrics_record("scale/10000n", "scale/10000n", 1, metrics_set(1)),
            metrics_record("scale/10000n", "scale/10000n", 4, {
                let mut s = metrics_set(1);
                s.add(metrics::Counter::EngineEpochs, 500);
                s.gauge_max(metrics::Gauge::PeakQueueDepth, 999_999);
                s
            }),
            metrics_record("scale/50000n", "scale/50000n", 2, metrics_set(5)),
        ]);
        let doc = parse_metrics(&json).unwrap();
        assert_eq!(doc.schema, metrics::METRICS_SCHEMA_NAME);
        assert_eq!(doc.records.len(), 3);
        assert_eq!(doc.records[0].counter("engine_events_total"), Some(1000));
        validate_metrics(&doc).unwrap();
        let md = metrics_markdown(&doc);
        // The headline is the biggest cell.
        assert!(md.contains("`scale/50000n` (2 shard(s)"), "{md}");
        assert!(md.contains("| engine | `engine_events_total` | 5000 | events |"));
        assert!(md.contains("| directory | `dir_process_calls` | 250 | queries |"));
        assert!(md.contains("| gossip | `gossip_payload_bytes` | n=5, mean=102.0 | bytes |"));
        // Zero-valued cells are omitted.
        assert!(!md.contains("dir_petal_splits"), "{md}");
    }

    #[test]
    fn metrics_rejects_malformed_documents() {
        assert!(parse_metrics("").is_err());
        assert!(parse_metrics(
            r#"{"schema": "flower-cdn/metrics/v999", "host": "h", "records": []}"#
        )
        .unwrap_err()
        .contains("unsupported metrics schema"));
        // Missing required fields inside a record.
        let bad = format!(
            r#"{{"schema": "{}", "host": "h", "records": [{{"experiment": "x"}}]}}"#,
            metrics::METRICS_SCHEMA_NAME
        );
        assert!(parse_metrics(&bad).unwrap_err().contains("sim_key"));
        // Counter values must be non-negative integers.
        let neg = format!(
            r#"{{"schema": "{}", "host": "h", "records": [
                {{"experiment": "x", "sim_key": "x", "shards": 1,
                  "counters": [{{"name": "n", "subsystem": "engine", "scope": "sim", "unit": "u", "value": -3}}],
                  "gauges": [], "hists": []}}]}}"#,
            metrics::METRICS_SCHEMA_NAME
        );
        assert!(parse_metrics(&neg)
            .unwrap_err()
            .contains("non-negative integer"));
    }

    #[test]
    fn metrics_validation_catches_inconsistencies() {
        // An empty document decides nothing.
        let empty = parse_metrics(&metrics_doc_json(vec![])).unwrap();
        assert!(validate_metrics(&empty).unwrap_err().contains("no records"));
        // A run with no engine activity.
        let doc = parse_metrics(&metrics_doc_json(vec![metrics_record(
            "x",
            "x",
            1,
            metrics::MetricSet::new(),
        )]))
        .unwrap();
        assert!(validate_metrics(&doc)
            .unwrap_err()
            .contains("engine_events_total is 0"));
        // Histogram count vs bucket mismatch.
        let mut doc = parse_metrics(&metrics_doc_json(vec![metrics_record(
            "x",
            "x",
            1,
            metrics_set(1),
        )]))
        .unwrap();
        let h = doc.records[0]
            .hists
            .iter_mut()
            .find(|h| h.name == "gossip_payload_bytes")
            .unwrap();
        h.count += 1;
        assert!(validate_metrics(&doc).unwrap_err().contains("count says"));
        // Histogram sum outside the bucket bounds.
        let mut doc2 = parse_metrics(&metrics_doc_json(vec![metrics_record(
            "x",
            "x",
            1,
            metrics_set(1),
        )]))
        .unwrap();
        let h2 = doc2.records[0]
            .hists
            .iter_mut()
            .find(|h| h.name == "gossip_payload_bytes")
            .unwrap();
        h2.sum = 1;
        assert!(validate_metrics(&doc2).unwrap_err().contains("outside the"));
        // Sim-scope divergence under a shared sim key.
        let mut diverged = metrics_set(1);
        diverged.incr(metrics::Counter::DirProcess);
        let doc3 = parse_metrics(&metrics_doc_json(vec![
            metrics_record("x", "x", 1, metrics_set(1)),
            metrics_record("x", "x", 2, diverged),
        ]))
        .unwrap();
        assert!(validate_metrics(&doc3)
            .unwrap_err()
            .contains("sim-scope cells differ"));
        // The same divergence under *different* sim keys is fine —
        // different simulations are allowed to differ.
        let mut diverged2 = metrics_set(1);
        diverged2.incr(metrics::Counter::DirProcess);
        let doc4 = parse_metrics(&metrics_doc_json(vec![
            metrics_record("x", "x", 1, metrics_set(1)),
            metrics_record("y", "y", 2, diverged2),
        ]))
        .unwrap();
        validate_metrics(&doc4).unwrap();
    }

    #[test]
    fn metrics_validation_enforces_the_message_ledger() {
        use metrics::Counter;
        // A consistent ledger passes: 20 sent, 10 delivered (from the
        // fixture), 3 bounced, 2 dropped, 5 still in flight.
        let mut ok = metrics_set(1);
        ok.add(Counter::SentGossip, 10);
        ok.add(Counter::BounceGossip, 3);
        ok.add(Counter::DropGossip, 2);
        ok.add(Counter::EngineBounces, 3);
        let doc = parse_metrics(&metrics_doc_json(vec![metrics_record("x", "x", 1, ok)])).unwrap();
        validate_metrics(&doc).unwrap();
        // More deliveries + bounces + drops than sends fails…
        let mut broken = metrics_set(1);
        broken.add(Counter::BounceGossip, 3);
        broken.add(Counter::DropGossip, 2);
        broken.add(Counter::EngineBounces, 3);
        let doc2 =
            parse_metrics(&metrics_doc_json(vec![metrics_record("x", "x", 1, broken)])).unwrap();
        assert!(validate_metrics(&doc2)
            .unwrap_err()
            .contains("ledger broken"));
        // …and the per-class bounce split must sum back exactly to
        // the engine's bounced-sends total.
        let mut skewed = metrics_set(1);
        skewed.add(Counter::SentGossip, 10);
        skewed.add(Counter::BounceGossip, 3);
        skewed.add(Counter::EngineBounces, 5);
        let doc3 =
            parse_metrics(&metrics_doc_json(vec![metrics_record("x", "x", 1, skewed)])).unwrap();
        assert!(validate_metrics(&doc3)
            .unwrap_err()
            .contains("bounces sum to"));
    }

    #[test]
    fn chaos_cells_absent_from_the_baseline_are_an_explicit_skip() {
        let baseline = doc("h", vec![record(20_000, 2, EventQueueKind::Calendar, 1e6)]);
        let mut chaos_cell = record(2_000, 1, EventQueueKind::Calendar, 5e5);
        chaos_cell.experiment = "chaos/partition".into();
        let fresh = doc("h", vec![chaos_cell.clone()]);
        let report = compare(&baseline, &fresh, 0.2);
        assert!(report.chaos_skip(), "all-unmatched chaos cells skip");
        assert!(!report.core_skip());
        // A fresh doc mixing chaos cells with a comparable scale cell
        // is a real comparison, not a skip.
        let mixed = doc(
            "h",
            vec![
                chaos_cell,
                record(20_000, 2, EventQueueKind::Calendar, 1.1e6),
            ],
        );
        let report2 = compare(&baseline, &mixed, 0.2);
        assert!(!report2.chaos_skip());
        assert_eq!(report2.rows.len(), 1);
    }

    #[test]
    fn mixed_core_counts_compare_the_matching_cells_only() {
        // A baseline holding both a 4-core and an 8-core measurement
        // of the same cell: the fresh 8-core point compares against
        // the 8-core twin only.
        let mut base8 = record(20_000, 2, EventQueueKind::Calendar, 2e6);
        base8.cores = 8;
        let baseline = doc(
            "mixed",
            vec![record(20_000, 2, EventQueueKind::Calendar, 1e6), base8],
        );
        let mut fresh8 = record(20_000, 2, EventQueueKind::Calendar, 1.9e6);
        fresh8.cores = 8;
        let report = compare(&baseline, &doc("8 cpus", vec![fresh8]), 0.20);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].base_eps, 2e6, "matched the 8-core twin");
        assert!(!report.core_skip());
        assert!(report.passed());
    }
}
