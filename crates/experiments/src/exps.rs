//! One function per table/figure of the paper's evaluation.
//!
//! Every experiment returns an [`ExpOutput`]: rendered text (the
//! table/series the paper reports, paper values side by side), CSV
//! artefacts, and a list of qualitative checks — the *shape*
//! assertions a reproduction must satisfy (who wins, rough factors,
//! trends). Absolute constants are not asserted: the substrate is a
//! simulator, not the authors' testbed.

use flower_core::{FlowerSystem, SubstrateKind, SystemConfig, SystemReport};
use metrics::Counter;
use simnet::{
    ChurnConfig, ChurnScript, EventQueueKind, FaultPlane, LinkLoss, Locality, LookaheadKind,
    NodeId, Partition, RegionalFailure, SeriesPoint, SimDuration, SimTime,
};
use squirrel::SquirrelSystem;
use workload::Surge;

use crate::paper;
use crate::report::{f1, f3, pct, BenchRecord, MetricsRecord, Table};
use crate::runner::{self, RunOpts, RunScale};

/// Rendered output of one experiment.
#[derive(Debug, Default)]
pub struct ExpOutput {
    /// Human-readable report.
    pub text: String,
    /// `(file-stem, csv-content)` artefacts.
    pub csv: Vec<(String, String)>,
    /// Qualitative shape checks `(description, passed)`.
    pub checks: Vec<(String, bool)>,
    /// Engine-performance measurements for `BENCH_engine.json`.
    pub bench: Vec<BenchRecord>,
    /// Registry snapshots for `METRICS.json` (per-subsystem hot-path
    /// attribution; written by `--metrics-out`).
    pub metrics: Vec<MetricsRecord>,
}

impl ExpOutput {
    fn push_check(&mut self, what: impl Into<String>, ok: bool) {
        self.checks.push((what.into(), ok));
    }

    /// True if every qualitative check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }

    /// Append the check list to the text body.
    pub fn render_checks(&self) -> String {
        let mut s = String::from("shape checks:\n");
        for (what, ok) in &self.checks {
            s.push_str(&format!(
                "  [{}] {}\n",
                if *ok { "PASS" } else { "FAIL" },
                what
            ));
        }
        s
    }
}

fn gossip_sweep(
    title: &str,
    opts: RunOpts,
    paper_rows: &[paper::Table2Row],
    mutate: impl Fn(&mut SystemConfig, usize),
) -> (ExpOutput, Vec<f64>, Vec<f64>) {
    let mut out = ExpOutput::default();
    let mut table = Table::new(
        title,
        &[
            "param",
            "hit ratio (paper)",
            "hit ratio (ours)",
            "bw bps (paper)",
            "bw bps (ours)",
        ],
    );
    let mut hits = Vec::new();
    let mut bws = Vec::new();
    for (i, row) in paper_rows.iter().enumerate() {
        let mut cfg = runner::flower_config(opts);
        mutate(&mut cfg, i);
        let (_, r) = runner::run_flower(&cfg);
        // Scaled runs compress 24 h of gossip into less simulated
        // time; multiplying by the scale factor restores paper-time
        // bps for comparison.
        let bps = r.background_bps * opts.scale.factor();
        table.row(vec![
            row.param.to_string(),
            f3(row.hit_ratio),
            f3(r.hit_ratio),
            f1(row.background_bps),
            f1(bps),
        ]);
        hits.push(r.hit_ratio);
        bws.push(bps);
    }
    out.text = table.render();
    out.csv.push(("table".into(), table.to_csv()));
    (out, hits, bws)
}

/// **Table 2(a)** — varying `Lgossip` ∈ {5, 10, 20}.
pub fn table2a(opts: RunOpts) -> ExpOutput {
    let l_values = [5usize, 10, 20];
    let (mut out, hits, bws) = gossip_sweep(
        "Table 2(a) — effect of gossip length Lgossip (Tgossip=30min, Vgossip=50)",
        opts,
        &paper::TABLE_2A,
        |cfg, i| cfg.flower.l_gossip = l_values[i],
    );
    // Paper: bandwidth is linear in Lgossip (×4 from 5 to 20); hit
    // ratio rises only mildly.
    let ratio = bws[2] / bws[0].max(1e-9);
    out.push_check(
        format!("bw(L=20)/bw(L=5) ≈ 4 (got {ratio:.2})"),
        (2.5..6.0).contains(&ratio),
    );
    out.push_check(
        format!("hit ratio non-decreasing in Lgossip (got {hits:?})"),
        hits[0] <= hits[1] + 0.02 && hits[1] <= hits[2] + 0.02,
    );
    out.text.push_str(&out.render_checks());
    out
}

/// **Table 2(b)** — varying `Tgossip` ∈ {1 min, 30 min, 1 h}.
pub fn table2b(opts: RunOpts) -> ExpOutput {
    let periods = [
        SimDuration::from_mins(1),
        SimDuration::from_mins(30),
        SimDuration::from_hours(1),
    ];
    let (mut out, hits, bws) = gossip_sweep(
        "Table 2(b) — effect of gossip period Tgossip (Lgossip=10, Vgossip=50)",
        opts,
        &paper::TABLE_2B,
        |cfg, i| {
            // The sweep overrides the (already scaled) gossip period
            // with the scaled sweep value.
            let scaled = match opts.scale {
                RunScale::Full => periods[i],
                RunScale::Scaled(f) => {
                    SimDuration::from_ms(((periods[i].as_ms() as f64 * f) as u64).max(1))
                }
            };
            cfg.flower.t_gossip = scaled;
        },
    );
    // Paper: bandwidth ∝ 1/Tgossip (60× from 1 h to 1 min); hit ratio
    // degrades as gossip slows.
    let ratio = bws[0] / bws[2].max(1e-9);
    // The frequency ratio alone is exactly 60×; measured bytes can
    // overshoot because faster gossip also fills views with summaries
    // sooner (bigger messages), a second-order effect the paper's
    // fixed-size model does not capture.
    out.push_check(
        format!("bw(T=1min)/bw(T=1h) ≫ 1, order of the paper's ×60 (got ×{ratio:.1})"),
        (20.0..260.0).contains(&ratio),
    );
    out.push_check(
        format!("hit ratio non-increasing in Tgossip (got {hits:?})"),
        hits[0] + 0.02 >= hits[1] && hits[1] + 0.02 >= hits[2],
    );
    out.text.push_str(&out.render_checks());
    out
}

/// **Table 2(c)** — varying `Vgossip` ∈ {20, 50, 70}.
pub fn table2c(opts: RunOpts) -> ExpOutput {
    let v_values = [20usize, 50, 70];
    let (mut out, hits, bws) = gossip_sweep(
        "Table 2(c) — effect of view size Vgossip (Lgossip=10, Tgossip=30min)",
        opts,
        &paper::TABLE_2C,
        |cfg, i| cfg.flower.v_gossip = v_values[i],
    );
    // Paper: bandwidth flat in Vgossip; hit ratio slightly better with
    // larger views.
    let spread = (bws[2] - bws[0]).abs() / bws[1].max(1e-9);
    // Nearly flat: view size does not change the *amount* of data per
    // exchange (paper), though smaller views refresh their entries
    // more often and thus carry slightly more summaries per message.
    out.push_check(
        format!("bw roughly flat across Vgossip (relative spread {spread:.2})"),
        spread < 0.45,
    );
    out.push_check(
        format!("hit ratio(V=70) ≥ hit ratio(V=20) − ε (got {hits:?})"),
        hits[2] + 0.02 >= hits[0],
    );
    out.text.push_str(&out.render_checks());
    out
}

/// **§6.2 (text)** — push threshold ∈ {0.1, 0.5, 0.7}: performance is
/// insensitive.
pub fn push_threshold(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let mut table = Table::new(
        "Push-threshold sweep (paper §6.2: all values perform alike)",
        &["threshold", "hit ratio", "bw bps"],
    );
    let mut hits = Vec::new();
    for th in paper::PUSH_THRESHOLDS {
        let mut cfg = runner::flower_config(opts);
        cfg.flower.push_threshold = th;
        let (_, r) = runner::run_flower(&cfg);
        table.row(vec![
            format!("{th}"),
            f3(r.hit_ratio),
            f1(r.background_bps * opts.scale.factor()),
        ]);
        hits.push(r.hit_ratio);
    }
    let spread = hits.iter().cloned().fold(f64::MIN, f64::max)
        - hits.iter().cloned().fold(f64::MAX, f64::min);
    out.push_check(
        format!("hit ratio insensitive to push threshold (spread {spread:.3})"),
        spread < 0.05,
    );
    out.text = table.render();
    out.text.push_str(&out.render_checks());
    out.csv.push(("push_threshold".into(), table.to_csv()));
    out
}

/// Render a per-window series table with hours in the first column.
fn series_table(
    title: &str,
    cols: &[&str],
    rows: impl Iterator<Item = (f64, Vec<String>)>,
) -> Table {
    let mut headers = vec!["hour"];
    headers.extend_from_slice(cols);
    let mut t = Table::new(title, &headers);
    for (h, cells) in rows {
        let mut row = vec![format!("{h:.2}")];
        row.extend(cells);
        t.row(row);
    }
    t
}

/// **Figure 5** — hit ratio and background traffic vs time.
pub fn fig5(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let cfg = runner::flower_config(opts);
    let (sys, report, record) = runner::run_flower_timed(&cfg, "fig5");
    out.bench.push(record);
    let window = cfg.window;
    let win_secs = window.as_ms() as f64 / 1000.0;
    let dirs = cfg.catalog.num_websites * cfg.topology.localities;

    let hit = sys.engine().query_stats().hit_series().points();
    let bg = sys.engine().traffic().background_series().points();
    // Participants over time: directories + cumulative joins.
    let joins = sys
        .engine()
        .gauges()
        .get("joins")
        .map(|s| s.points())
        .unwrap_or_default();
    let mut cum_joins = 0.0;
    let mut participants_at: Vec<f64> = Vec::new();
    for i in 0..hit.len().max(bg.len()) {
        cum_joins += joins.get(i).map(|p| p.sum).unwrap_or(0.0);
        participants_at.push(dirs as f64 + cum_joins);
    }

    let rows = (0..hit.len().max(bg.len())).map(|i| {
        let h = (i as f64 * win_secs) / 3600.0;
        let hr = hit.get(i).map(|p| p.mean()).unwrap_or(0.0);
        let bytes = bg.get(i).map(|p| p.sum).unwrap_or(0.0);
        let parts = participants_at.get(i).copied().unwrap_or(1.0).max(1.0);
        let bps = bytes * 8.0 / win_secs / parts * opts.scale.factor();
        (h, vec![f3(hr), f1(bps)])
    });
    let t = series_table(
        "Figure 5 — hit ratio and background traffic per peer vs time",
        &["hit ratio", "bg bps/peer"],
        rows,
    );
    out.text = t.render();
    let norm_bps = report.background_bps * opts.scale.factor();
    out.text.push_str(&format!(
        "paper: traffic stabilizes ≈{} bps; final measured: hit {:.3}, bw {:.1} bps (paper-time)\n",
        paper::FIG5_STABLE_BPS,
        report.hit_ratio,
        norm_bps
    ));

    // Shape: hit ratio rises; late-run traffic per peer is flat-ish.
    let nonzero: Vec<f64> = hit
        .iter()
        .filter(|p| p.count > 0)
        .map(|p| p.mean())
        .collect();
    let early = nonzero.iter().take(3).sum::<f64>() / 3.0_f64.min(nonzero.len() as f64);
    let late = nonzero.iter().rev().take(3).sum::<f64>() / 3.0_f64.min(nonzero.len() as f64);
    out.push_check(
        format!("hit ratio rises over time ({early:.3} → {late:.3})"),
        late > early,
    );
    out.push_check(
        format!("background traffic positive and bounded (final {norm_bps:.1} bps paper-time)"),
        norm_bps > 0.1 && norm_bps < 10_000.0,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("fig5".into(), t.to_csv()));
    out
}

/// Run the shared Flower/Squirrel pair for Figures 6–8.
pub fn comparison_pair(opts: RunOpts) -> (FlowerSystem, SquirrelSystem) {
    let fcfg = runner::flower_config(opts);
    let scfg = runner::squirrel_config(opts);
    let (fsys, _) = runner::run_flower(&fcfg);
    let (ssys, _) = runner::run_squirrel(&scfg);
    (fsys, ssys)
}

/// **Figure 6** — hit ratio over time, Flower-CDN vs Squirrel.
pub fn fig6(fsys: &FlowerSystem, ssys: &SquirrelSystem) -> ExpOutput {
    let mut out = ExpOutput::default();
    let f = fsys.engine().query_stats();
    let s = ssys.engine().query_stats();
    let fh = f.hit_series().points();
    let sh = s.hit_series().points();
    let win_h = f.hit_series().window().as_ms() as f64 / 3_600_000.0;
    let rows = (0..fh.len().max(sh.len())).map(|i| {
        (
            i as f64 * win_h,
            vec![
                fh.get(i).map(|p| f3(p.mean())).unwrap_or_default(),
                sh.get(i).map(|p| f3(p.mean())).unwrap_or_default(),
            ],
        )
    });
    let t = series_table(
        "Figure 6 — hit ratio vs time, Flower-CDN and Squirrel",
        &["flower", "squirrel"],
        rows,
    );
    out.text = t.render();
    let gap = s.hit_ratio() - f.hit_ratio();
    out.text.push_str(&format!(
        "final hit ratio: flower {:.3}, squirrel {:.3} (gap {:.3}; paper gap ≈ {:.2})\n",
        f.hit_ratio(),
        s.hit_ratio(),
        gap,
        paper::FIG6_HIT_GAP,
    ));
    // Paper: Squirrel converges a bit higher/faster; both high.
    out.push_check(
        format!("squirrel hit ≥ flower hit − ε (gap {gap:.3})"),
        gap > -0.03,
    );
    // The paper's ≈0.13 gap is a 24-hour number; short scaled runs are
    // warm-up dominated (Flower's gossip-built overlays converge more
    // slowly than Squirrel's directly-populated home directories), so
    // they get a looser bound — the same duration split fig7 uses for
    // its absolute thresholds.
    let gap_bound = if fsys.duration() >= simnet::SimTime::from_hours(20) {
        0.30
    } else {
        0.45
    };
    out.push_check(
        format!("gap bounded (paper ≈ 0.13; got {gap:.3}, bound {gap_bound})"),
        gap < gap_bound,
    );
    out.push_check(
        format!("flower hit ratio high at horizon ({:.3})", f.hit_ratio()),
        f.hit_ratio() > 0.5,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("fig6".into(), t.to_csv()));
    out
}

/// **Figure 7** — lookup latency: variation over time (a) and
/// distribution (b), Flower-CDN vs Squirrel.
pub fn fig7(fsys: &FlowerSystem, ssys: &SquirrelSystem) -> ExpOutput {
    let mut out = ExpOutput::default();
    let f = fsys.engine().query_stats();
    let s = ssys.engine().query_stats();

    // (a) variation with time.
    let fl = f.lookup_series().points();
    let win_h = f.lookup_series().window().as_ms() as f64 / 3_600_000.0;
    let ta = series_table(
        "Figure 7(a) — Flower-CDN average lookup latency vs time (ms)",
        &["lookup ms"],
        fl.iter()
            .enumerate()
            .map(|(i, p)| (i as f64 * win_h, vec![f1(p.mean())])),
    );

    // (b) distribution in 150 ms buckets.
    let mut tb = Table::new(
        "Figure 7(b) — lookup latency distribution",
        &["bucket (ms)", "flower", "squirrel"],
    );
    let fd = f.lookup_hist().distribution();
    let sd = s.lookup_hist().distribution();
    for (i, (start, ff)) in fd.iter().enumerate() {
        let label = if i + 1 == fd.len() {
            format!(">{start}")
        } else {
            format!("{}-{}", start, start + 150)
        };
        tb.row(vec![label, pct(*ff), pct(sd[i].1)]);
    }

    out.text = format!("{}\n{}", ta.render(), tb.render());
    let f_le = f.lookup_hist().fraction_le(150);
    let s_gt = s.lookup_hist().fraction_gt(1050);
    let speedup = s.mean_lookup_ms() / f.mean_lookup_ms().max(1e-9);
    out.text.push_str(&format!(
        "flower ≤150ms: {} (paper {}), squirrel >1050ms: {} (paper {}), mean speedup ×{:.1} (paper ≈×{})\n",
        pct(f_le),
        pct(paper::FIG7_FLOWER_LE_150MS),
        pct(s_gt),
        pct(paper::FIG7_SQUIRREL_GT_1050MS),
        speedup,
        paper::LOOKUP_SPEEDUP,
    ));
    // The 87%-style absolute only holds once hits dominate (the
    // full 24 h horizon); scaled runs check the relative ordering.
    if fsys.duration() >= simnet::SimTime::from_hours(20) {
        out.push_check(
            format!(
                "majority of flower lookups ≤150ms ({}; paper 87%)",
                pct(f_le)
            ),
            f_le > 0.5,
        );
    } else {
        let s_le = s.lookup_hist().fraction_le(150);
        out.push_check(
            format!(
                "flower resolves more ≤150ms than squirrel ({} vs {})",
                pct(f_le),
                pct(s_le)
            ),
            f_le > s_le + 0.1,
        );
    }
    out.push_check(
        format!("substantial squirrel tail >1050ms ({})", pct(s_gt)),
        s_gt > 0.15,
    );
    out.push_check(
        format!("flower beats squirrel on mean lookup by ≥3× (got ×{speedup:.1})"),
        speedup >= 3.0,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("fig7a".into(), ta.to_csv()));
    out.csv.push(("fig7b".into(), tb.to_csv()));
    out
}

/// **Figure 8** — transfer distance: variation over time (a) and
/// distribution (b), Flower-CDN vs Squirrel.
pub fn fig8(fsys: &FlowerSystem, ssys: &SquirrelSystem) -> ExpOutput {
    let mut out = ExpOutput::default();
    let f = fsys.engine().query_stats();
    let s = ssys.engine().query_stats();

    let ft = f.transfer_series().points();
    let win_h = f.transfer_series().window().as_ms() as f64 / 3_600_000.0;
    let ta = series_table(
        "Figure 8(a) — Flower-CDN average transfer distance vs time (ms)",
        &["transfer ms"],
        ft.iter()
            .enumerate()
            .map(|(i, p)| (i as f64 * win_h, vec![f1(p.mean())])),
    );

    let mut tb = Table::new(
        "Figure 8(b) — transfer distance distribution",
        &["bucket (ms)", "flower", "squirrel"],
    );
    let fd = f.transfer_hist().distribution();
    let sd = s.transfer_hist().distribution();
    for (i, (start, ff)) in fd.iter().enumerate() {
        let label = if i + 1 == fd.len() {
            format!(">{start}")
        } else {
            format!("{}-{}", start, start + 100)
        };
        tb.row(vec![label, pct(*ff), pct(sd[i].1)]);
    }

    out.text = format!("{}\n{}", ta.render(), tb.render());
    let f_le = f.transfer_hist().fraction_le(100);
    let s_le = s.transfer_hist().fraction_le(100);
    let factor = s.mean_transfer_ms() / f.mean_transfer_ms().max(1e-9);
    let hit_factor = s.mean_transfer_hit_ms() / f.mean_transfer_hit_ms().max(1e-9);
    out.text.push_str(&format!(
        "≤100ms: flower {} (paper {}), squirrel {} (paper {}); mean distance ratio ×{:.2} all, ×{:.2} P2P hits (paper ≈×{})\n",
        pct(f_le),
        pct(paper::FIG8_FLOWER_LE_100MS),
        pct(s_le),
        pct(paper::FIG8_SQUIRREL_LE_100MS),
        factor,
        hit_factor,
        paper::TRANSFER_SPEEDUP,
    ));
    out.push_check(
        format!(
            "flower serves more ≤100ms than squirrel ({} vs {})",
            pct(f_le),
            pct(s_le)
        ),
        f_le > s_le,
    );
    out.push_check(
        format!("P2P-hit transfer distance reduced ≥1.5× (got ×{hit_factor:.2})"),
        hit_factor >= 1.5,
    );
    // Locality: most flower hits stay in the requester's locality.
    let local = f.local_hit_fraction();
    out.push_check(
        format!("most flower hits are local ({})", pct(local)),
        local > 0.5,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("fig8a".into(), ta.to_csv()));
    out.csv.push(("fig8b".into(), tb.to_csv()));
    out
}

/// **Churn extension** (the paper's §8 announced analysis): session
/// churn over the client base plus targeted directory kills; checks
/// that §5.2 recovery keeps the system serving.
pub fn churn(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let cfg = runner::flower_config(opts);
    let mut sys = FlowerSystem::build(&cfg);
    let horizon = SimTime::from_ms(cfg.workload.duration_ms);

    // Kill one directory peer per active website mid-run.
    let k = cfg.topology.localities;
    let mut kills: Vec<(SimTime, NodeId)> = Vec::new();
    for ws in 0..cfg.catalog.active_websites as u16 {
        let loc = Locality((ws as usize % k) as u16);
        if let Some(d) = sys.initial_directory(workload::WebsiteId(ws), loc) {
            kills.push((SimTime::from_ms(horizon.as_ms() / 3), d));
        }
    }
    sys.apply_churn(&ChurnScript::kill_at(&kills));

    // Session churn over 30% of community members.
    let mut affected: Vec<NodeId> = Vec::new();
    for ws in 0..cfg.catalog.active_websites as u16 {
        for l in 0..k as u16 {
            let comm = sys.community(workload::WebsiteId(ws), Locality(l));
            affected.extend(comm.iter().take(comm.len() / 3));
        }
    }
    affected.sort_unstable_by_key(|n| n.0);
    affected.dedup();
    let churn_cfg = ChurnConfig {
        start: SimTime::from_ms(horizon.as_ms() / 4),
        end: horizon,
        mean_session: SimDuration::from_ms(horizon.as_ms() / 4),
        mean_downtime: SimDuration::from_ms(horizon.as_ms() / 20),
        permanent: false,
    };
    let script = ChurnScript::generate(&churn_cfg, &affected, opts.seed);
    sys.apply_churn(&script);

    sys.run_until(horizon + SimDuration::from_secs(60));
    let r = sys.report();
    out.metrics.push(MetricsRecord {
        experiment: "churn".into(),
        sim_key: format!("churn/seed{}", opts.seed),
        shards: sys.engine().num_shards(),
        set: sys.engine().metrics().clone(),
    });

    let replacements: u64 = sys
        .engine()
        .topology()
        .node_ids()
        .map(|n| sys.engine().node(n).stats.replacements_won)
        .sum();

    let mut t = Table::new(
        "Churn extension — session churn + directory kills",
        &["metric", "value"],
    );
    t.row(vec!["peers under churn".into(), affected.len().to_string()]);
    t.row(vec!["directory kills".into(), kills.len().to_string()]);
    t.row(vec!["churn events".into(), script.len().to_string()]);
    t.row(vec!["hit ratio".into(), f3(r.hit_ratio)]);
    t.row(vec![
        "resolved/submitted".into(),
        format!("{}/{}", r.resolved, r.submitted),
    ]);
    t.row(vec![
        "redirection failures".into(),
        r.redirection_failures.to_string(),
    ]);
    t.row(vec![
        "directory replacements won".into(),
        replacements.to_string(),
    ]);
    out.text = t.render();
    out.push_check(
        format!("system keeps serving under churn (hit {:.3})", r.hit_ratio),
        r.hit_ratio > 0.3,
    );
    out.push_check(
        format!("killed directories get replaced ({replacements} replacements)"),
        replacements >= 1,
    );
    out.push_check(
        format!(
            "redirection failures are handled ({} seen)",
            r.redirection_failures
        ),
        r.resolved as f64 > r.submitted as f64 * 0.9,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("churn".into(), t.to_csv()));
    out
}

/// **Ablation** — the design choices DESIGN.md calls out: gossip off
/// (no epidemic summaries) and directory summaries off (no
/// cross-locality redirect).
pub fn ablation(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let mut t = Table::new(
        "Ablation — contribution of gossip and directory summaries",
        &[
            "variant",
            "hit ratio",
            "local hit frac",
            "mean lookup ms",
            "bw bps",
        ],
    );
    let mut results = Vec::new();
    for variant in [
        "baseline",
        "gossip-off",
        "dir-summaries-off",
        "member-dir-fallback",
    ] {
        let mut cfg = runner::flower_config(opts);
        match variant {
            "gossip-off" => {
                // Push the first exchange far past the horizon.
                cfg.flower.t_gossip = SimDuration::from_ms(cfg.workload.duration_ms * 100);
            }
            "dir-summaries-off" => cfg.flower.max_dir_hops = 0,
            "member-dir-fallback" => cfg.flower.member_dir_fallback = true,
            _ => {}
        }
        let (_, r) = runner::run_flower(&cfg);
        t.row(vec![
            variant.into(),
            f3(r.hit_ratio),
            f3(r.local_hit_fraction),
            f1(r.mean_lookup_ms),
            f1(r.background_bps * opts.scale.factor()),
        ]);
        results.push(r);
    }
    out.text = t.render();
    out.push_check(
        format!(
            "gossip-off removes background traffic ({:.1} vs {:.1} bps)",
            results[1].background_bps, results[0].background_bps
        ),
        results[1].background_bps < results[0].background_bps * 0.5,
    );
    out.push_check(
        format!(
            "dir-summaries only affect the hit ratio marginally ({:.3} vs {:.3}) — \
             they matter for *where* first-access hits come from, not how many",
            results[2].hit_ratio, results[0].hit_ratio
        ),
        (results[2].hit_ratio - results[0].hit_ratio).abs() <= 0.06,
    );
    out.push_check(
        format!(
            "gossip-off hurts the hit ratio ({:.3} vs baseline {:.3})",
            results[1].hit_ratio, results[0].hit_ratio
        ),
        results[1].hit_ratio < results[0].hit_ratio,
    );
    out.push_check(
        format!(
            "member-dir-fallback lifts the hit ratio ({:.3} vs baseline {:.3})",
            results[3].hit_ratio, results[0].hit_ratio
        ),
        results[3].hit_ratio >= results[0].hit_ratio - 0.01,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("ablation".into(), t.to_csv()));
    out
}

/// **§8 extension: active replication** — pushing popular content
/// toward other overlays of the same website. Compares the base
/// system with replication enabled: remote queries should find
/// replicas locally more often, shrinking the transfer distance.
pub fn replication(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let mut t = Table::new(
        "Active replication (§8 future work) — off vs on",
        &[
            "variant",
            "hit ratio",
            "local hit frac",
            "transfer ms (hits)",
            "bw bps",
        ],
    );
    let mut results = Vec::new();
    for on in [false, true] {
        let mut cfg = runner::flower_config(opts);
        if on {
            let period = SimDuration::from_ms((cfg.flower.t_gossip.as_ms()).max(1));
            cfg.flower.replication_period = Some(period);
            cfg.flower.replication_top_k = 10;
        }
        let (sys, r) = runner::run_flower(&cfg);
        let hit_transfer = sys.engine().query_stats().mean_transfer_hit_ms();
        t.row(vec![
            if on { "replication-on" } else { "baseline" }.into(),
            f3(r.hit_ratio),
            f3(r.local_hit_fraction),
            f1(hit_transfer),
            f1(r.background_bps * opts.scale.factor()),
        ]);
        results.push((r, hit_transfer));
    }
    out.text = t.render();
    out.push_check(
        format!(
            "replication raises the local-hit fraction ({:.3} → {:.3})",
            results[0].0.local_hit_fraction, results[1].0.local_hit_fraction
        ),
        results[1].0.local_hit_fraction >= results[0].0.local_hit_fraction - 0.01,
    );
    out.push_check(
        format!(
            "replication does not hurt the hit ratio ({:.3} → {:.3})",
            results[0].0.hit_ratio, results[1].0.hit_ratio
        ),
        results[1].0.hit_ratio >= results[0].0.hit_ratio - 0.02,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("replication".into(), t.to_csv()));
    out
}

/// **§8 extension: cache replacement** — bounded per-peer caches with
/// LRU/LFU. Smaller caches mean fewer self-hits and more stale
/// directory entries (exercising §5.1 retries); the hit ratio must
/// degrade gracefully, not collapse.
pub fn cache_pressure(opts: RunOpts) -> ExpOutput {
    use flower_core::CachePolicy;
    let mut out = ExpOutput::default();
    let mut t = Table::new(
        "Cache replacement (§8 future work) — capacity sweep (objects/peer)",
        &[
            "variant",
            "hit ratio",
            "mean lookup ms",
            "redirection failures",
        ],
    );
    let mut hits = Vec::new();
    let variants: [(&str, CachePolicy, usize); 4] = [
        ("unbounded", CachePolicy::Unbounded, 0),
        ("lru-50", CachePolicy::Lru, 50),
        ("lru-10", CachePolicy::Lru, 10),
        ("lfu-10", CachePolicy::Lfu, 10),
    ];
    for (name, policy, cap) in variants {
        let mut cfg = runner::flower_config(opts);
        cfg.flower.cache_policy = policy;
        cfg.flower.cache_capacity = cap;
        let (_, r) = runner::run_flower(&cfg);
        t.row(vec![
            name.into(),
            f3(r.hit_ratio),
            f1(r.mean_lookup_ms),
            r.redirection_failures.to_string(),
        ]);
        hits.push(r.hit_ratio);
    }
    out.text = t.render();
    out.push_check(
        format!(
            "smaller caches lower the hit ratio ({:.3} vs {:.3})",
            hits[2], hits[0]
        ),
        hits[2] <= hits[0] + 0.01,
    );
    out.push_check(
        format!(
            "even tiny caches keep the CDN functional (hit {:.3})",
            hits[2]
        ),
        hits[2] > 0.1,
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("cache".into(), t.to_csv()));
    out
}

/// **Substrates** — the §3.1 portability claim as an experiment axis:
/// the identical workload and seed over a Chord-backed and a
/// Pastry-backed D-ring. The protocol above the substrate is
/// unchanged, so the headline metrics must essentially coincide; what
/// differs is the substrate's own routing/maintenance behaviour.
pub fn substrates(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let mut table = Table::new(
        "Substrate comparison — same workload over Chord and Pastry (§3.1)",
        &[
            "substrate",
            "hit ratio",
            "resolved",
            "lookup ms",
            "transfer ms",
            "bw bps",
        ],
    );
    let mut reports = Vec::new();
    for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
        let cfg = runner::flower_config(RunOpts {
            substrate: kind,
            ..opts
        });
        let (_, r) = runner::run_flower(&cfg);
        table.row(vec![
            kind.to_string(),
            f3(r.hit_ratio),
            format!("{}/{}", r.resolved, r.submitted),
            f1(r.mean_lookup_ms),
            f1(r.mean_transfer_ms),
            f1(r.background_bps * opts.scale.factor()),
        ]);
        reports.push(r);
    }
    let (chord, pastry) = (&reports[0], &reports[1]);
    out.push_check(
        format!(
            "both substrates resolve ≥99% (chord {}/{}, pastry {}/{})",
            chord.resolved, chord.submitted, pastry.resolved, pastry.submitted
        ),
        chord.resolved as f64 >= chord.submitted as f64 * 0.99
            && pastry.resolved as f64 >= pastry.submitted as f64 * 0.99,
    );
    let delta = (chord.hit_ratio - pastry.hit_ratio).abs();
    out.push_check(
        format!(
            "hit ratios agree within 0.05 (chord {:.3}, pastry {:.3}, Δ {:.3})",
            chord.hit_ratio, pastry.hit_ratio, delta
        ),
        delta <= 0.05,
    );
    // A modest absolute floor: the overlays must actually form under
    // both substrates. (Absolute hit-ratio levels are scale-sensitive
    // — short scaled runs spend most of their time warming up — and
    // are asserted by the gossip-sweep experiments, not here.)
    out.push_check(
        format!(
            "both hit ratios exceed 0.25 (chord {:.3}, pastry {:.3})",
            chord.hit_ratio, pastry.hit_ratio
        ),
        chord.hit_ratio > 0.25 && pastry.hit_ratio > 0.25,
    );
    out.text = table.render();
    out.text.push_str(&out.render_checks());
    out.csv.push(("table".into(), table.to_csv()));
    out
}

/// Parameters of the [`scale`] experiment sweep.
#[derive(Clone, Debug)]
pub struct ScaleParams {
    /// Node counts to sweep (e.g. `[10_000, 50_000, 100_000]`).
    pub nodes: Vec<usize>,
    /// Shard counts to sweep per node count (e.g. `[1, 2, 4, 8]`).
    pub shards: Vec<usize>,
    /// Event-queue backends to sweep per cell (e.g. both, to compare
    /// the calendar queue against the binary heap on equal terms).
    pub queues: Vec<EventQueueKind>,
    /// Lookahead modes to sweep per cell (matrix, global floor or
    /// both). Global-floor cells are suffixed `/glf`; when both modes
    /// run for a multi-shard cell, the sweep checks that the matrix
    /// synchronizes no more often (fewer or equal barrier epochs)
    /// while producing identical statistics.
    pub lookaheads: Vec<LookaheadKind>,
    /// §5.3 instance-bits values to sweep (e.g. `[0, 2]` to compare
    /// the flat D-ring against a PetalUp one on the same workload).
    pub instance_bits: Vec<u32>,
    /// Simulated horizon per cell.
    pub horizon: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Append the WAN lookahead-comparison cells: for every node count
    /// and multi-shard count, one matrix + one global-floor run on the
    /// [`scale_wan_config`] topology (tight metro PoPs, so the exact
    /// inter-locality minima *exceed* the uniform 60 ms floor). In the
    /// standard scale topology adjacent domains sit exactly at the
    /// floor, so under a dense workload both schedules saturate at
    /// `sim / floor` barrier rounds — the WAN cells are where the
    /// matrix's reduction is measurable end to end (and asserted
    /// strictly).
    pub wan: bool,
    /// Pin shard worker threads to cores under the latency-aware
    /// placement (the `--pin` flag). A wall-clock knob: results are
    /// bit-identical with pinning on or off, and hosts with fewer
    /// cores than shards (or denied affinity) degrade gracefully.
    pub pin: bool,
}

impl Default for ScaleParams {
    fn default() -> Self {
        ScaleParams {
            nodes: vec![10_000, 50_000, 100_000],
            shards: vec![1, 2, 4, 8],
            queues: vec![EventQueueKind::default()],
            lookaheads: vec![LookaheadKind::default()],
            instance_bits: vec![0],
            horizon: SimDuration::from_secs(60),
            seed: 42,
            wan: false,
            pin: false,
        }
    }
}

/// The deployment a `scale` cell simulates: an 8-domain CDN with
/// well-separated localities (60 ms inter-domain latency floor — which
/// is also the engine's epoch lookahead), communities sized with the
/// node count, a query rate proportional to the population (so the
/// event load actually grows with `nodes`), and Zipf-skewed *website*
/// popularity — the §5.3 PetalUp workload, where a couple of hot
/// websites would overload their flat directory petals.
fn scale_config(
    nodes: usize,
    shards: usize,
    queue: EventQueueKind,
    lookahead: LookaheadKind,
    instance_bits: u32,
    horizon: SimDuration,
    seed: u64,
) -> SystemConfig {
    use flower_core::FlowerConfig;
    use simnet::TopologyConfig;
    use workload::{CatalogConfig, WorkloadConfig};
    let localities = SCALE_LOCALITIES;
    let active_websites = SCALE_ACTIVE_WEBSITES;
    let query_rate_per_sec = nodes as f64 * SCALE_QUERY_RATE_PER_NODE;
    let flower_base = FlowerConfig::fast_test();
    // Split when an instance runs notably hotter than the mean petal's
    // expected per-window load; the power-of-two doubling then settles
    // each petal at roughly load/threshold instances (≤ 2^b). Scaled
    // from the workload so the policy is population-independent.
    let mean_petal_window = scale_mean_petal_window(nodes);
    let petal_split_threshold = (mean_petal_window * 0.45).max(4.0) as u64;
    SystemConfig {
        topology: TopologyConfig {
            nodes,
            localities,
            min_latency_ms: 10,
            max_latency_ms: 500,
            cluster_spread: 0.03,
            background_fraction: 0.0,
            population_skew: 0.25,
            inter_locality_floor_ms: 60,
            event_queue: queue,
            lookahead,
            pin: false,
        },
        catalog: CatalogConfig {
            num_websites: 8,
            active_websites,
            objects_per_website: 200,
            ..Default::default()
        },
        workload: WorkloadConfig {
            query_rate_per_sec,
            duration_ms: horizon.as_ms(),
            website_zipf_alpha: 1.2,
            ..Default::default()
        },
        flower: FlowerConfig {
            max_overlay: (nodes / 16).max(50),
            instance_bits,
            petal_split_threshold,
            petal_merge_floor: (petal_split_threshold / 4).max(1),
            ..flower_base
        },
        seed,
        window: SimDuration::from_secs(30),
        shards,
    }
}

/// The `scale` deployment's shape, shared by [`scale_config`] and
/// [`scale_mean_petal_window`] so the split threshold and the
/// flatten-check strictness can never drift apart.
const SCALE_LOCALITIES: usize = 8;
/// Active websites of the `scale` deployment (petals = localities ×
/// active websites).
const SCALE_ACTIVE_WEBSITES: usize = 4;
/// Query rate per node per second of the `scale` workload.
const SCALE_QUERY_RATE_PER_NODE: f64 = 0.02;

/// Expected per-window query load of the *average* petal in a
/// [`scale_config`] deployment — the resolution the split policy has
/// to work with (`scale_config` derives its split threshold from it,
/// [`scale`] its strictness bounds).
fn scale_mean_petal_window(nodes: usize) -> f64 {
    use flower_core::FlowerConfig;
    let window_s = FlowerConfig::fast_test().keepalive_period.as_ms() as f64 / 1000.0;
    nodes as f64 * SCALE_QUERY_RATE_PER_NODE * window_s
        / (SCALE_LOCALITIES * SCALE_ACTIVE_WEBSITES) as f64
}

/// The WAN variant of [`scale_config`]: the same deployment on tight
/// metro PoPs (cluster spread 0.012 instead of 0.03). Domains shrink
/// to points, so the *exact* minimum latency between locality point
/// sets rises above the uniform 60 ms inter-domain floor — adjacent
/// domains land around 70–80 ms, opposite ones in the hundreds —
/// which is precisely the structure the per-shard-pair lookahead
/// matrix converts into longer epochs. A separate cell family
/// (`…/wan`): a different topology is a different trace, and the
/// standard cells' seed-pinned statistics must stay untouched.
fn scale_wan_config(
    nodes: usize,
    shards: usize,
    queue: EventQueueKind,
    lookahead: LookaheadKind,
    horizon: SimDuration,
    seed: u64,
) -> SystemConfig {
    let mut cfg = scale_config(nodes, shards, queue, lookahead, 0, horizon, seed);
    cfg.topology.cluster_spread = 0.012;
    cfg
}

/// The headline statistics of one scale cell that must match across
/// shard counts: submitted, resolved, hit ratio, total messages.
type CellStats = (u64, u64, f64, u64);

/// **Scale** — the engine-performance experiment: sweep the node
/// count, the §5.3 instance bits, the shard count and the event-queue
/// backend; report events/second, wall-clock and per-instance
/// directory load per cell; assert that within every (nodes,
/// instance_bits) group all (shards, queue) combinations produce
/// *identical* query statistics — the engine's bit-determinism
/// guarantee (shard layout *and* event storage are execution details,
/// and the §5.3 instance choice is a pure function of protocol
/// state), measured end to end. When the sweep includes both the flat
/// D-ring (`b = 0`) and a PetalUp one (`b ≥ 1`), it also checks that
/// the splits actually flatten the per-instance directory load under
/// the Zipf-skewed website workload.
pub fn scale(params: &ScaleParams) -> ExpOutput {
    let mut out = ExpOutput::default();
    let mut table = Table::new(
        "Scale — engine throughput (instance bits × locality shards × event-queue backend × lookahead)",
        &[
            "nodes",
            "bits",
            "shards",
            "queue",
            "lookahead",
            "wall s",
            "events",
            "events/s",
            "peak queue",
            "epochs",
            "speedup vs base",
            "hit ratio",
            "dir max/mean",
            "live dirs",
        ],
    );
    for &nodes in &params.nodes {
        // Per-instance load imbalance of each instance-bits group
        // (identical across the group's cells, so the base cell's
        // value represents it).
        let mut load_ratios: Vec<(u32, f64)> = Vec::new();
        for &bits in &params.instance_bits {
            // Baseline = the first (shards, queue, lookahead) cell of
            // the group.
            let mut base: Option<(f64, String, CellStats)> = None;
            for &shards in &params.shards {
                for &queue in &params.queues {
                    // Barrier epochs per lookahead mode at this
                    // (shards, queue) point — the matrix's whole point
                    // is shrinking this, so when both modes run they
                    // are compared below.
                    let mut epochs_by_mode: Vec<(LookaheadKind, u64)> = Vec::new();
                    for &lookahead in &params.lookaheads {
                        let mut cfg = scale_config(
                            nodes,
                            shards,
                            queue,
                            lookahead,
                            bits,
                            params.horizon,
                            params.seed,
                        );
                        cfg.topology.pin = params.pin;
                        let mut name = if bits == 0 {
                            format!("scale/{nodes}n")
                        } else {
                            format!("scale/{nodes}n/b{bits}")
                        };
                        if lookahead == LookaheadKind::GlobalFloor {
                            name.push_str("/glf");
                        }
                        let (sys, report, record) = runner::run_flower_timed(&cfg, &name);
                        let speedup = match &base {
                            None => format!("×1.00 (base: {shards} shard(s), {queue})"),
                            Some((base_wall, _, _)) => {
                                format!("×{:.2}", base_wall / record.wall_s.max(1e-9))
                            }
                        };
                        table.row(vec![
                            nodes.to_string(),
                            bits.to_string(),
                            sys.engine().num_shards().to_string(),
                            queue.to_string(),
                            lookahead.to_string(),
                            format!("{:.2}", record.wall_s),
                            record.events.to_string(),
                            f1(record.events_per_sec),
                            record.peak_queue_depth.to_string(),
                            record.epochs.to_string(),
                            speedup,
                            f3(report.hit_ratio),
                            f3(report.dir_load_max_mean),
                            report.dir_instances_live.to_string(),
                        ]);
                        epochs_by_mode.push((lookahead, record.epochs));
                        let stats = (
                            report.submitted,
                            report.resolved,
                            report.hit_ratio,
                            sys.engine().traffic().messages(),
                        );
                        match &base {
                            None => {
                                load_ratios.push((bits, report.dir_load_max_mean));
                                base = Some((
                                    record.wall_s,
                                    format!("{shards} shards/{queue}"),
                                    stats,
                                ));
                            }
                            Some((_, base_cell, base_stats)) => out.push_check(
                                format!(
                                    "{nodes} nodes / b{bits} / {shards} shards / {queue} / \
                                     {lookahead}: query statistics identical to {base_cell} run \
                                     ({}/{} hit {:.6}, {} msgs, dir load {:.4})",
                                    stats.0, stats.1, stats.2, stats.3, report.dir_load_max_mean
                                ),
                                *base_stats == stats,
                            ),
                        }
                        out.metrics.push(MetricsRecord {
                            experiment: name.clone(),
                            // Shards/queue are execution knobs; the
                            // /glf suffix only switches the lookahead
                            // mode, so the /glf twin simulates the
                            // same trace and shares the key.
                            sim_key: name.trim_end_matches("/glf").to_string(),
                            shards: sys.engine().num_shards(),
                            set: sys.engine().metrics().clone(),
                        });
                        out.bench.push(record);
                    }
                    let matrix = epochs_by_mode
                        .iter()
                        .find(|(k, _)| *k == LookaheadKind::Matrix);
                    let global = epochs_by_mode
                        .iter()
                        .find(|(k, _)| *k == LookaheadKind::GlobalFloor);
                    if let (Some((_, m)), Some((_, g))) = (matrix, global) {
                        if shards > 1 {
                            out.push_check(
                                format!(
                                    "{nodes} nodes / b{bits} / {shards} shards / {queue}: \
                                     lookahead matrix reduces barrier epochs ({m} vs {g} \
                                     global-floor)"
                                ),
                                m <= g && *g > 0,
                            );
                        }
                    }
                }
            }
        }
        // §5.3 PetalUp shape: splits must flatten the per-instance
        // directory load relative to the flat D-ring on the same
        // Zipf-skewed workload — by ≥3× once 4 instances are
        // available, measurably at 2. The 3× bound needs the policy
        // to have resolution (tens of queries per petal window); tiny
        // sweeps where a window holds a handful of queries get a 2×
        // bound instead.
        if let Some(&(_, flat)) = load_ratios.iter().find(|(b, _)| *b == 0) {
            let strict = scale_mean_petal_window(nodes) >= 25.0;
            for &(bits, ratio) in load_ratios.iter().filter(|(b, _)| *b > 0) {
                let bound = match (bits, strict) {
                    (2.., true) => flat / 3.0,
                    (2.., false) => flat * 0.5,
                    _ => flat * 0.8,
                };
                out.push_check(
                    format!(
                        "{nodes} nodes: b{bits} flattens directory load \
                         (max/mean {ratio:.3} vs flat {flat:.3}, bound {bound:.3})"
                    ),
                    ratio > 0.0 && ratio <= bound,
                );
            }
        }
        // WAN comparison cells: the topology where the lookahead
        // matrix's epoch reduction is measurable (see
        // [`ScaleParams::wan`]). One matrix/global-floor pair per
        // multi-shard count, first queue backend, flat D-ring.
        if params.wan {
            for &shards in params.shards.iter().filter(|s| **s > 1) {
                let queue = params.queues[0];
                let mut wan_base: Option<CellStats> = None;
                let mut wan_epochs: Vec<(LookaheadKind, u64)> = Vec::new();
                for lookahead in [LookaheadKind::Matrix, LookaheadKind::GlobalFloor] {
                    let mut cfg = scale_wan_config(
                        nodes,
                        shards,
                        queue,
                        lookahead,
                        params.horizon,
                        params.seed,
                    );
                    cfg.topology.pin = params.pin;
                    let mut name = format!("scale/{nodes}n/wan");
                    if lookahead == LookaheadKind::GlobalFloor {
                        name.push_str("/glf");
                    }
                    let (sys, report, record) = runner::run_flower_timed(&cfg, &name);
                    table.row(vec![
                        nodes.to_string(),
                        "wan".into(),
                        sys.engine().num_shards().to_string(),
                        queue.to_string(),
                        lookahead.to_string(),
                        format!("{:.2}", record.wall_s),
                        record.events.to_string(),
                        f1(record.events_per_sec),
                        record.peak_queue_depth.to_string(),
                        record.epochs.to_string(),
                        "—".into(),
                        f3(report.hit_ratio),
                        f3(report.dir_load_max_mean),
                        report.dir_instances_live.to_string(),
                    ]);
                    wan_epochs.push((lookahead, record.epochs));
                    let stats = (
                        report.submitted,
                        report.resolved,
                        report.hit_ratio,
                        sys.engine().traffic().messages(),
                    );
                    match &wan_base {
                        None => wan_base = Some(stats),
                        Some(base) => out.push_check(
                            format!(
                                "{nodes} nodes / wan / {shards} shards: global-floor \
                                 statistics identical to the matrix run ({}/{} hit {:.6})",
                                stats.0, stats.1, stats.2
                            ),
                            *base == stats,
                        ),
                    }
                    out.metrics.push(MetricsRecord {
                        experiment: name.clone(),
                        sim_key: name.trim_end_matches("/glf").to_string(),
                        shards: sys.engine().num_shards(),
                        set: sys.engine().metrics().clone(),
                    });
                    out.bench.push(record);
                }
                let m = wan_epochs[0].1;
                let g = wan_epochs[1].1;
                out.push_check(
                    format!(
                        "{nodes} nodes / wan / {shards} shards: lookahead matrix \
                         strictly reduces barrier epochs ({m} vs {g} global-floor)"
                    ),
                    m < g,
                );
            }
        }
    }
    out.text = table.render();
    out.text.push_str(
        "note: wall-clock speedup needs real cores; on a single-CPU host the sweep\n\
         still verifies shard/queue determinism while events/s stays flat.\n",
    );
    out.text.push_str(&out.render_checks());
    out.csv.push(("scale".into(), table.to_csv()));
    out
}

// ------------------------------------------------------------------
// Chaos — the fault-injection plane exercised end to end
// ------------------------------------------------------------------

/// Node count of the chaos deployment. Small enough that the whole
/// cell matrix (four families × their shard sweeps) finishes inside a
/// CI release job, large enough that every locality hosts communities
/// and directory petals worth disrupting.
const CHAOS_NODES: usize = 2000;

/// Localities of the chaos deployment (same shape as `scale`).
const CHAOS_LOCALITIES: usize = 8;

/// The scripted fault window shared by every chaos family: strike at
/// 150 s, heal/end at 240 s of the 360 s horizon — a settled plateau
/// on both sides of the disruption.
fn chaos_fault_window() -> (SimTime, SimTime) {
    (SimTime::from_secs(150), SimTime::from_secs(240))
}

/// Hit-ratio bucket width of the chaos cells — fine enough to resolve
/// the dip and the recovery point inside the 90 s fault window.
fn chaos_window() -> SimDuration {
    SimDuration::from_secs(15)
}

/// The chaos deployment: `scale`-shaped topology (8 localities, WAN
/// latencies) but only 2 active websites, so the origin servers live
/// in exactly localities 1 and 2 (round-robin placement starts at
/// locality 1) and the partition script can keep them reachable from
/// everywhere. Query timeouts are armed (2 s initial, retry budget 2):
/// lookups swallowed by a fault retry against a sibling instance and
/// eventually degrade to the origin server.
pub fn chaos_config(nodes: usize, shards: usize, seed: u64) -> SystemConfig {
    use flower_core::FlowerConfig;
    use simnet::TopologyConfig;
    use workload::{CatalogConfig, WorkloadConfig};
    SystemConfig {
        topology: TopologyConfig {
            nodes,
            localities: CHAOS_LOCALITIES,
            min_latency_ms: 10,
            max_latency_ms: 500,
            cluster_spread: 0.03,
            background_fraction: 0.0,
            population_skew: 0.25,
            inter_locality_floor_ms: 60,
            event_queue: EventQueueKind::Calendar,
            lookahead: LookaheadKind::Matrix,
            pin: false,
        },
        catalog: CatalogConfig {
            num_websites: 8,
            active_websites: 2,
            objects_per_website: 200,
            ..Default::default()
        },
        workload: WorkloadConfig {
            query_rate_per_sec: nodes as f64 * SCALE_QUERY_RATE_PER_NODE,
            duration_ms: SimDuration::from_secs(360).as_ms(),
            website_zipf_alpha: 1.2,
            ..Default::default()
        },
        flower: FlowerConfig {
            max_overlay: (nodes / 16).max(50),
            query_timeout: Some(SimDuration::from_secs(2)),
            ..FlowerConfig::fast_test()
        },
        seed,
        window: chaos_window(),
        shards,
    }
}

/// The flash-crowd variant of [`chaos_config`]: no network fault —
/// instead the colder of the two active websites (popularity rank 1)
/// receives a surge of extra queries across the fault window, roughly
/// tripling the deployment's total query rate while it lasts.
pub fn chaos_flash_config(nodes: usize, shards: usize, seed: u64) -> SystemConfig {
    let mut cfg = chaos_config(nodes, shards, seed);
    let (start, end) = chaos_fault_window();
    cfg.workload.surges = vec![Surge::FlashCrowd {
        start_ms: start.as_ms(),
        end_ms: end.as_ms(),
        website_rank: 1,
        extra_rate_per_sec: cfg.workload.query_rate_per_sec * 2.0,
    }];
    cfg
}

/// The partition script: pairwise islands. Every pair among the six
/// victim localities {0, 3, 4, 5, 6, 7} is severed, while localities
/// 1 and 2 — hosting the two active websites' origin servers — stay
/// connected to everyone, so the degradation path (retry budget
/// exhausted → origin) always has a route. Victim clients keep their
/// intra-locality overlays but lose every D-ring route hopping
/// through another victim locality.
fn chaos_partition_plane(start: SimTime, heal: SimTime) -> FaultPlane {
    let victims = [0u16, 3, 4, 5, 6, 7];
    let mut plane = FaultPlane::new();
    for (i, &a) in victims.iter().enumerate() {
        for &b in &victims[i + 1..] {
            plane = plane.partition(Partition {
                start,
                heal,
                side_a: vec![Locality(a)],
                side_b: vec![Locality(b)],
            });
        }
    }
    plane
}

/// Steady session churn over a third of every community: rejoining
/// nodes come back stateless (fresh clients), keeping a continuous
/// flow of D-ring lookups — the traffic a partition actually breaks —
/// through the whole run instead of only during the join wave.
fn chaos_churn(sys: &FlowerSystem, cfg: &SystemConfig, seed: u64) -> ChurnScript {
    let horizon = SimTime::from_ms(cfg.workload.duration_ms);
    let mut affected: Vec<NodeId> = Vec::new();
    for ws in 0..cfg.catalog.active_websites as u16 {
        for l in 0..cfg.topology.localities as u16 {
            let comm = sys.community(workload::WebsiteId(ws), Locality(l));
            affected.extend(comm.iter().take(comm.len() / 3));
        }
    }
    affected.sort_unstable_by_key(|n| n.0);
    affected.dedup();
    ChurnScript::generate(
        &ChurnConfig {
            start: SimTime::from_secs(30),
            end: horizon,
            mean_session: SimDuration::from_secs(90),
            mean_downtime: SimDuration::from_secs(15),
            permanent: false,
        },
        &affected,
        seed,
    )
}

/// Availability readout of one fault cell: the windowed hit-ratio
/// series summarised relative to a scripted fault window.
#[derive(Clone, Copy, Debug)]
pub struct Availability {
    /// Count-weighted mean hit ratio of the settled pre-fault windows.
    pub pre_hit: f64,
    /// Worst windowed hit ratio while the fault was active.
    pub min_fault_hit: f64,
    /// `pre_hit − min_fault_hit`: how deep availability dipped.
    pub dip_depth: f64,
    /// Seconds from the heal instant until the end of the first
    /// window whose hit ratio is back within 5% of `pre_hit`; `None`
    /// when the run ends without recovering.
    pub recovery_s: Option<f64>,
    /// Count-weighted mean hit ratio from the recovery window onward
    /// (0 when the system never recovered).
    pub recovered_hit: f64,
}

/// Fraction of the pre-fault hit ratio a post-heal window must reach
/// to count as recovered (the acceptance bound: within 5%).
pub const RECOVERY_FRACTION: f64 = 0.95;

/// Summarise a windowed hit-ratio series ([`simnet::TimeSeries`]
/// points of bucket width `window`) against a fault active over
/// `[fault_start, fault_end)`. Pre-fault statistics ignore windows
/// before `settle` (warm-up) and the window overlapping the fault
/// onset; empty windows never count. When no non-empty window
/// overlaps the fault, `min_fault_hit` falls back to `pre_hit` (no
/// dip evidence).
pub fn availability(
    points: &[SeriesPoint],
    window: SimDuration,
    settle: SimTime,
    fault_start: SimTime,
    fault_end: SimTime,
) -> Availability {
    let weighted = |pts: &[SeriesPoint]| -> f64 {
        let (sum, count) = pts
            .iter()
            .fold((0.0, 0u64), |(s, c), p| (s + p.sum, c + p.count));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    };
    let pre: Vec<SeriesPoint> = points
        .iter()
        .filter(|p| p.count > 0 && p.at >= settle && p.at + window <= fault_start)
        .copied()
        .collect();
    let pre_hit = weighted(&pre);
    let min_fault_hit = points
        .iter()
        .filter(|p| p.count > 0 && p.at < fault_end && p.at + window > fault_start)
        .map(|p| p.mean())
        .fold(f64::INFINITY, f64::min);
    let min_fault_hit = if min_fault_hit.is_finite() {
        min_fault_hit
    } else {
        pre_hit
    };
    let mut recovery_s = None;
    let mut recovered: Vec<SeriesPoint> = Vec::new();
    for p in points.iter().filter(|p| p.count > 0 && p.at >= fault_end) {
        if recovery_s.is_none() {
            if p.mean() < RECOVERY_FRACTION * pre_hit {
                continue;
            }
            recovery_s = Some(((p.at + window) - fault_end).as_ms() as f64 / 1000.0);
        }
        recovered.push(*p);
    }
    Availability {
        pre_hit,
        min_fault_hit,
        dip_depth: pre_hit - min_fault_hit,
        recovery_s,
        recovered_hit: weighted(&recovered),
    }
}

/// Run one chaos cell family across `shard_sweep`: every multi-shard
/// run must be bit-identical to the first (checked on the full
/// windowed hit series, not just the totals), every cell records a
/// metrics snapshot under the family's shared `sim_key` — so the
/// metrics gate re-checks the parity from the registry side — and a
/// bench row. Returns the first cell's system and report for series
/// analysis.
fn run_chaos_family(
    out: &mut ExpOutput,
    family: &str,
    seed: u64,
    shard_sweep: &[usize],
    mk_cfg: &dyn Fn(usize) -> SystemConfig,
    prep: &dyn Fn(&mut FlowerSystem, &SystemConfig),
) -> (FlowerSystem, SystemReport) {
    let mut first: Option<(FlowerSystem, SystemReport, String)> = None;
    for &shards in shard_sweep {
        let cfg = mk_cfg(shards);
        let name = format!("chaos/{family}");
        let (sys, report, record) = runner::run_flower_timed_with(&cfg, &name, |s| prep(s, &cfg));
        let windows: Vec<(u64, u64)> = sys
            .engine()
            .query_stats()
            .hit_series()
            .points()
            .iter()
            .map(|p| (p.count, (p.sum * 1e6) as u64))
            .collect();
        let fingerprint = format!(
            "{}/{} hit {:.12} msgs {} fault_drops {} windows {:?}",
            report.submitted,
            report.resolved,
            report.hit_ratio,
            sys.engine().traffic().messages(),
            sys.engine().metrics().counter(Counter::EngineFaultDrops),
            windows,
        );
        out.metrics.push(MetricsRecord {
            experiment: name.clone(),
            sim_key: format!("{name}/seed{seed}"),
            shards: sys.engine().num_shards(),
            set: sys.engine().metrics().clone(),
        });
        out.bench.push(record);
        match &first {
            None => first = Some((sys, report, fingerprint)),
            Some((_, _, base)) => out.push_check(
                format!(
                    "chaos/{family}: {shards}-shard run bit-identical to \
                     the {}-shard run",
                    shard_sweep[0]
                ),
                fingerprint == *base,
            ),
        }
    }
    let (sys, report, _) = first.expect("chaos shard sweep is non-empty");
    (sys, report)
}

/// One availability row of the chaos table.
fn chaos_row(t: &mut Table, cell: &str, sys: &FlowerSystem, r: &SystemReport, a: &Availability) {
    let m = sys.engine().metrics();
    t.row(vec![
        cell.into(),
        f3(a.pre_hit),
        f3(a.min_fault_hit),
        f3(a.dip_depth),
        a.recovery_s.map_or("-".into(), |s| format!("{s:.0}")),
        m.counter(Counter::DirQueryTimeouts).to_string(),
        m.counter(Counter::DirQueryRetries).to_string(),
        m.counter(Counter::DirQueryOriginFallbacks).to_string(),
        m.counter(Counter::EngineFaultDrops).to_string(),
        format!("{}/{}", r.resolved, r.submitted),
    ]);
}

/// **Chaos** — the fault-injection plane exercised end to end: a
/// pairwise-island partition with heal, a flash crowd on the colder
/// active website, probabilistic cross-locality message loss, and a
/// correlated regional failure with staggered recovery. Each family
/// runs across a shard sweep that must stay bit-identical, and each
/// is summarised by its availability profile: settled pre-fault hit
/// ratio, dip depth while the fault holds, and time-to-recover after
/// the heal.
pub fn chaos(opts: RunOpts) -> ExpOutput {
    let mut out = ExpOutput::default();
    let seed = opts.seed;
    let nodes = opts.nodes.unwrap_or(CHAOS_NODES);
    let (start, heal) = chaos_fault_window();
    let settle = SimTime::from_secs(60);
    let window = chaos_window();
    let mut table = Table::new(
        "Chaos — scripted faults, surges and the availability they cost",
        &[
            "cell",
            "pre hit",
            "fault min",
            "dip",
            "recover s",
            "timeouts",
            "retries",
            "origin fb",
            "fault drops",
            "resolved/submitted",
        ],
    );

    // --- partition + heal -------------------------------------------
    let plane = chaos_partition_plane(start, heal);
    let (sys, report) = run_chaos_family(
        &mut out,
        "partition",
        seed,
        &[1, 2, 4],
        &|shards| chaos_config(nodes, shards, seed),
        &|s, cfg| {
            let script = chaos_churn(s, cfg, seed);
            s.apply_churn(&script);
            s.apply_faults(&plane);
        },
    );
    let a = availability(
        &sys.engine().query_stats().hit_series().points(),
        window,
        settle,
        start,
        heal,
    );
    chaos_row(&mut table, "partition", &sys, &report, &a);
    let m = sys.engine().metrics();
    out.push_check(
        format!(
            "partition: lookups time out while the D-ring is cut ({} timeouts)",
            m.counter(Counter::DirQueryTimeouts)
        ),
        m.counter(Counter::DirQueryTimeouts) > 0,
    );
    out.push_check(
        format!(
            "partition: exhausted retries degrade to the origin server \
             ({} fallbacks)",
            m.counter(Counter::DirQueryOriginFallbacks)
        ),
        m.counter(Counter::DirQueryOriginFallbacks) > 0,
    );
    out.push_check(
        format!(
            "partition: availability dips while cut (hit {:.3} → {:.3})",
            a.pre_hit, a.min_fault_hit
        ),
        a.dip_depth > 0.02,
    );
    out.push_check(
        format!(
            "partition: hit ratio back within 5% of pre-fault after heal \
             (recovered {:.3} vs pre {:.3}, {} s)",
            a.recovered_hit,
            a.pre_hit,
            a.recovery_s.map_or("inf".into(), |s| format!("{s:.0}")),
        ),
        a.recovery_s.is_some() && a.recovered_hit >= RECOVERY_FRACTION * a.pre_hit,
    );

    // --- flash crowd -------------------------------------------------
    let (sys, report) = run_chaos_family(
        &mut out,
        "flash",
        seed,
        &[1, 2, 4],
        &|shards| chaos_flash_config(nodes, shards, seed),
        &|_, _| {},
    );
    let points = sys.engine().query_stats().hit_series().points();
    let a = availability(&points, window, settle, start, heal);
    chaos_row(&mut table, "flash", &sys, &report, &a);
    // Resolution throughput per second, from the windowed counts.
    let rate = |lo: SimTime, hi: SimTime| -> f64 {
        let (mut n, mut ms) = (0u64, 0u64);
        for p in &points {
            if p.at >= lo && p.at + window <= hi {
                n += p.count;
                ms += window.as_ms();
            }
        }
        if ms == 0 {
            0.0
        } else {
            n as f64 / (ms as f64 / 1000.0)
        }
    };
    let pre_rate = rate(settle, start);
    let surge_rate = rate(start, heal);
    out.push_check(
        format!(
            "flash: the crowd actually arrives ({surge_rate:.0}/s vs {pre_rate:.0}/s baseline)"
        ),
        surge_rate > 1.5 * pre_rate,
    );
    out.push_check(
        format!(
            "flash: the overlay absorbs the crowd (resolved {}/{})",
            report.resolved, report.submitted
        ),
        report.resolved as f64 >= report.submitted as f64 * 0.9,
    );
    out.push_check(
        format!(
            "flash: hit ratio back within 5% of pre-surge once it passes \
             (recovered {:.3} vs pre {:.3})",
            a.recovered_hit, a.pre_hit
        ),
        a.recovery_s.is_some() && a.recovered_hit >= RECOVERY_FRACTION * a.pre_hit,
    );

    // --- cross-locality message loss ---------------------------------
    let loss_plane = FaultPlane::new().link_loss(LinkLoss {
        start,
        end: heal,
        probability: 0.25,
        cross_locality_only: true,
    });
    let (sys, report) = run_chaos_family(
        &mut out,
        "loss",
        seed,
        &[1, 4],
        &|shards| chaos_config(nodes, shards, seed),
        &|s, _| s.apply_faults(&loss_plane),
    );
    let a = availability(
        &sys.engine().query_stats().hit_series().points(),
        window,
        settle,
        start,
        heal,
    );
    chaos_row(&mut table, "loss", &sys, &report, &a);
    let m = sys.engine().metrics();
    out.push_check(
        format!(
            "loss: the lossy window drops traffic ({} fault drops)",
            m.counter(Counter::EngineFaultDrops)
        ),
        m.counter(Counter::EngineFaultDrops) > 0,
    );
    out.push_check(
        format!(
            "loss: retries absorb 25% cross-locality loss (resolved {}/{})",
            report.resolved, report.submitted
        ),
        report.resolved as f64 >= report.submitted as f64 * 0.9,
    );

    // --- correlated regional failure ---------------------------------
    let victim = Locality(5);
    let regional_plane = FaultPlane::new().regional_failure(RegionalFailure {
        at: start,
        locality: victim,
        recover_start: heal,
        stagger: SimDuration::from_ms(50),
    });
    let (sys, report) = run_chaos_family(
        &mut out,
        "regional",
        seed,
        &[1, 4],
        &|shards| chaos_config(nodes, shards, seed),
        &|s, _| s.apply_faults(&regional_plane),
    );
    let a = availability(
        &sys.engine().query_stats().hit_series().points(),
        window,
        settle,
        start,
        heal,
    );
    chaos_row(&mut table, "regional", &sys, &report, &a);
    let back_up = sys
        .engine()
        .topology()
        .nodes_in(victim)
        .iter()
        .all(|&n| sys.engine().is_up(n));
    out.push_check(
        format!(
            "regional: staggered recovery brings locality {} fully back",
            victim.0
        ),
        back_up,
    );
    out.push_check(
        format!(
            "regional: the surviving localities keep serving \
             (resolved {}/{})",
            report.resolved, report.submitted
        ),
        report.resolved as f64 >= report.submitted as f64 * 0.8,
    );

    out.text = table.render();
    out.text.push_str(&out.render_checks());
    out.csv.push(("chaos".into(), table.to_csv()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiments run the full 5000-node topology; in debug-mode
    /// test builds that takes minutes per run, so the heavy shape
    /// tests are `#[ignore]`d — run them explicitly with
    /// `cargo test -p experiments --release -- --ignored`, or use the
    /// `flower-experiments` binary.
    fn opts(seed: u64) -> RunOpts {
        RunOpts::new().seed(seed)
    }

    #[test]
    #[ignore = "runs paper-scale simulations; use --release -- --ignored"]
    fn table2a_shape() {
        let out = table2a(opts(11));
        assert!(out.all_passed(), "{}", out.render_checks());
        assert!(out.text.contains("Table 2(a)"));
    }

    #[test]
    #[ignore = "runs paper-scale simulations; use --release -- --ignored"]
    fn fig6_7_8_shapes() {
        let (fsys, ssys) = comparison_pair(opts(13));
        let o6 = fig6(&fsys, &ssys);
        assert!(o6.all_passed(), "{}", o6.render_checks());
        let o7 = fig7(&fsys, &ssys);
        assert!(o7.all_passed(), "{}", o7.render_checks());
        let o8 = fig8(&fsys, &ssys);
        assert!(o8.all_passed(), "{}", o8.render_checks());
    }

    #[test]
    #[ignore = "runs paper-scale simulations; use --release -- --ignored"]
    fn churn_recovers() {
        let out = churn(opts(17));
        assert!(out.all_passed(), "{}", out.render_checks());
    }

    #[test]
    #[ignore = "runs multi-thousand-node simulations; use --release -- --ignored"]
    fn scale_sweep_is_shard_queue_and_lookahead_deterministic() {
        let out = scale(&ScaleParams {
            nodes: vec![2000],
            shards: vec![1, 2, 4],
            queues: vec![EventQueueKind::Calendar, EventQueueKind::Heap],
            lookaheads: vec![LookaheadKind::Matrix, LookaheadKind::GlobalFloor],
            instance_bits: vec![0],
            horizon: SimDuration::from_secs(20),
            seed: 9,
            wan: true,
            pin: false,
        });
        assert!(out.all_passed(), "{}", out.render_checks());
        assert_eq!(
            out.bench.len(),
            16,
            "12 sweep cells + 4 wan comparison cells"
        );
        assert!(out.bench.iter().all(|r| r.events > 0));
        assert_eq!(out.bench[0].events, out.bench[1].events);
        assert_eq!(out.bench[0].queue, EventQueueKind::Calendar);
        assert!(
            out.bench[1].experiment.ends_with("/glf"),
            "global-floor cells are suffixed"
        );
        // Multi-shard matrix cells must not out-synchronize their
        // global-floor twins (also asserted as shape checks above).
        let epochs = |exp: &str, shards: usize| {
            out.bench
                .iter()
                .find(|r| {
                    r.experiment == exp && r.shards == shards && r.queue == EventQueueKind::Calendar
                })
                .map(|r| r.epochs)
                .unwrap()
        };
        assert!(epochs("scale/2000n", 2) <= epochs("scale/2000n/glf", 2));
    }

    #[test]
    #[ignore = "runs multi-thousand-node simulations; use --release -- --ignored"]
    fn scale_sweep_petalup_flattens_directory_load() {
        // The acceptance sweep: instance_bits ∈ {0, 1, 2} under the
        // Zipf website workload, bit-identical across shard counts,
        // with b = 2 flattening max/mean to ≤ 1/3 of the flat ring's.
        let out = scale(&ScaleParams {
            nodes: vec![20_000],
            shards: vec![1, 2, 4],
            queues: vec![EventQueueKind::Calendar],
            lookaheads: vec![LookaheadKind::Matrix],
            instance_bits: vec![0, 1, 2],
            horizon: SimDuration::from_secs(30),
            seed: 42,
            wan: false,
            pin: false,
        });
        assert!(out.all_passed(), "{}", out.render_checks());
        assert_eq!(out.bench.len(), 9, "3 bits × 3 shard counts");
        assert!(out
            .bench
            .iter()
            .any(|r| r.experiment.ends_with("/b2") && r.dir_load_max_mean > 0.0));
    }

    #[test]
    fn exp_output_check_bookkeeping() {
        let mut o = ExpOutput::default();
        o.push_check("a", true);
        assert!(o.all_passed());
        o.push_check("b", false);
        assert!(!o.all_passed());
        let rendered = o.render_checks();
        assert!(rendered.contains("[PASS] a"));
        assert!(rendered.contains("[FAIL] b"));
    }

    /// A synthetic hit-ratio point: mean and count, `sum` derived.
    fn pt(secs: u64, mean: f64, count: u64) -> SeriesPoint {
        SeriesPoint {
            at: SimTime::from_secs(secs),
            sum: mean * count as f64,
            count,
        }
    }

    #[test]
    fn availability_summarises_a_dip_and_recovery() {
        let w = SimDuration::from_secs(10);
        let points = vec![
            pt(0, 0.2, 10), // warm-up: before settle, ignored
            pt(10, 0.9, 10),
            pt(20, 0.9, 30),  // pre-fault: count-weighted mean 0.9
            pt(30, 0.5, 10),  // fault
            pt(40, 0.3, 10),  // fault: the dip floor
            pt(50, 0.7, 10),  // post-heal, not yet recovered
            pt(60, 0.88, 10), // recovered (≥ 0.95 × 0.9 = 0.855)
            pt(70, 0.9, 10),
        ];
        let a = availability(
            &points,
            w,
            SimTime::from_secs(10),
            SimTime::from_secs(30),
            SimTime::from_secs(50),
        );
        assert!((a.pre_hit - 0.9).abs() < 1e-12);
        assert!((a.min_fault_hit - 0.3).abs() < 1e-12);
        assert!((a.dip_depth - 0.6).abs() < 1e-12);
        // The recovery window [60 s, 70 s) ends 20 s after the heal.
        assert_eq!(a.recovery_s, Some(20.0));
        assert!((a.recovered_hit - 0.89).abs() < 1e-12);
    }

    #[test]
    fn availability_reports_no_recovery_and_no_dip_evidence() {
        let w = SimDuration::from_secs(10);
        // The only bucket overlapping the fault window is empty, and
        // the post-heal ratio never gets back within 5% of pre-fault.
        let points = vec![pt(0, 0.8, 10), pt(10, 0.0, 0), pt(20, 0.5, 10)];
        let a = availability(
            &points,
            w,
            SimTime::ZERO,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert!((a.pre_hit - 0.8).abs() < 1e-12);
        assert!((a.min_fault_hit - 0.8).abs() < 1e-12, "no dip evidence");
        assert!(a.dip_depth.abs() < 1e-12);
        assert_eq!(a.recovery_s, None);
        assert!(a.recovered_hit.abs() < 1e-12);
    }

    #[test]
    fn chaos_partition_plane_spares_the_origin_localities() {
        let (start, heal) = chaos_fault_window();
        let plane = chaos_partition_plane(start, heal);
        let mid = SimTime::from_secs((start.as_secs() + heal.as_secs()) / 2);
        // 6 victims pairwise severed: C(6,2) = 15 cuts, all healed.
        assert!(plane.cuts(mid, Locality(0), Locality(3)));
        assert!(plane.cuts(mid, Locality(6), Locality(7)));
        assert!(!plane.cuts(heal, Locality(0), Locality(3)));
        // Origin-server localities 1 and 2 stay reachable throughout.
        for l in [0u16, 3, 4, 5, 6, 7] {
            assert!(!plane.cuts(mid, Locality(1), Locality(l)));
            assert!(!plane.cuts(mid, Locality(2), Locality(l)));
        }
    }

    #[test]
    #[ignore = "runs multi-thousand-node simulations; use --release -- --ignored"]
    fn chaos_cells_pass_their_checks() {
        let out = chaos(RunOpts::new().seed(42));
        assert!(out.all_passed(), "{}", out.render_checks());
    }
}
