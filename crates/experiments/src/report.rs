//! Plain-text table, CSV, benchmark-JSON and metrics-JSON rendering
//! for experiment output.

use std::fmt::Write as _;

use metrics::{Counter, Gauge, Hist, MetricSet, METRICS_SCHEMA_NAME};
use simnet::EventQueueKind;

/// A fixed-width text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", c, w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// One engine-performance measurement, emitted into
/// `BENCH_engine.json` so the perf trajectory of the simulator is
/// tracked from PR to PR.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// The experiment (or sweep cell) the measurement belongs to.
    pub experiment: String,
    /// Underlay nodes simulated.
    pub nodes: usize,
    /// Engine shards (worker threads) used.
    pub shards: usize,
    /// Event-queue backend the engine ran on.
    pub queue: EventQueueKind,
    /// Wall-clock seconds of the run (simulation only, build
    /// excluded).
    pub wall_s: f64,
    /// Events the engine dispatched.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// High-water mark of any shard's event-queue length.
    pub peak_queue_depth: usize,
    /// Simulated milliseconds covered by the run.
    pub sim_ms: u64,
    /// §5.3 PetalUp: per-instance directory query load imbalance
    /// (hottest instance over mean petal load) at the end of the run;
    /// 0.0 for records that predate the column or runs with no
    /// directory traffic.
    pub dir_load_max_mean: f64,
    /// Barrier rounds the sharded engine executed (0 on single-shard
    /// runs, which have no barrier, and for records predating the
    /// column). The adaptive lookahead matrix exists to shrink this:
    /// compare a cell against its `/glf` (global-floor) twin.
    pub epochs: u64,
    /// Logical cores of the host the record was measured on (0 for
    /// records predating the column). Throughput numbers are only
    /// comparable within one core count, so the regression gate keys
    /// its record matching on this field.
    pub cores: usize,
    /// Of the `epochs`, how many were fused solo rounds (a lone
    /// working shard running ahead while the rest skip the round); 0
    /// for single-shard runs and records predating the column.
    pub fused_rounds: u64,
    /// Mean over shards of the wall-clock seconds each shard thread
    /// spent waiting at the epoch barrier — the synchronization +
    /// load-imbalance overhead of the parallel run (0.0 on
    /// single-shard runs and for records predating the column).
    pub barrier_idle_mean_s: f64,
    /// Maximum over shards of the barrier-wait seconds (the
    /// worst-placed shard; 0.0 where `barrier_idle_mean_s` is 0.0).
    pub barrier_idle_max_s: f64,
    /// Peak resident-set size of the *process* in MB when the cell's
    /// run finished (Linux `VmHWM`; the high-water mark is monotone
    /// over a multi-cell process, so within one document a cell's
    /// value reflects the largest run up to and including it — the
    /// biggest cell's value is the one that matters). `None` for
    /// records predating the column (schemas v1–v5) and on platforms
    /// without `/proc`.
    pub peak_rss_mb: Option<f64>,
}

/// Schema tag of the `BENCH_engine.json` document. `v2` added the
/// per-record `queue` field (event-queue backend) and put the host
/// core count and default queue backend into `host`; `v3` added the
/// per-record `dir_load_max_mean` directory-load column (§5.3
/// PetalUp); `v4` added the per-record `epochs` barrier-round count
/// (adaptive lookahead matrix); `v5` added the per-record `cores`
/// host-core count (the gate's comparison key), the `fused_rounds`
/// count and the `barrier_idle_mean_s`/`barrier_idle_max_s`
/// per-shard barrier-wait breakdown (multi-core execution); `v6`
/// added the per-record `peak_rss_mb` process high-water RSS (`null`
/// where unavailable) so memory regressions show up in the bench
/// trajectory alongside throughput.
pub const BENCH_SCHEMA: &str = "flower-cdn/bench-engine/v6";

/// Render benchmark records as the `BENCH_engine.json` document
/// (hand-rolled: the build environment has no serde).
pub fn bench_json(host: &str, records: &[BenchRecord]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
    let _ = writeln!(out, "  \"host\": \"{}\",", esc(host));
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let rss = match r.peak_rss_mb {
            Some(mb) => format!("{mb:.1}"),
            None => "null".into(),
        };
        let _ = writeln!(
            out,
            "    {{\"experiment\": \"{}\", \"nodes\": {}, \"shards\": {}, \
             \"queue\": \"{}\", \
             \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"peak_queue_depth\": {}, \"sim_ms\": {}, \"dir_load_max_mean\": {:.4}, \
             \"epochs\": {}, \"cores\": {}, \"fused_rounds\": {}, \
             \"barrier_idle_mean_s\": {:.3}, \"barrier_idle_max_s\": {:.3}, \
             \"peak_rss_mb\": {}}}{}",
            esc(&r.experiment),
            r.nodes,
            r.shards,
            r.queue,
            r.wall_s,
            r.events,
            r.events_per_sec,
            r.peak_queue_depth,
            r.sim_ms,
            r.dir_load_max_mean,
            r.epochs,
            r.cores,
            r.fused_rounds,
            r.barrier_idle_mean_s,
            r.barrier_idle_max_s,
            rss,
            comma
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// One run's registry snapshot, emitted into `METRICS.json` so the CI
/// dashboard can attribute hot-path work per subsystem.
#[derive(Clone, Debug)]
pub struct MetricsRecord {
    /// The experiment (or sweep cell) the snapshot belongs to.
    pub experiment: String,
    /// Simulation-identity key: cells that simulate the same trace
    /// under different *execution* knobs (shard count, queue backend,
    /// lookahead mode) share this key, and the metrics gate asserts
    /// their `Scope::Sim` cells are identical.
    pub sim_key: String,
    /// Engine shards the run executed on.
    pub shards: usize,
    /// The merged registry cells at the end of the run.
    pub set: MetricSet,
}

/// Render registry snapshots as the versioned `METRICS.json` document
/// (schema [`METRICS_SCHEMA_NAME`]; hand-rolled like [`bench_json`]).
///
/// Every registered counter and gauge is emitted (zeros included, so
/// the gate can check cross-metric invariants without guessing about
/// absent cells); histograms carry their exact count/sum plus the
/// non-empty `[bucket index, count]` pairs.
pub fn metrics_json(host: &str, records: &[MetricsRecord]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA_NAME}\",");
    let _ = writeln!(out, "  \"host\": \"{}\",", esc(host));
    let _ = writeln!(out, "  \"records\": [");
    for (ri, r) in records.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"experiment\": \"{}\",", esc(&r.experiment));
        let _ = writeln!(out, "      \"sim_key\": \"{}\",", esc(&r.sim_key));
        let _ = writeln!(out, "      \"shards\": {},", r.shards);
        let _ = writeln!(out, "      \"counters\": [");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let d = c.def();
            let _ = writeln!(
                out,
                "        {{\"name\": \"{}\", \"subsystem\": \"{}\", \"scope\": \"{}\", \
                 \"unit\": \"{}\", \"value\": {}}}{}",
                d.name,
                d.subsystem.name(),
                d.scope.name(),
                d.unit,
                r.set.counter(*c),
                if i + 1 == Counter::ALL.len() { "" } else { "," }
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"gauges\": [");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            let d = g.def();
            let _ = writeln!(
                out,
                "        {{\"name\": \"{}\", \"subsystem\": \"{}\", \"scope\": \"{}\", \
                 \"unit\": \"{}\", \"value\": {}}}{}",
                d.name,
                d.subsystem.name(),
                d.scope.name(),
                d.unit,
                r.set.gauge(*g),
                if i + 1 == Gauge::ALL.len() { "" } else { "," }
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"hists\": [");
        for (i, h) in Hist::ALL.iter().enumerate() {
            let d = h.def();
            let hist = r.set.hist(*h);
            let buckets: Vec<String> = hist
                .nonzero()
                .map(|(idx, c)| format!("[{idx}, {c}]"))
                .collect();
            let _ = writeln!(
                out,
                "        {{\"name\": \"{}\", \"subsystem\": \"{}\", \"scope\": \"{}\", \
                 \"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{}",
                d.name,
                d.subsystem.name(),
                d.scope.name(),
                d.unit,
                hist.count(),
                hist.sum(),
                buckets.join(", "),
                if i + 1 == Hist::ALL.len() { "" } else { "," }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(
            out,
            "    }}{}",
            if ri + 1 == records.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("| a    | long-header |"), "got:\n{r}");
        assert!(r.contains("| xxxx | 1           |"), "got:\n{r}");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f3(0.8571), "0.857");
        assert_eq!(f1(74.26), "74.3");
        assert_eq!(pct(0.87), "87.0%");
    }

    #[test]
    fn bench_json_shape() {
        let records = vec![
            BenchRecord {
                experiment: "scale".into(),
                nodes: 20_000,
                shards: 2,
                queue: EventQueueKind::Calendar,
                wall_s: 1.5,
                events: 3_000_000,
                events_per_sec: 2_000_000.0,
                peak_queue_depth: 1234,
                sim_ms: 60_000,
                dir_load_max_mean: 1.92,
                epochs: 512,
                cores: 8,
                fused_rounds: 17,
                barrier_idle_mean_s: 0.25,
                barrier_idle_max_s: 0.5,
                peak_rss_mb: Some(812.3),
            },
            BenchRecord {
                experiment: "fig\"5".into(),
                nodes: 5000,
                shards: 1,
                queue: EventQueueKind::Heap,
                wall_s: 0.25,
                events: 100,
                events_per_sec: 400.0,
                peak_queue_depth: 7,
                sim_ms: 1000,
                dir_load_max_mean: 0.0,
                epochs: 0,
                cores: 1,
                fused_rounds: 0,
                barrier_idle_mean_s: 0.0,
                barrier_idle_max_s: 0.0,
                peak_rss_mb: None,
            },
        ];
        let json = bench_json("test-host", &records);
        assert!(json.contains("\"schema\": \"flower-cdn/bench-engine/v6\""));
        assert!(json.contains("\"peak_rss_mb\": 812.3"));
        assert!(json.contains("\"peak_rss_mb\": null"));
        assert!(json.contains("\"epochs\": 512"));
        assert!(json.contains("\"cores\": 8"));
        assert!(json.contains("\"fused_rounds\": 17"));
        assert!(json.contains("\"barrier_idle_mean_s\": 0.250"));
        assert!(json.contains("\"barrier_idle_max_s\": 0.500"));
        assert!(json.contains("\"dir_load_max_mean\": 1.9200"));
        assert!(json.contains("\"nodes\": 20000"));
        assert!(json.contains("\"queue\": \"calendar\""));
        assert!(json.contains("\"queue\": \"heap\""));
        assert!(json.contains("\"events_per_sec\": 2000000.0"));
        assert!(json.contains("fig\\\"5"), "quotes must be escaped");
        // Exactly one trailing comma between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn metrics_json_shape() {
        let mut set = MetricSet::new();
        set.add(Counter::EngineEvents, 1000);
        set.incr(Counter::DirProcess);
        set.gauge_max(Gauge::PeakQueueDepth, 77);
        set.record(Hist::GossipPayloadBytes, 129);
        let records = vec![MetricsRecord {
            experiment: "scale/20000n".into(),
            sim_key: "scale/20000n".into(),
            shards: 2,
            set,
        }];
        let json = metrics_json("test-host", &records);
        assert!(json.contains(&format!("\"schema\": \"{METRICS_SCHEMA_NAME}\"")));
        assert!(json.contains("\"experiment\": \"scale/20000n\""));
        assert!(json.contains("\"sim_key\": \"scale/20000n\""));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains(
            "{\"name\": \"engine_events_total\", \"subsystem\": \"engine\", \
             \"scope\": \"sim\", \"unit\": \"events\", \"value\": 1000}"
        ));
        // Zero cells are emitted too.
        assert!(json.contains("\"name\": \"gossip_exchanges\""));
        assert!(json.contains("\"value\": 0"));
        // The recorded histogram value lands in exactly one bucket.
        let idx = metrics::bucket_index(129);
        assert!(json.contains(&format!(
            "\"count\": 1, \"sum\": 129, \"buckets\": [[{idx}, 1]]"
        )));
        // Empty histograms emit an empty bucket list.
        assert!(json.contains("\"count\": 0, \"sum\": 0, \"buckets\": []"));
    }
}
