//! Plain-text table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", c, w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("| a    | long-header |"), "got:\n{r}");
        assert!(r.contains("| xxxx | 1           |"), "got:\n{r}");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f3(0.8571), "0.857");
        assert_eq!(f1(74.26), "74.3");
        assert_eq!(pct(0.87), "87.0%");
    }
}
