//! The numbers reported in §6 of the paper, for side-by-side
//! comparison with measured values.

/// One row of Table 2(a): varying `Lgossip` with `Tgossip = 30 min`,
/// `Vgossip = 50`.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// The swept parameter's display value.
    pub param: &'static str,
    /// Hit ratio after 24 h.
    pub hit_ratio: f64,
    /// Background bandwidth in bps per peer.
    pub background_bps: f64,
}

/// Table 2(a) — `Lgossip` ∈ {5, 10, 20}.
pub const TABLE_2A: [Table2Row; 3] = [
    Table2Row {
        param: "5",
        hit_ratio: 0.823,
        background_bps: 37.0,
    },
    Table2Row {
        param: "10",
        hit_ratio: 0.86,
        background_bps: 74.0,
    },
    Table2Row {
        param: "20",
        hit_ratio: 0.89,
        background_bps: 147.0,
    },
];

/// Table 2(b) — `Tgossip` ∈ {1 min, 30 min, 1 h}.
pub const TABLE_2B: [Table2Row; 3] = [
    Table2Row {
        param: "1min",
        hit_ratio: 0.94,
        background_bps: 2239.0,
    },
    Table2Row {
        param: "30min",
        hit_ratio: 0.86,
        background_bps: 74.0,
    },
    Table2Row {
        param: "1h",
        hit_ratio: 0.81,
        background_bps: 37.0,
    },
];

/// Table 2(c) — `Vgossip` ∈ {20, 50, 70}.
pub const TABLE_2C: [Table2Row; 3] = [
    Table2Row {
        param: "20",
        hit_ratio: 0.78,
        background_bps: 74.0,
    },
    Table2Row {
        param: "50",
        hit_ratio: 0.86,
        background_bps: 74.0,
    },
    Table2Row {
        param: "70",
        hit_ratio: 0.863,
        background_bps: 74.0,
    },
];

/// §6.2 (text): push thresholds {0.1, 0.5, 0.7} perform alike.
pub const PUSH_THRESHOLDS: [f64; 3] = [0.1, 0.5, 0.7];

/// Figure 5: background traffic stabilizes near this level (bps) after
/// about five hours with the chosen setting.
pub const FIG5_STABLE_BPS: f64 = 74.0;

/// Figure 6: after 24 h, Flower-CDN's hit ratio trails Squirrel's by
/// about this much (both converging to 1).
pub const FIG6_HIT_GAP: f64 = 0.13;

/// Figure 7(a): Flower-CDN's lookup latency stabilizes around this
/// value (ms) after the warm-up.
pub const FIG7_FLOWER_STABLE_LOOKUP_MS: f64 = 120.0;

/// Figure 7(b): fraction of Flower-CDN queries resolved within 150 ms.
pub const FIG7_FLOWER_LE_150MS: f64 = 0.87;

/// Figure 7(b): fraction of Squirrel queries taking more than 1050 ms.
pub const FIG7_SQUIRREL_GT_1050MS: f64 = 0.61;

/// Headline: lookup latency reduced by a factor of ~9 vs Squirrel.
pub const LOOKUP_SPEEDUP: f64 = 9.0;

/// Figure 8(a): Flower-CDN's transfer distance drops to about this
/// value (ms) after the warm-up.
pub const FIG8_FLOWER_STABLE_TRANSFER_MS: f64 = 80.0;

/// Figure 8(b): fraction of Flower-CDN queries served within 100 ms.
pub const FIG8_FLOWER_LE_100MS: f64 = 0.59;

/// Figure 8(b): fraction of Squirrel queries served within 100 ms.
pub const FIG8_SQUIRREL_LE_100MS: f64 = 0.17;

/// Headline: transfer distance reduced by a factor of ~2 vs Squirrel.
pub const TRANSFER_SPEEDUP: f64 = 2.0;
