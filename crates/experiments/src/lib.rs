//! # experiments — regenerating the paper's evaluation (§6)
//!
//! One module per concern:
//!
//! * [`paper`] — the numbers the paper reports (Tables 2(a–c),
//!   Figures 5–8), as constants for side-by-side printing;
//! * [`runner`] — configured runs of the Flower-CDN system and the
//!   Squirrel baseline at paper scale (optionally time-scaled down);
//! * [`report`] — fixed-width table, CSV and `BENCH_engine.json`
//!   rendering;
//! * [`gate`] — the CI bench-regression gate: parse two
//!   `BENCH_engine.json` documents and fail on a throughput drop;
//! * [`exps`] — one function per table/figure, each returning a
//!   printable report and checking the qualitative invariants
//!   (who wins, by what rough factor).
//!
//! The binary `flower-experiments` exposes each experiment as a
//! subcommand; `EXPERIMENTS.md` records a full paper-scale run.

pub mod exps;
pub mod gate;
pub mod paper;
pub mod report;
pub mod runner;

pub use flower_core::SubstrateKind;
pub use runner::{RunOpts, RunScale};
pub use simnet::{EventQueueKind, LookaheadKind};
