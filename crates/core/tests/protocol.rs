//! Protocol-level integration tests for the §5 administrative paths:
//! voluntary directory hand-off and locality migration, driven through
//! the engine as an operator would.

use flower_core::msg::FlowerMsg;
use flower_core::system::{FlowerSystem, SystemConfig};
use simnet::{Event, Locality, SimDuration, SimTime};
use workload::WebsiteId;

fn cfg(seed: u64) -> SystemConfig {
    SystemConfig {
        seed,
        ..SystemConfig::small_test()
    }
}

/// §5.2 voluntary leave: `AdminLeave` makes the directory transfer its
/// index and ring position to its youngest member via `DirHandoff`.
#[test]
fn admin_leave_hands_directory_to_a_member() {
    let c = cfg(41);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let old_dir = sys.initial_directory(ws, loc).unwrap();

    // Let the overlay form first.
    sys.run_until(SimTime::from_mins(4));
    let members_before = {
        let role = sys
            .engine()
            .node(old_dir)
            .dir_role()
            .expect("old dir active");
        assert!(
            role.dir.overlay_size() > 0,
            "overlay must have members for a hand-off"
        );
        role.dir.overlay_size()
    };

    let t = SimTime::from_mins(4) + SimDuration::from_secs(1);
    sys.engine_mut().schedule_at(
        t,
        old_dir,
        Event::Recv {
            from: old_dir,
            msg: FlowerMsg::AdminLeave,
        },
    );
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));

    // The old node stood down...
    assert!(
        !sys.engine().node(old_dir).is_directory(),
        "old directory must abdicate"
    );
    // ...and exactly one community member inherited the directory,
    // including the transferred index.
    let heirs: Vec<_> = sys
        .community(ws, loc)
        .iter()
        .copied()
        .filter(|n| {
            sys.engine()
                .node(*n)
                .dir_role()
                .map(|r| r.dir.website() == ws && r.dir.locality() == loc)
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(heirs.len(), 1, "exactly one heir expected, got {heirs:?}");
    let heir_role = sys.engine().node(heirs[0]).dir_role().unwrap();
    assert!(
        heir_role.dir.overlay_size() + 5 >= members_before,
        "hand-off must carry the index ({} vs {} before)",
        heir_role.dir.overlay_size(),
        members_before
    );
    // The system keeps resolving queries after the hand-off.
    let r = sys.report();
    assert!(
        r.resolved as f64 > r.submitted as f64 * 0.95,
        "{}/{}",
        r.resolved,
        r.submitted
    );
}

/// §5.2 + §5.3: when the primary of a *split* petal leaves
/// voluntarily, the heir inherits the live-instance count instead of
/// restarting at `live = 1` — restarting would orphan the active
/// siblings (still serving, never routed to, never merged away).
#[test]
fn dir_handoff_carries_live_instance_count() {
    let mut c = cfg(41);
    c.flower.instance_bits = 2; // deploy up to 4 instances per petal
    c.flower.petal_merge_floor = 0; // idle-load merges would re-fold the petal
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let old_dir = sys.initial_directory(ws, loc).unwrap();

    sys.run_until(SimTime::from_mins(4));
    // Stage a split petal at the primary (the §5.3 policy would get
    // here under load; staging it keeps the test fast and exact).
    sys.engine_mut()
        .node_mut(old_dir)
        .dir_role_mut()
        .expect("old dir active")
        .petal
        .live = 2;

    let t = SimTime::from_mins(4) + SimDuration::from_secs(1);
    sys.engine_mut().schedule_at(
        t,
        old_dir,
        Event::Recv {
            from: old_dir,
            msg: FlowerMsg::AdminLeave,
        },
    );
    sys.run_until(t + SimDuration::from_secs(10));

    assert!(!sys.engine().node(old_dir).is_directory());
    let heir_live: Vec<u32> = sys
        .community(ws, loc)
        .iter()
        .filter_map(|n| sys.engine().node(*n).dir_role())
        .filter(|r| r.dir.website() == ws && r.dir.locality() == loc)
        .map(|r| r.petal.live)
        .collect();
    assert_eq!(
        heir_live,
        vec![2],
        "the heir must continue the split petal at live = 2"
    );
    // The heir's *content* role adopts the carried count too: its own
    // pushes and §5.3 instance pinning must keep honouring the split
    // petal instead of falling back to single-instance routing until
    // the next admission re-announces it.
    let heir = sys
        .community(ws, loc)
        .iter()
        .copied()
        .find(|n| {
            sys.engine()
                .node(*n)
                .dir_role()
                .map(|r| r.dir.website() == ws && r.dir.locality() == loc)
                .unwrap_or(false)
        })
        .expect("heir found above");
    let cp = sys
        .engine()
        .node(heir)
        .content_role(ws)
        .expect("the heir keeps a content role");
    assert_eq!(
        cp.petal_live(),
        2,
        "the heir's content role must adopt the carried live count"
    );
}

/// §5.4 locality change: the peer leaves its overlays and rejoins (as
/// a new client) in the new locality on its next query.
#[test]
fn admin_change_locality_migrates_the_peer() {
    let c = cfg(43);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let old_loc = Locality(0);
    let new_loc = Locality(1);

    sys.run_until(SimTime::from_mins(4));
    // Pick a community member that actually joined.
    let mover = sys
        .community(ws, old_loc)
        .iter()
        .copied()
        .find(|n| sys.engine().node(*n).is_content_peer(ws))
        .expect("some member joined during warm-up");

    let t = SimTime::from_mins(4) + SimDuration::from_secs(1);
    sys.engine_mut().schedule_at(
        t,
        mover,
        Event::Recv {
            from: mover,
            msg: FlowerMsg::AdminChangeLocality { to: new_loc },
        },
    );
    sys.run_until(t + SimDuration::from_ms(1));
    assert!(
        !sys.engine().node(mover).is_content_peer(ws),
        "locality change must drop the old membership"
    );

    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));
    // If the workload made the mover query again, it re-joined — and
    // must have done so through the *new* locality's directory.
    if let Some(cp) = sys.engine().node(mover).content_role(ws) {
        let new_dir = sys.initial_directory(ws, new_loc).unwrap();
        assert_eq!(
            cp.directory(),
            Some(new_dir),
            "rejoined peer must belong to the new locality's overlay"
        );
    }
    let r = sys.report();
    assert!(r.resolved as f64 > r.submitted as f64 * 0.95);
}

/// The old overlay forgets a moved peer when gossiping with it
/// (`Moved` replies, §5.4).
#[test]
fn old_overlay_forgets_moved_peers() {
    let c = cfg(44);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let old_loc = Locality(0);
    sys.run_until(SimTime::from_mins(5));
    let mover = sys
        .community(ws, old_loc)
        .iter()
        .copied()
        .find(|n| sys.engine().node(*n).is_content_peer(ws))
        .expect("warm-up produced members");
    let t = SimTime::from_mins(5) + SimDuration::from_secs(1);
    sys.engine_mut().schedule_at(
        t,
        mover,
        Event::Recv {
            from: mover,
            msg: FlowerMsg::AdminChangeLocality { to: Locality(2) },
        },
    );
    // Run long enough for several gossip periods so contacts probe the
    // mover and receive `Moved`.
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));
    let mut still_known = 0;
    for n in sys.community(ws, old_loc) {
        if *n == mover {
            continue;
        }
        if let Some(cp) = sys.engine().node(*n).content_role(ws) {
            if cp.view().contains(mover) {
                still_known += 1;
            }
        }
    }
    // Gossip copies of the stale entry may still circulate, but peers
    // that contacted the mover directly must have dropped it; demand
    // that most of the overlay forgot it.
    let members: usize = sys
        .community(ws, old_loc)
        .iter()
        .filter(|n| sys.engine().node(**n).is_content_peer(ws))
        .count();
    assert!(
        still_known * 2 <= members,
        "{still_known}/{members} members still list the moved peer"
    );
}
