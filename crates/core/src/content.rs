//! The content peer (§4, Algorithms 4–5).
//!
//! A content peer `c_{ws,loc}` keeps the objects of `ws` it has
//! requested, and participates in its overlay's gossip:
//!
//! * **content-list** — the objects currently held, with a change log
//!   feeding the push protocol (Algorithm 5);
//! * **view** — a bounded partial view of the overlay
//!   ([`gossip::View`]), each entry carrying the contact's content
//!   summary, maintained by the active/passive exchange of
//!   Algorithm 4;
//! * **directory entry** — a special (address, age) entry for
//!   `d_{ws,loc}`, piggybacked on every gossip exchange so directory
//!   replacements propagate epidemically (§4.2.1, §5.2).
//!
//! Once a client has become a content peer, "any subsequent queries
//! use the content overlay instead of the D-ring" (§3.4): the local
//! search order is own content → view summaries → directory peer.

use std::collections::HashSet;

use bloom::{ContentSummary, MaintainedSummary, ObjectId};
use gossip::{ChangeKind, ChangeLog, PushPolicy, View, ViewEntry};
use rand::Rng;
use simnet::{Locality, NodeId};
use workload::WebsiteId;

use crate::cache::CacheManager;
use crate::msg::{GossipEntry, GossipPayload};

/// State of one content-peer role (one per website the node supports).
#[derive(Clone, Debug)]
pub struct ContentPeerState {
    website: WebsiteId,
    /// The overlay's locality: overlays are scoped by (website,
    /// locality), and gossip must never leak across localities.
    locality: Locality,
    content: HashSet<ObjectId>,
    cache: CacheManager,
    changes: ChangeLog<ObjectId>,
    view: View<NodeId, Option<ContentSummary>>,
    dir: Option<NodeId>,
    dir_age: u32,
    /// §5.3 PetalUp: how many directory instances the petal had live
    /// when our directory last told us (1 = base design). Lets the
    /// peer re-derive its hash-assigned instance and ignore gossip
    /// hints that point at a sibling instance.
    petal_live: u32,
    /// The peer's own content summary, *maintained* on every cache
    /// admit/evict/invalidate instead of rebuilt per gossip exchange
    /// (the PR 3 profile's `from_objects` hot path). Snapshots are
    /// bit-identical to a from-scratch build over `content`.
    summary: MaintainedSummary,
}

impl ContentPeerState {
    /// A fresh content peer for `(website, locality)` with view bound
    /// `v_gossip`.
    pub fn new(
        website: WebsiteId,
        locality: Locality,
        v_gossip: usize,
        summary_capacity: usize,
    ) -> Self {
        Self::with_cache(
            website,
            locality,
            v_gossip,
            summary_capacity,
            CacheManager::unbounded(),
        )
    }

    /// A content peer with a bounded cache (the §8 replacement-policy
    /// extension).
    pub fn with_cache(
        website: WebsiteId,
        locality: Locality,
        v_gossip: usize,
        summary_capacity: usize,
        cache: CacheManager,
    ) -> Self {
        ContentPeerState {
            website,
            locality,
            content: HashSet::new(),
            cache,
            changes: ChangeLog::new(),
            view: View::new(v_gossip),
            dir: None,
            dir_age: 0,
            petal_live: 1,
            summary: MaintainedSummary::empty(summary_capacity),
        }
    }

    /// The website this role serves.
    pub fn website(&self) -> WebsiteId {
        self.website
    }

    /// The locality of the overlay this role belongs to.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// Does this peer hold `o`?
    pub fn has(&self, o: ObjectId) -> bool {
        self.content.contains(&o)
    }

    /// Number of objects held.
    pub fn content_len(&self) -> usize {
        self.content.len()
    }

    /// Store an object (after being served); logged for the next
    /// push. A bounded cache may evict a victim first (also logged, so
    /// the directory learns via the next ∆list).
    pub fn insert_object(&mut self, o: ObjectId) {
        if self.content.contains(&o) {
            self.cache.touch(o);
            return;
        }
        if let Some(victim) = self.cache.evict_for_insert(self.content.len()) {
            if self.content.remove(&victim) {
                self.summary.remove(victim);
                self.changes.record(victim, ChangeKind::Removed);
            }
        }
        self.content.insert(o);
        self.summary.insert(o);
        self.cache.touch(o);
        self.changes.record(o, ChangeKind::Added);
    }

    /// Record a cache hit (replacement bookkeeping).
    pub fn touch_object(&mut self, o: ObjectId) {
        self.cache.touch(o);
    }

    /// Drop an object (external invalidation); logged for the next
    /// push.
    pub fn remove_object(&mut self, o: ObjectId) {
        if self.content.remove(&o) {
            self.summary.remove(o);
            self.cache.forget(o);
            self.changes.record(o, ChangeKind::Removed);
        }
    }

    /// The peer's *current* content summary: a snapshot of the
    /// maintained filter (cached between content mutations),
    /// bit-identical to what a from-scratch rebuild over the content
    /// set would produce.
    pub fn current_summary(&mut self) -> ContentSummary {
        self.summary.snapshot()
    }

    /// Whether the next [`ContentPeerState::current_summary`] call is
    /// served from the maintained filter's cache (cheap copy-on-write
    /// clone) instead of rebuilding the bit projection.
    pub fn summary_is_cached(&self) -> bool {
        self.summary.is_cached()
    }

    /// Pending unreported changes.
    pub fn pending_changes(&self) -> usize {
        self.changes.count()
    }

    /// Algorithm 5's gate: extract the ∆list if the push threshold is
    /// reached. Also resets the directory entry age ("the pushing peer
    /// resets to 0 its age field of d"), performed by the caller via
    /// [`ContentPeerState::reset_dir_age`] after actually sending.
    pub fn take_push(&mut self, policy: PushPolicy) -> Option<(Vec<ObjectId>, Vec<ObjectId>)> {
        if !policy.should_push(self.changes.count(), self.content.len()) {
            return None;
        }
        let delta = self.changes.extract();
        Some((delta.added, delta.removed))
    }

    // ---- directory tracking (§4.2.1) ----

    /// The directory peer this content peer currently believes in.
    pub fn directory(&self) -> Option<NodeId> {
        self.dir
    }

    /// Age of the directory entry (ticks since last confirmation).
    pub fn dir_age(&self) -> u32 {
        self.dir_age
    }

    /// Adopt a directory peer (join, gossip hint, replacement).
    pub fn set_directory(&mut self, dir: NodeId) {
        self.dir = Some(dir);
        self.dir_age = 0;
    }

    /// Reset the directory age (after a push or keepalive).
    pub fn reset_dir_age(&mut self) {
        self.dir_age = 0;
    }

    /// Forget a dead directory (§5.2, detection).
    pub fn clear_directory(&mut self) {
        self.dir = None;
        self.dir_age = 0;
    }

    /// The live-instance count of our petal as last announced (§5.3).
    pub fn petal_live(&self) -> u32 {
        self.petal_live
    }

    /// Adopt a petal live-instance count from an admission (§5.3).
    pub fn set_petal_live(&mut self, live: u32) {
        self.petal_live = live.max(1);
    }

    /// §5.3 re-pointing: the peer was moved to a different directory
    /// instance; flag every held object as an unreported addition so
    /// the next push rebuilds its entry at the new directory in full —
    /// the same "gradually builds its directory upon receiving push
    /// messages" mechanism §5.2 replacements rely on, just not gradual.
    pub fn mark_all_dirty(&mut self) {
        let mut held: Vec<ObjectId> = self.content.iter().copied().collect();
        // Deterministic ∆list order (the content set iterates in hash
        // order, which is not a protocol-visible order).
        held.sort_unstable();
        for o in held {
            self.changes.record(o, ChangeKind::Added);
        }
    }

    // ---- view management (Algorithm 4) ----

    /// Read-only access to the view.
    pub fn view(&self) -> &View<NodeId, Option<ContentSummary>> {
        &self.view
    }

    /// Seed the view with contacts of unknown content (admission from
    /// the directory index or a serving peer's view subset): "F's
    /// initial view will not have content summaries but will
    /// progressively fill them via gossip".
    pub fn seed_view(&mut self, peers: &[NodeId], myself: NodeId) {
        for p in peers {
            if *p != myself && !self.view.contains(*p) {
                self.view.insert_fresh(*p, None);
            }
        }
    }

    /// The gossip period elapsed: age the view and the directory
    /// entry, and pick the exchange partner (`select_oldest`).
    pub fn gossip_tick(&mut self) -> Option<NodeId> {
        self.view.increment_ages();
        self.dir_age = self.dir_age.saturating_add(1);
        self.view.select_oldest().map(|e| e.peer)
    }

    /// Build the gossip message content: own current summary, a random
    /// `Lgossip`-subset of the view, and the directory hint. `&mut`
    /// only for the summary-snapshot cache.
    pub fn build_gossip<R: Rng>(&mut self, rng: &mut R, l_gossip: usize) -> GossipPayload {
        let subset = self
            .view
            .select_subset(rng, l_gossip)
            .into_iter()
            .map(|e| GossipEntry {
                peer: e.peer,
                age: e.age,
                summary: e.data,
            })
            .collect();
        GossipPayload {
            website: self.website,
            locality: self.locality,
            summary: self.current_summary(),
            subset,
            dir_hint: self.dir.map(|d| (d, self.dir_age)),
        }
    }

    /// Merge a received gossip payload (both the active and passive
    /// sides end with this): refresh the partner's entry with its
    /// fresh summary, fold the subset, adopt a fresher directory hint.
    ///
    /// `max_hint_age` bounds how stale a directory hint may be and
    /// still be adopted (hints about a dead directory keep circulating
    /// for a while; without the bound they would resurrect it
    /// endlessly and §5.2 replacement could never start).
    pub fn absorb_gossip(
        &mut self,
        myself: NodeId,
        from: NodeId,
        payload: GossipPayload,
        max_hint_age: u32,
    ) {
        let partner = ViewEntry::fresh(from, Some(payload.summary));
        let subset = payload
            .subset
            .into_iter()
            .map(|e| ViewEntry {
                peer: e.peer,
                age: e.age,
                data: e.summary,
            })
            .collect();
        self.view.merge(myself, partner, subset);
        if let Some((dir, age)) = payload.dir_hint {
            if age >= max_hint_age {
                return;
            }
            // Adopt strictly fresher knowledge about the directory, or
            // any (sufficiently fresh) directory if we lost ours.
            if self.dir.is_none() || (Some(dir) != self.dir && age < self.dir_age) {
                self.dir = Some(dir);
                self.dir_age = age;
            } else if Some(dir) == self.dir {
                self.dir_age = self.dir_age.min(age);
            }
        }
    }

    /// View contacts whose summary suggests they hold `o`, youngest
    /// first, excluding already-tried peers.
    pub fn summary_candidates(&self, o: ObjectId, tried: &[NodeId]) -> Vec<NodeId> {
        let mut c: Vec<(u32, NodeId)> = self
            .view
            .iter()
            .filter(|e| !tried.contains(&e.peer))
            .filter(|e| e.data.as_ref().is_some_and(|s| s.might_contain(o)))
            .map(|e| (e.age, e.peer))
            .collect();
        c.sort_unstable_by_key(|(age, p)| (*age, p.0));
        c.into_iter().map(|(_, p)| p).collect()
    }

    /// Drop a dead or departed contact (§5.4: peers that changed
    /// locality "are removed from contacts as with dead peers").
    pub fn forget_peer(&mut self, peer: NodeId) {
        self.view.remove(peer);
        if self.dir == Some(peer) {
            self.clear_directory();
        }
    }

    /// All objects held (for directory hand-off seeding and tests).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.content.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ME: NodeId = NodeId(0);
    const O1: ObjectId = ObjectId(101);
    const O2: ObjectId = ObjectId(202);

    fn peer() -> ContentPeerState {
        ContentPeerState::new(WebsiteId(1), Locality(0), 10, 100)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn content_and_changes() {
        let mut c = peer();
        c.insert_object(O1);
        c.insert_object(O1); // duplicate: no double change
        assert!(c.has(O1));
        assert_eq!(c.pending_changes(), 1);
        c.remove_object(O1);
        assert_eq!(c.pending_changes(), 0, "add+remove cancels");
        assert!(!c.has(O1));
    }

    #[test]
    fn push_respects_threshold() {
        let mut c = peer();
        // 10 objects held, 1 change → 10% with threshold 0.5: no push.
        for i in 0..10u64 {
            c.insert_object(ObjectId(i));
        }
        let _ = c.take_push(PushPolicy::new(0.0001)); // drain initial adds
        c.insert_object(ObjectId(100));
        assert!(c.take_push(PushPolicy::new(0.5)).is_none());
        // threshold 0.05 → push fires with the single pending change.
        let (added, removed) = c.take_push(PushPolicy::new(0.05)).expect("push due");
        assert_eq!(added, vec![ObjectId(100)]);
        assert!(removed.is_empty());
        assert_eq!(c.pending_changes(), 0);
    }

    #[test]
    fn summary_reflects_current_content() {
        let mut c = peer();
        c.insert_object(O1);
        assert!(c.current_summary().might_contain(O1));
        c.remove_object(O1);
        assert!(
            !c.current_summary().might_contain(O1),
            "summary is rebuilt, not stale"
        );
    }

    #[test]
    fn gossip_tick_ages_and_selects_oldest() {
        let mut c = peer();
        c.seed_view(&[NodeId(1), NodeId(2)], ME);
        assert!(c.gossip_tick().is_some());
        // Refresh 2 via gossip; 1 becomes the oldest.
        c.absorb_gossip(
            ME,
            NodeId(2),
            GossipPayload {
                website: WebsiteId(1),
                locality: Locality(0),
                summary: ContentSummary::empty(100),
                subset: vec![],
                dir_hint: None,
            },
            10,
        );
        assert_eq!(c.gossip_tick(), Some(NodeId(1)));
    }

    #[test]
    fn absorb_gossip_fills_summaries() {
        let mut c = peer();
        let mut s = ContentSummary::empty(100);
        s.insert(O1);
        c.absorb_gossip(
            ME,
            NodeId(5),
            GossipPayload {
                website: WebsiteId(1),
                locality: Locality(0),
                summary: s,
                subset: vec![GossipEntry {
                    peer: NodeId(6),
                    age: 2,
                    summary: None,
                }],
                dir_hint: None,
            },
            10,
        );
        assert_eq!(c.summary_candidates(O1, &[]), vec![NodeId(5)]);
        assert!(c.view().contains(NodeId(6)));
        // Tried peers are excluded.
        assert!(c.summary_candidates(O1, &[NodeId(5)]).is_empty());
    }

    #[test]
    fn self_never_enters_view() {
        let mut c = peer();
        c.seed_view(&[ME, NodeId(1)], ME);
        assert!(!c.view().contains(ME));
        c.absorb_gossip(
            ME,
            NodeId(1),
            GossipPayload {
                website: WebsiteId(1),
                locality: Locality(0),
                summary: ContentSummary::empty(100),
                subset: vec![GossipEntry {
                    peer: ME,
                    age: 0,
                    summary: None,
                }],
                dir_hint: None,
            },
            10,
        );
        assert!(!c.view().contains(ME));
    }

    #[test]
    fn dir_hint_adoption_rules() {
        let mut c = peer();
        c.set_directory(NodeId(9));
        // Age our knowledge by 3 ticks.
        for _ in 0..3 {
            c.gossip_tick();
        }
        assert_eq!(c.dir_age(), 3);
        // A staler hint about another node is ignored.
        let hint = |dir: u32, age: u32| GossipPayload {
            website: WebsiteId(1),
            locality: Locality(0),
            summary: ContentSummary::empty(100),
            subset: vec![],
            dir_hint: Some((NodeId(dir), age)),
        };
        c.absorb_gossip(ME, NodeId(1), hint(8, 5), 10);
        assert_eq!(c.directory(), Some(NodeId(9)));
        // A fresher hint about a new directory wins (§5.2 epidemic
        // propagation of the replacement).
        c.absorb_gossip(ME, NodeId(1), hint(8, 1), 10);
        assert_eq!(c.directory(), Some(NodeId(8)));
        assert_eq!(c.dir_age(), 1);
        // Same-directory hints only lower the age.
        c.absorb_gossip(ME, NodeId(2), hint(8, 0), 10);
        assert_eq!(c.dir_age(), 0);
        // Having lost the directory, any hint is adopted.
        c.clear_directory();
        c.absorb_gossip(ME, NodeId(3), hint(7, 9), 10);
        assert_eq!(c.directory(), Some(NodeId(7)));
    }

    #[test]
    fn gossip_payload_shape() {
        let mut c = peer();
        c.set_directory(NodeId(9));
        c.seed_view(&(1..=8).map(NodeId).collect::<Vec<_>>(), ME);
        let p = c.build_gossip(&mut rng(), 4);
        assert_eq!(p.subset.len(), 4);
        assert_eq!(p.dir_hint, Some((NodeId(9), 0)));
        assert_eq!(p.website, WebsiteId(1));
    }

    #[test]
    fn forget_peer_clears_view_and_dir() {
        let mut c = peer();
        c.seed_view(&[NodeId(1)], ME);
        c.set_directory(NodeId(1));
        c.forget_peer(NodeId(1));
        assert!(!c.view().contains(NodeId(1)));
        assert_eq!(c.directory(), None);
    }

    #[test]
    fn candidates_sorted_young_first() {
        let mut c = peer();
        let with_obj = |age: u32, p: u32| {
            let mut s = ContentSummary::empty(100);
            s.insert(O2);
            GossipEntry {
                peer: NodeId(p),
                age,
                summary: Some(s),
            }
        };
        c.absorb_gossip(
            ME,
            NodeId(50),
            GossipPayload {
                website: WebsiteId(1),
                locality: Locality(0),
                summary: ContentSummary::empty(100),
                subset: vec![with_obj(5, 1), with_obj(1, 2), with_obj(3, 3)],
                dir_hint: None,
            },
            10,
        );
        assert_eq!(
            c.summary_candidates(O2, &[]),
            vec![NodeId(2), NodeId(3), NodeId(1)]
        );
    }
}
