//! D-ring key management (§3.1, Figures 2–3) and the §5.3 scale-up
//! extension.
//!
//! A D-ring peer identifier packs, from most to least significant:
//!
//! ```text
//! | website ID (m2 bits) | locality ID (m1 bits) | instance (b bits) |
//! ```
//!
//! * the **website ID** is `hash(ws)` truncated to `m2 = m − m1 − b`
//!   bits, so all directory peers of a website share a prefix and are
//!   therefore *neighbours on the ring* — the property Algorithm 2
//!   and the directory-summary design rely on;
//! * the **locality ID** enumerates the `k` localities, so the
//!   directory peers of one website appear in locality order
//!   (Figure 3);
//! * the **instance** bits implement §5.3's extension ("the peer ID
//!   should be extended by adding b extra bits at the end") allowing
//!   several directory peers — each with its own content overlay —
//!   per (website, locality). The paper's base design has `b = 0`.
//!
//! A query for website `ws` from locality `loc` is routed with the key
//! `key(ws, loc)` instead of an object key: the DHT then lands exactly
//! on `d_{ws,loc}` when it is alive, and near it otherwise.

use chord::{hash64, ChordId};
use simnet::Locality;
use workload::WebsiteId;

/// The bit layout of D-ring identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyScheme {
    /// Locality bits `m1`.
    pub locality_bits: u32,
    /// Instance bits `b` (§5.3 extension; 0 in the base design).
    pub instance_bits: u32,
}

impl KeyScheme {
    /// A scheme with `m1` locality bits and `b` instance bits.
    pub fn new(locality_bits: u32, instance_bits: u32) -> Self {
        assert!(locality_bits >= 1, "need at least one locality bit");
        assert!(
            locality_bits + instance_bits < ChordId::BITS - 8,
            "website segment too small"
        );
        KeyScheme {
            locality_bits,
            instance_bits,
        }
    }

    /// Website bits `m2 = m − m1 − b`.
    pub fn website_bits(&self) -> u32 {
        ChordId::BITS - self.locality_bits - self.instance_bits
    }

    /// Number of representable localities.
    pub fn max_localities(&self) -> usize {
        1usize << self.locality_bits
    }

    /// Number of directory instances per (website, locality)
    /// (1 in the base design).
    pub fn instances(&self) -> usize {
        1usize << self.instance_bits
    }

    /// The website segment of the identifier space for `ws`:
    /// `hash(ws)` truncated to `m2` bits (the paper's `hash(ws)` into
    /// the subspace `S'`).
    pub fn website_segment(&self, ws: WebsiteId) -> u64 {
        hash64((ws.0 as u64) ^ 0x5EED_F10E_1200) >> (self.locality_bits + self.instance_bits)
    }

    /// The D-ring peer ID / search key for `d_{ws,loc}` (base design,
    /// instance 0).
    pub fn key(&self, ws: WebsiteId, loc: Locality) -> ChordId {
        self.key_with_instance(ws, loc, 0)
    }

    /// The §5.3 extended key for a specific directory instance.
    pub fn key_with_instance(&self, ws: WebsiteId, loc: Locality, instance: u32) -> ChordId {
        assert!(
            (loc.idx()) < self.max_localities(),
            "locality does not fit m1 bits"
        );
        assert!(
            (instance as usize) < self.instances(),
            "instance does not fit b bits"
        );
        let w = self.website_segment(ws);
        ChordId(
            (w << (self.locality_bits + self.instance_bits))
                | ((loc.0 as u64) << self.instance_bits)
                | instance as u64,
        )
    }

    /// Extract the website segment of an identifier.
    pub fn website_of(&self, id: ChordId) -> u64 {
        id.0 >> (self.locality_bits + self.instance_bits)
    }

    /// Extract the locality of an identifier.
    pub fn locality_of(&self, id: ChordId) -> Locality {
        Locality(((id.0 >> self.instance_bits) & ((1 << self.locality_bits) - 1)) as u16)
    }

    /// Extract the instance index of an identifier.
    pub fn instance_of(&self, id: ChordId) -> u32 {
        (id.0 & ((1 << self.instance_bits) - 1)) as u32
    }

    /// Do two identifiers belong to the same website? (The check of
    /// Algorithm 2.)
    pub fn same_website(&self, a: ChordId, b: ChordId) -> bool {
        self.website_of(a) == self.website_of(b)
    }
}

impl Default for KeyScheme {
    fn default() -> Self {
        KeyScheme::new(8, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> KeyScheme {
        KeyScheme::new(8, 0)
    }

    #[test]
    fn roundtrip_website_and_locality() {
        let s = scheme();
        for ws in [0u16, 1, 42, 99] {
            for loc in [0u16, 1, 5] {
                let key = s.key(WebsiteId(ws), Locality(loc));
                assert_eq!(s.locality_of(key), Locality(loc));
                assert_eq!(s.website_of(key), s.website_segment(WebsiteId(ws)));
            }
        }
    }

    #[test]
    fn same_website_keys_are_ring_neighbours() {
        // Directory peers of one website have consecutive ids
        // (Figure 3: "they have successive peer IDs").
        let s = scheme();
        let ws = WebsiteId(7);
        let k0 = s.key(ws, Locality(0));
        let k1 = s.key(ws, Locality(1));
        let k5 = s.key(ws, Locality(5));
        assert_eq!(k1.0 - k0.0, 1);
        assert_eq!(k5.0 - k0.0, 5);
        assert!(s.same_website(k0, k5));
    }

    #[test]
    fn different_websites_differ() {
        let s = scheme();
        let a = s.key(WebsiteId(1), Locality(0));
        let b = s.key(WebsiteId(2), Locality(0));
        assert!(!s.same_website(a, b));
        assert_ne!(a, b);
    }

    #[test]
    fn website_segments_collision_free_for_paper_scale() {
        let s = scheme();
        let mut seen = std::collections::HashSet::new();
        for ws in 0..100u16 {
            assert!(
                seen.insert(s.website_segment(WebsiteId(ws))),
                "website hash collision at {ws} (56-bit space)"
            );
        }
    }

    #[test]
    fn scale_up_extension_keys() {
        // §5.3: b = 2 → 4 directory peers per (website, locality),
        // all sharing the website+locality prefix.
        let s = KeyScheme::new(8, 2);
        let ws = WebsiteId(3);
        let loc = Locality(4);
        let keys: Vec<ChordId> = (0..4).map(|i| s.key_with_instance(ws, loc, i)).collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.locality_of(*k), loc);
            assert_eq!(s.instance_of(*k), i as u32);
            assert!(s.same_website(keys[0], *k));
        }
        // Consecutive instances are consecutive ids.
        assert_eq!(keys[1].0 - keys[0].0, 1);
        // Next locality starts right after the last instance.
        let next_loc = s.key_with_instance(ws, Locality(5), 0);
        assert_eq!(next_loc.0 - keys[3].0, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit m1")]
    fn oversized_locality_rejected() {
        let s = KeyScheme::new(2, 0);
        let _ = s.key(WebsiteId(0), Locality(4));
    }

    #[test]
    #[should_panic(expected = "does not fit b")]
    fn oversized_instance_rejected() {
        let s = KeyScheme::new(8, 1);
        let _ = s.key_with_instance(WebsiteId(0), Locality(0), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Key packing round-trips locality and instance for any
        /// scheme geometry.
        #[test]
        fn pack_unpack_roundtrip(
            m1 in 1u32..12,
            b in 0u32..4,
            ws in 0u16..1000,
            loc_raw in 0u16..4096,
            inst_raw in 0u32..16,
        ) {
            let s = KeyScheme::new(m1, b);
            let loc = Locality(loc_raw % s.max_localities() as u16);
            let inst = inst_raw % s.instances() as u32;
            let key = s.key_with_instance(WebsiteId(ws), loc, inst);
            prop_assert_eq!(s.locality_of(key), loc);
            prop_assert_eq!(s.instance_of(key), inst);
            prop_assert_eq!(s.website_of(key), s.website_segment(WebsiteId(ws)));
        }

        /// All keys of one website form one contiguous id block of
        /// size k·instances — they are mutual ring neighbours.
        #[test]
        fn website_block_contiguous(m1 in 1u32..10, b in 0u32..3, ws in 0u16..500) {
            let s = KeyScheme::new(m1, b);
            let k = s.max_localities().min(8);
            let mut prev: Option<u64> = None;
            for loc in 0..k as u16 {
                for inst in 0..s.instances().min(4) as u32 {
                    let key = s.key_with_instance(WebsiteId(ws), Locality(loc), inst).0;
                    if let Some(p) = prev {
                        if inst == 0 && s.instances() > 4 {
                            // skipped instances; only check monotonicity
                            prop_assert!(key > p);
                        } else {
                            prop_assert!(key > p);
                        }
                    }
                    prev = Some(key);
                }
            }
        }
    }
}
