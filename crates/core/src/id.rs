//! D-ring key management (§3.1, Figures 2–3) and the §5.3 scale-up
//! extension.
//!
//! A D-ring peer identifier packs, from most to least significant:
//!
//! ```text
//! | website ID (m2 bits) | locality ID (m1 bits) | instance (b bits) |
//! ```
//!
//! * the **website ID** is `hash(ws)` truncated to `m2 = m − m1 − b`
//!   bits, so all directory peers of a website share a prefix and are
//!   therefore *neighbours on the ring* — the property Algorithm 2
//!   and the directory-summary design rely on;
//! * the **locality ID** enumerates the `k` localities, so the
//!   directory peers of one website appear in locality order
//!   (Figure 3);
//! * the **instance** bits implement §5.3's extension ("the peer ID
//!   should be extended by adding b extra bits at the end") allowing
//!   several directory peers — each with its own content overlay —
//!   per (website, locality). The paper's base design has `b = 0`.
//!
//! A query for website `ws` from locality `loc` is routed with the key
//! `key(ws, loc)` instead of an object key: the DHT then lands exactly
//! on `d_{ws,loc}` when it is alive, and near it otherwise.

use chord::{hash64, ChordId};
use simnet::{Locality, NodeId};
use workload::WebsiteId;

/// The bit layout of D-ring identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyScheme {
    /// Locality bits `m1`.
    pub locality_bits: u32,
    /// Instance bits `b` (§5.3 extension; 0 in the base design).
    pub instance_bits: u32,
}

impl KeyScheme {
    /// Minimum website-segment width `m2`: below 9 bits the website
    /// hashes of even the paper's 100-website catalog start to
    /// collide.
    pub const MIN_WEBSITE_BITS: u32 = 9;

    /// The authoritative geometry check: `m1 ≥ 1` and
    /// `m2 = m − m1 − b ≥ MIN_WEBSITE_BITS`. [`KeyScheme::new`] and
    /// [`crate::config::FlowerConfig::validate`] both defer to this,
    /// so the two paths can never disagree about the boundary.
    pub fn try_new(locality_bits: u32, instance_bits: u32) -> Result<Self, String> {
        if locality_bits < 1 {
            return Err("need at least one locality bit".into());
        }
        if locality_bits
            .checked_add(instance_bits)
            .is_none_or(|sum| sum > ChordId::BITS - Self::MIN_WEBSITE_BITS)
        {
            return Err(format!(
                "locality ({locality_bits}) + instance ({instance_bits}) bits leave fewer \
                 than {} website bits",
                Self::MIN_WEBSITE_BITS
            ));
        }
        Ok(KeyScheme {
            locality_bits,
            instance_bits,
        })
    }

    /// A scheme with `m1` locality bits and `b` instance bits. Panics
    /// on an invalid geometry; validated configuration paths use
    /// [`KeyScheme::try_new`] and surface the error instead.
    pub fn new(locality_bits: u32, instance_bits: u32) -> Self {
        Self::try_new(locality_bits, instance_bits).expect("invalid key scheme")
    }

    /// Website bits `m2 = m − m1 − b`.
    pub fn website_bits(&self) -> u32 {
        ChordId::BITS - self.locality_bits - self.instance_bits
    }

    /// Number of representable localities.
    pub fn max_localities(&self) -> usize {
        1usize << self.locality_bits
    }

    /// Number of directory instances per (website, locality)
    /// (1 in the base design).
    pub fn instances(&self) -> usize {
        1usize << self.instance_bits
    }

    /// The website segment of the identifier space for `ws`:
    /// `hash(ws)` truncated to `m2` bits (the paper's `hash(ws)` into
    /// the subspace `S'`).
    pub fn website_segment(&self, ws: WebsiteId) -> u64 {
        hash64((ws.0 as u64) ^ 0x5EED_F10E_1200) >> (self.locality_bits + self.instance_bits)
    }

    /// The D-ring peer ID / search key for `d_{ws,loc}` (base design,
    /// instance 0).
    pub fn key(&self, ws: WebsiteId, loc: Locality) -> ChordId {
        self.key_with_instance(ws, loc, 0)
    }

    /// The §5.3 extended key for a specific directory instance.
    pub fn key_with_instance(&self, ws: WebsiteId, loc: Locality, instance: u32) -> ChordId {
        assert!(
            (loc.idx()) < self.max_localities(),
            "locality does not fit m1 bits"
        );
        assert!(
            (instance as usize) < self.instances(),
            "instance does not fit b bits"
        );
        let w = self.website_segment(ws);
        ChordId(
            (w << (self.locality_bits + self.instance_bits))
                | ((loc.0 as u64) << self.instance_bits)
                | instance as u64,
        )
    }

    /// Extract the website segment of an identifier.
    pub fn website_of(&self, id: ChordId) -> u64 {
        id.0 >> (self.locality_bits + self.instance_bits)
    }

    /// Extract the locality of an identifier.
    pub fn locality_of(&self, id: ChordId) -> Locality {
        Locality(((id.0 >> self.instance_bits) & ((1 << self.locality_bits) - 1)) as u16)
    }

    /// Extract the instance index of an identifier.
    pub fn instance_of(&self, id: ChordId) -> u32 {
        (id.0 & ((1 << self.instance_bits) - 1)) as u32
    }

    /// Do two identifiers belong to the same website? (The check of
    /// Algorithm 2.)
    pub fn same_website(&self, a: ChordId, b: ChordId) -> bool {
        self.website_of(a) == self.website_of(b)
    }
}

impl Default for KeyScheme {
    fn default() -> Self {
        KeyScheme::new(8, 0)
    }
}

/// §5.3 instance selection: the directory instance responsible for
/// `client` when `live` instances of a petal are active.
///
/// The choice is a pure function of the client's node id (no protocol
/// state, no RNG), so every node — and every engine shard layout —
/// computes the same assignment. Because live instance counts are
/// powers of two, the assignments *nest*: for `live' | live`,
/// `instance_for(c, live') == instance_for(c, live) % live'`, which is
/// what lets petal splits and merges move only the members of the
/// instances that actually changed hands.
pub fn instance_for(client: NodeId, live: u32) -> u32 {
    if live <= 1 {
        return 0;
    }
    debug_assert!(live.is_power_of_two(), "live instance counts double");
    (hash64(client.0 as u64 ^ 0x9E7A_1BEE_5EED) % live as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> KeyScheme {
        KeyScheme::new(8, 0)
    }

    #[test]
    fn roundtrip_website_and_locality() {
        let s = scheme();
        for ws in [0u16, 1, 42, 99] {
            for loc in [0u16, 1, 5] {
                let key = s.key(WebsiteId(ws), Locality(loc));
                assert_eq!(s.locality_of(key), Locality(loc));
                assert_eq!(s.website_of(key), s.website_segment(WebsiteId(ws)));
            }
        }
    }

    #[test]
    fn same_website_keys_are_ring_neighbours() {
        // Directory peers of one website have consecutive ids
        // (Figure 3: "they have successive peer IDs").
        let s = scheme();
        let ws = WebsiteId(7);
        let k0 = s.key(ws, Locality(0));
        let k1 = s.key(ws, Locality(1));
        let k5 = s.key(ws, Locality(5));
        assert_eq!(k1.0 - k0.0, 1);
        assert_eq!(k5.0 - k0.0, 5);
        assert!(s.same_website(k0, k5));
    }

    #[test]
    fn different_websites_differ() {
        let s = scheme();
        let a = s.key(WebsiteId(1), Locality(0));
        let b = s.key(WebsiteId(2), Locality(0));
        assert!(!s.same_website(a, b));
        assert_ne!(a, b);
    }

    #[test]
    fn website_segments_collision_free_for_paper_scale() {
        let s = scheme();
        let mut seen = std::collections::HashSet::new();
        for ws in 0..100u16 {
            assert!(
                seen.insert(s.website_segment(WebsiteId(ws))),
                "website hash collision at {ws} (56-bit space)"
            );
        }
    }

    #[test]
    fn scale_up_extension_keys() {
        // §5.3: b = 2 → 4 directory peers per (website, locality),
        // all sharing the website+locality prefix.
        let s = KeyScheme::new(8, 2);
        let ws = WebsiteId(3);
        let loc = Locality(4);
        let keys: Vec<ChordId> = (0..4).map(|i| s.key_with_instance(ws, loc, i)).collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.locality_of(*k), loc);
            assert_eq!(s.instance_of(*k), i as u32);
            assert!(s.same_website(keys[0], *k));
        }
        // Consecutive instances are consecutive ids.
        assert_eq!(keys[1].0 - keys[0].0, 1);
        // Next locality starts right after the last instance.
        let next_loc = s.key_with_instance(ws, Locality(5), 0);
        assert_eq!(next_loc.0 - keys[3].0, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit m1")]
    fn oversized_locality_rejected() {
        let s = KeyScheme::new(2, 0);
        let _ = s.key(WebsiteId(0), Locality(4));
    }

    #[test]
    #[should_panic(expected = "does not fit b")]
    fn oversized_instance_rejected() {
        let s = KeyScheme::new(8, 1);
        let _ = s.key_with_instance(WebsiteId(0), Locality(0), 2);
    }

    #[test]
    fn try_new_is_the_authoritative_bound() {
        // The widest legal geometry: m2 = MIN_WEBSITE_BITS exactly.
        let widest = ChordId::BITS - KeyScheme::MIN_WEBSITE_BITS;
        assert!(KeyScheme::try_new(8, widest - 8).is_ok());
        // One bit more is an error — from *both* construction paths.
        assert!(KeyScheme::try_new(8, widest - 7).is_err());
        assert!(KeyScheme::try_new(0, 0).is_err());
        // Overflow-proof.
        assert!(KeyScheme::try_new(8, u32::MAX).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid key scheme")]
    fn new_panics_where_try_new_errors() {
        let _ = KeyScheme::new(8, ChordId::BITS - KeyScheme::MIN_WEBSITE_BITS - 7);
    }

    #[test]
    fn instance_for_is_stable_and_in_range() {
        for live in [1u32, 2, 4, 8] {
            for n in 0..200u32 {
                let i = instance_for(NodeId(n), live);
                assert!(i < live.max(1));
                assert_eq!(i, instance_for(NodeId(n), live), "pure function");
            }
        }
        // All instances actually receive clients at live = 4.
        let hit: std::collections::HashSet<u32> =
            (0..200u32).map(|n| instance_for(NodeId(n), 4)).collect();
        assert_eq!(hit.len(), 4, "hash must spread over the live set");
    }

    #[test]
    fn instance_assignments_nest_across_doublings() {
        for n in 0..500u32 {
            let at4 = instance_for(NodeId(n), 4);
            let at2 = instance_for(NodeId(n), 2);
            let at1 = instance_for(NodeId(n), 1);
            assert_eq!(at4 % 2, at2, "halving keeps the low bits");
            assert_eq!(at1, 0, "a single live instance owns everyone");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Key packing round-trips locality and instance for any
        /// scheme geometry.
        #[test]
        fn pack_unpack_roundtrip(
            m1 in 1u32..12,
            b in 0u32..4,
            ws in 0u16..1000,
            loc_raw in 0u16..4096,
            inst_raw in 0u32..16,
        ) {
            let s = KeyScheme::new(m1, b);
            let loc = Locality(loc_raw % s.max_localities() as u16);
            let inst = inst_raw % s.instances() as u32;
            let key = s.key_with_instance(WebsiteId(ws), loc, inst);
            prop_assert_eq!(s.locality_of(key), loc);
            prop_assert_eq!(s.instance_of(key), inst);
            prop_assert_eq!(s.website_of(key), s.website_segment(WebsiteId(ws)));
        }

        /// §5.3 round-trip with instance bits actually in play
        /// (`b ≥ 1`): website segment, locality and instance are all
        /// recovered, and the instance-0 key of the extended scheme is
        /// exactly the base-design bit layout `(segment ∥ locality ∥
        /// 0…0)` — so a deployment that never splits (and every pinned
        /// statistic at `instance_bits = 0`) is untouched by the
        /// extension.
        #[test]
        fn scale_up_roundtrip_and_instance0_layout(
            m1 in 1u32..12,
            b in 1u32..4,
            ws in 0u16..1000,
            loc_raw in 0u16..4096,
            inst_raw in 1u32..16,
        ) {
            let s = KeyScheme::new(m1, b);
            let loc = Locality(loc_raw % s.max_localities() as u16);
            let inst = 1 + (inst_raw - 1) % (s.instances() as u32 - 1).max(1);
            let key = s.key_with_instance(WebsiteId(ws), loc, inst);
            prop_assert_eq!(s.website_of(key), s.website_segment(WebsiteId(ws)));
            prop_assert_eq!(s.locality_of(key), loc);
            prop_assert_eq!(s.instance_of(key), inst);
            // Instance 0 is the plain-key alias…
            let k0 = s.key(WebsiteId(ws), loc);
            prop_assert_eq!(k0, s.key_with_instance(WebsiteId(ws), loc, 0));
            prop_assert_eq!(s.instance_of(k0), 0);
            // …and its bit layout is the base design shifted left by b:
            // the base scheme's key over the *same* website segment.
            prop_assert_eq!(
                k0.0,
                (s.website_segment(WebsiteId(ws)) << (m1 + b)) | ((loc.0 as u64) << b)
            );
        }

        /// All keys of one website form one contiguous id block of
        /// size k·instances — they are mutual ring neighbours.
        #[test]
        fn website_block_contiguous(m1 in 1u32..10, b in 0u32..3, ws in 0u16..500) {
            let s = KeyScheme::new(m1, b);
            let k = s.max_localities().min(8);
            let mut prev: Option<u64> = None;
            for loc in 0..k as u16 {
                for inst in 0..s.instances().min(4) as u32 {
                    let key = s.key_with_instance(WebsiteId(ws), Locality(loc), inst).0;
                    if let Some(p) = prev {
                        if inst == 0 && s.instances() > 4 {
                            // skipped instances; only check monotonicity
                            prop_assert!(key > p);
                        } else {
                            prop_assert!(key > p);
                        }
                    }
                    prev = Some(key);
                }
            }
        }
    }
}
