//! The directory peer (§3.3–3.4, Algorithm 3, §4.2.1 directory
//! management, §5.1 failure handling).
//!
//! A directory peer `d_{ws,loc}` maintains:
//!
//! * **directory-index(ws, loc)** — one entry per content peer of its
//!   overlay: address, age (failure detection) and the list of object
//!   identifiers the peer holds. The paper calls this "a complete view
//!   of its content overlay".
//! * **directory-summaries(ws, locj)** — Bloom summaries of the
//!   directory indexes of the *other* directory peers of the same
//!   website it knows through its routing table (its ring
//!   neighbours), refreshed lazily (§4.2.1).
//!
//! Query processing is exactly Algorithm 3: try the index, then the
//! summaries, then the origin server. The index is kept fresh by
//! pushes and keepalives; entries whose age reaches `Tdead` are
//! evicted (§5.1).
//!
//! ## Holder lookup cost
//!
//! The per-peer index is mirrored by an *inverted* index `object →
//! sorted holder list`, maintained on every object insert/remove, so
//! Algorithm 3's step 1 reads exactly the holders of the requested
//! object instead of scanning the whole overlay (`Sco` grows with the
//! deployment — at 100k nodes a scan per query dominated the engine
//! profile). The only lookups the inverted index cannot answer are
//! the gossip-summary entries of a freshly promoted §5.2 directory
//! (exact object lists unknown until pushes rebuild them); those are
//! counted, and the summary scan runs only while such entries exist.
//! A seeded entry sheds its summary on the *first push* from that
//! peer: from then on the peer's exact ∆lists are authoritative, so
//! keeping the (stale, bloom-false-positive-prone) summary would only
//! prolong the full-index scan. A promoted directory therefore pays
//! the scan just until its seeded members push or age out.

use std::collections::HashMap;

use bloom::{ContentSummary, MaintainedSummary, ObjectId};
use chord::ChordId;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::{Locality, NodeId};
use workload::WebsiteId;

/// One directory-index entry (§3.3): a content peer of the overlay.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// Age, in directory ticks, since the peer last pushed or sent a
    /// keepalive.
    pub age: u32,
    /// Object identifiers the peer reported holding.
    pub objects: std::collections::HashSet<ObjectId>,
    /// Gossip-learned content summary; a freshly promoted directory
    /// peer answers from these until pushes rebuild the index (§5.2:
    /// "meanwhile, d answers first queries from its content
    /// summaries").
    pub summary: Option<ContentSummary>,
}

impl DirEntry {
    fn fresh() -> Self {
        DirEntry {
            age: 0,
            objects: Default::default(),
            summary: None,
        }
    }
}

/// A received directory summary of a neighbouring directory peer.
#[derive(Clone, Debug)]
pub struct NeighborSummary {
    /// The neighbour's underlay address.
    pub dir: NodeId,
    /// The neighbour's locality.
    pub locality: Locality,
    /// The neighbour's ring id.
    pub dir_id: ChordId,
    /// Bloom summary of its directory index.
    pub summary: ContentSummary,
}

/// Algorithm 3's decision for a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirDecision {
    /// Redirect to a content peer of this overlay listed as holding
    /// the object.
    ToHolder(NodeId),
    /// Redirect to another directory peer of the same website whose
    /// directory summary matched.
    ToDirectory(NodeId),
    /// No peer can serve: fall back to the origin server.
    ToServer,
}

/// Load counters of one directory instance (§5.3 PetalUp): what the
/// split/merge policy and the per-instance load report read. The
/// index size itself is [`DirectoryState::overlay_size`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirLoad {
    /// Queries processed through Algorithm 3 (lifetime).
    pub queries: u64,
    /// Queries processed since the window was last taken
    /// ([`DirectoryState::take_window_queries`]) — the split/merge
    /// policy's signal.
    pub window_queries: u64,
    /// Content pushes applied (Algorithm 6).
    pub pushes: u64,
    /// Keepalives received (§5.1).
    pub keepalives: u64,
    /// Neighbour directory summaries received (§4.2.1 gossip between
    /// directory peers).
    pub summaries: u64,
}

/// The state of one directory role `d_{ws,loc}` — or, with §5.3
/// instance bits, one directory *instance* `d_{ws,loc,i}`.
#[derive(Clone, Debug)]
pub struct DirectoryState {
    website: WebsiteId,
    locality: Locality,
    /// Which §5.3 instance of the petal this is (0 in the base
    /// design; the petal primary when instances are in play).
    instance: u32,
    index: HashMap<NodeId, DirEntry>,
    neighbor_summaries: Vec<NeighborSummary>,
    /// Overlay capacity `Sco`.
    capacity: usize,
    /// Age limit for index entries.
    t_dead: u32,
    /// Objects newly indexed since the last summary broadcast.
    new_since_refresh: usize,
    /// Total object listings in the index (for the refresh ratio).
    total_indexed: usize,
    /// §8 active replication: requests per object since the last
    /// replication round (decayed each round).
    popularity: HashMap<ObjectId, u64>,
    /// Inverted index: object → members whose *exact* object list
    /// contains it, kept sorted by node id (the deterministic
    /// candidate order Algorithm 3 draws from).
    holders_of: HashMap<ObjectId, Vec<NodeId>>,
    /// Number of entries carrying a gossip summary (§5.2 seeding);
    /// while non-zero, holder lookups must also scan those entries.
    summary_entries: usize,
    /// Monotone count of [`DirectoryState::tick`] calls, backing the
    /// `recency` stamps.
    ticks: i64,
    /// Members in exactly the order `view_seed` wants them — by
    /// `(age, id)` ascending — represented as `(age − ticks, id)`:
    /// every tick raises all ages *and* `ticks` by one, so the stored
    /// keys never move and only refreshes/insertions/evictions pay an
    /// `O(log Sco)` update. (The representations order identically
    /// until an age saturates, i.e. not before 2^32 ticks.) Scanning
    /// the whole index per admission instead was the top entry of the
    /// million-node profile.
    recency: std::collections::BTreeSet<(i64, u32)>,
    /// The directory summary, *maintained* on every index mutation
    /// (one counted occurrence per `(member, object)` listing) instead
    /// of rebuilt by scanning the whole index per §4.2.1 refresh —
    /// the other `from_objects` hot path of the PR 3 profile.
    /// §5.2-seeded gossip summaries never enter it, exactly as the old
    /// from-scratch scan only visited exact object lists, so there is
    /// no unknown-counter state to rebuild around: every mutation the
    /// index can undergo is mirrored here exactly.
    summary: MaintainedSummary,
    /// Per-instance load counters (§5.3 PetalUp).
    load: DirLoad,
}

impl DirectoryState {
    /// An empty directory for `(website, locality)`, §5.3 instance
    /// `instance` (0 in the base design).
    pub fn new(
        website: WebsiteId,
        locality: Locality,
        instance: u32,
        capacity: usize,
        t_dead: u32,
        summary_capacity: usize,
    ) -> Self {
        DirectoryState {
            website,
            locality,
            instance,
            index: HashMap::new(),
            neighbor_summaries: Vec::new(),
            capacity,
            t_dead,
            new_since_refresh: 0,
            total_indexed: 0,
            popularity: HashMap::new(),
            holders_of: HashMap::new(),
            summary_entries: 0,
            ticks: 0,
            recency: std::collections::BTreeSet::new(),
            summary: MaintainedSummary::empty(summary_capacity),
            load: DirLoad::default(),
        }
    }

    /// Record `peer` (a member) as holding `o` in the inverted index.
    fn add_holder(&mut self, o: ObjectId, peer: NodeId) {
        let hs = self.holders_of.entry(o).or_default();
        if let Err(pos) = hs.binary_search_by_key(&peer.0, |n| n.0) {
            hs.insert(pos, peer);
        }
    }

    /// Remove `peer` from `o`'s holder list.
    fn remove_holder(&mut self, o: ObjectId, peer: NodeId) {
        if let Some(hs) = self.holders_of.get_mut(&o) {
            if let Ok(pos) = hs.binary_search_by_key(&peer.0, |n| n.0) {
                hs.remove(pos);
                if hs.is_empty() {
                    self.holders_of.remove(&o);
                }
            }
        }
    }

    /// Unindex every object of a removed entry.
    fn drop_entry_holders(&mut self, peer: NodeId, e: &DirEntry) {
        for o in &e.objects {
            let o = *o;
            self.remove_holder(o, peer);
            self.summary.remove(o);
        }
        if e.summary.is_some() {
            self.summary_entries -= 1;
        }
    }

    /// The website this directory serves.
    pub fn website(&self) -> WebsiteId {
        self.website
    }

    /// The locality this directory covers.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// The §5.3 instance index of this directory within its petal.
    pub fn instance(&self) -> u32 {
        self.instance
    }

    /// The load counters of this instance.
    pub fn load(&self) -> DirLoad {
        self.load
    }

    /// Count one query processed through Algorithm 3 (the caller runs
    /// [`DirectoryState::process`] right after).
    pub fn note_query(&mut self) {
        self.load.queries += 1;
        self.load.window_queries += 1;
    }

    /// Read and reset the windowed query counter — one split/merge
    /// policy window per directory tick.
    pub fn take_window_queries(&mut self) -> u64 {
        std::mem::take(&mut self.load.window_queries)
    }

    /// Number of content peers currently indexed.
    pub fn overlay_size(&self) -> usize {
        self.index.len()
    }

    /// True when the overlay reached `Sco` (§5.3: no more joins).
    pub fn is_full(&self) -> bool {
        self.index.len() >= self.capacity
    }

    /// Is `peer` a member of this overlay?
    pub fn contains(&self, peer: NodeId) -> bool {
        self.index.contains_key(&peer)
    }

    /// Iterate over the indexed members.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.index.keys().copied()
    }

    /// **Algorithm 3**: decide where to send `query(o)`.
    ///
    /// `exclude` is the querying peer itself (it obviously does not
    /// want a redirect to itself). Holders whose entry age has reached
    /// `Tdead` are skipped ("after checking its aliveness"); among the
    /// live holders one is drawn uniformly, which spreads the load
    /// "rather evenly across the set of content peers holding copies"
    /// (§4.1).
    pub fn process<R: Rng>(
        &self,
        rng: &mut R,
        object: ObjectId,
        exclude: NodeId,
        max_dir_hops: u8,
        dir_hops: u8,
    ) -> DirDecision {
        // 1. directory-index lookup, answered from the inverted index
        // (already in node-id order, so the random draw is a pure
        // function of the RNG, not of hash-map iteration order).
        if self.summary_entries == 0 {
            // Steady-state path. Outside `tick()` every indexed entry
            // has `age < t_dead` (tick evicts at the threshold within
            // the same call, and validated configs forbid `Tdead` 0),
            // and `holders_of` only lists indexed members — so every
            // listed holder is live, and the only candidate the old
            // per-holder scan ever rejected is `exclude` itself. That
            // makes step 1 O(log H): locate `exclude` by binary
            // search, make the same `gen_range(0..count)` draw
            // `choose` made on the collected slice, and index
            // straight into the sorted holder list. The per-query
            // collect this replaces grew with `Sco` and dominated the
            // million-node profile.
            if let Some(hs) = self.holders_of.get(&object) {
                let excluded = hs.binary_search_by_key(&exclude.0, |n| n.0).ok();
                let count = hs.len() - usize::from(excluded.is_some());
                if count > 0 {
                    let i = rng.gen_range(0..count);
                    let at = match excluded {
                        Some(ep) if i >= ep => i + 1,
                        _ => i,
                    };
                    let h = hs[at];
                    debug_assert!(
                        h != exclude && self.index.get(&h).is_some_and(|e| e.age < self.t_dead),
                        "holder list out of sync with the index"
                    );
                    return DirDecision::ToHolder(h);
                }
            }
        } else {
            // §5.2 fresh-takeover path: members known only through
            // gossip summaries; their exact lists are disjoint from
            // the inverted hits (`objects` does not contain the
            // object), so the merge needs a sort but no dedup.
            let mut holders: Vec<NodeId> = self
                .holders_of
                .get(&object)
                .map(|hs| {
                    hs.iter()
                        .copied()
                        .filter(|p| {
                            *p != exclude && self.index.get(p).is_some_and(|e| e.age < self.t_dead)
                        })
                        .collect()
                })
                .unwrap_or_default();
            for (peer, e) in &self.index {
                if *peer != exclude
                    && e.age < self.t_dead
                    && !e.objects.contains(&object)
                    && e.summary.as_ref().is_some_and(|s| s.might_contain(object))
                {
                    holders.push(*peer);
                }
            }
            holders.sort_unstable_by_key(|n| n.0);
            if let Some(h) = holders.choose(rng) {
                return DirDecision::ToHolder(*h);
            }
        }
        // 2. directory summaries (only if the query may still travel).
        if dir_hops < max_dir_hops {
            let candidates: Vec<NodeId> = self
                .neighbor_summaries
                .iter()
                .filter(|n| n.summary.might_contain(object))
                .map(|n| n.dir)
                .collect();
            if let Some(d) = candidates.choose(rng) {
                return DirDecision::ToDirectory(*d);
            }
        }
        // 3. the origin server.
        DirDecision::ToServer
    }

    /// Optimistic entry creation (§3.4): after serving a new client,
    /// "d optimistically adds a new entry in its directory index: peer
    /// F with its requested object, and age zero". Returns false when
    /// the peer is new and the overlay is full (admission denied).
    pub fn admit_or_refresh(&mut self, peer: NodeId, object: ObjectId) -> bool {
        let ticks = self.ticks;
        match self.index.get_mut(&peer) {
            Some(e) => {
                if e.age != 0 {
                    self.recency.remove(&(e.age as i64 - ticks, peer.0));
                    self.recency.insert((-ticks, peer.0));
                    e.age = 0;
                }
                if e.objects.insert(object) {
                    self.new_since_refresh += 1;
                    self.total_indexed += 1;
                    self.add_holder(object, peer);
                    self.summary.insert(object);
                }
                true
            }
            None => {
                if self.is_full() {
                    return false;
                }
                let mut e = DirEntry::fresh();
                e.objects.insert(object);
                self.index.insert(peer, e);
                self.recency.insert((-ticks, peer.0));
                self.new_since_refresh += 1;
                self.total_indexed += 1;
                self.add_holder(object, peer);
                self.summary.insert(object);
                true
            }
        }
    }

    /// Apply a push `∆list` (Algorithm 6): update the pushing peer's
    /// entry and reset its age. Unknown pushers are admitted if
    /// capacity allows (they may have joined under a previous
    /// directory incarnation; §5.2).
    pub fn apply_push(&mut self, peer: NodeId, added: &[ObjectId], removed: &[ObjectId]) {
        if !self.index.contains_key(&peer) && self.is_full() {
            return;
        }
        let ticks = self.ticks;
        let e = self.index.entry(peer).or_insert_with(DirEntry::fresh);
        if e.age != 0 {
            self.recency.remove(&(e.age as i64 - ticks, peer.0));
            e.age = 0;
        }
        self.recency.insert((-ticks, peer.0));
        // First push from a §5.2-seeded member: its exact ∆lists are
        // authoritative from here on — drop the gossip summary (and,
        // once no seeded entry remains, the summary-scan tax with it).
        if e.summary.take().is_some() {
            self.summary_entries -= 1;
        }
        self.load.pushes += 1;
        let mut new_holdings = Vec::new();
        for o in added {
            if e.objects.insert(*o) {
                self.new_since_refresh += 1;
                self.total_indexed += 1;
                new_holdings.push(*o);
            }
        }
        let mut gone_holdings = Vec::new();
        for o in removed {
            if e.objects.remove(o) {
                self.total_indexed = self.total_indexed.saturating_sub(1);
                gone_holdings.push(*o);
            }
        }
        for o in new_holdings {
            self.add_holder(o, peer);
            self.summary.insert(o);
        }
        for o in gone_holdings {
            self.remove_holder(o, peer);
            self.summary.remove(o);
        }
    }

    /// A keepalive arrived (§5.1): reset the sender's age. A keepalive
    /// from a member we do not index is direct evidence of membership
    /// (we may be a fresh §5.2 replacement, or the entry aged out):
    /// re-admit it optimistically with an empty object list — its
    /// objects return with its next push, exactly how the paper's new
    /// directory "gradually builds its directory upon receiving push
    /// messages".
    pub fn keepalive(&mut self, peer: NodeId) {
        self.load.keepalives += 1;
        let ticks = self.ticks;
        match self.index.get_mut(&peer) {
            Some(e) => {
                if e.age != 0 {
                    self.recency.remove(&(e.age as i64 - ticks, peer.0));
                    self.recency.insert((-ticks, peer.0));
                    e.age = 0;
                }
            }
            None => {
                if !self.is_full() {
                    self.index.insert(peer, DirEntry::fresh());
                    self.recency.insert((-ticks, peer.0));
                }
            }
        }
    }

    /// Directory tick (Algorithm 6 active behaviour): age all entries,
    /// evicting those that reached `Tdead`. Returns the evicted peers.
    pub fn tick(&mut self) -> Vec<NodeId> {
        // Ages and `ticks` move together, so every `recency` key
        // (age − ticks, id) stays put: aging a million-member index
        // costs the sweep below and no ordered-set rebalancing.
        self.ticks += 1;
        let mut dead = Vec::new();
        for (peer, e) in &mut self.index {
            e.age = e.age.saturating_add(1);
            if e.age >= self.t_dead {
                dead.push(*peer);
            }
        }
        for peer in &dead {
            if let Some(e) = self.index.remove(peer) {
                self.total_indexed = self.total_indexed.saturating_sub(e.objects.len());
                self.recency.remove(&(e.age as i64 - self.ticks, peer.0));
                self.drop_entry_holders(*peer, &e);
            }
        }
        dead.sort_unstable_by_key(|n| n.0);
        dead
    }

    /// Remove an entry after a redirection failure (§5.1: "the
    /// directory peer removes the invalid directory entry").
    pub fn remove_entry(&mut self, peer: NodeId) -> bool {
        match self.index.remove(&peer) {
            Some(e) => {
                self.total_indexed = self.total_indexed.saturating_sub(e.objects.len());
                self.recency.remove(&(e.age as i64 - self.ticks, peer.0));
                self.drop_entry_holders(peer, &e);
                true
            }
            None => false,
        }
    }

    /// Store/refresh a neighbour directory's summary (§3.3).
    pub fn update_neighbor_summary(&mut self, n: NeighborSummary) {
        self.load.summaries += 1;
        if let Some(existing) = self
            .neighbor_summaries
            .iter_mut()
            .find(|x| x.dir_id == n.dir_id)
        {
            *existing = n;
        } else {
            self.neighbor_summaries.push(n);
        }
    }

    /// Drop a neighbour summary (its directory died).
    pub fn remove_neighbor(&mut self, dir: NodeId) {
        self.neighbor_summaries.retain(|n| n.dir != dir);
    }

    /// The neighbour summaries currently held.
    pub fn neighbor_summaries(&self) -> &[NeighborSummary] {
        &self.neighbor_summaries
    }

    /// Should a refreshed directory summary be broadcast? (§4.2.1:
    /// "only when the percentage of new object identifiers reaches a
    /// threshold".) Resets the change counter when answering yes.
    pub fn take_summary_refresh(&mut self, threshold: f64) -> Option<ContentSummary> {
        if self.new_since_refresh == 0 {
            return None;
        }
        let ratio = self.new_since_refresh as f64 / self.total_indexed.max(1) as f64;
        if ratio < threshold {
            return None;
        }
        self.new_since_refresh = 0;
        Some(self.build_summary())
    }

    /// §8 active replication: note one request for `o`.
    pub fn note_request(&mut self, o: ObjectId) {
        *self.popularity.entry(o).or_insert(0) += 1;
    }

    /// §8 active replication: the `k` most requested objects that some
    /// live member holds, each paired with one such holder. Decays all
    /// counters afterwards so popularity tracks the recent past.
    pub fn take_hot_objects<R: Rng>(&mut self, rng: &mut R, k: usize) -> Vec<(ObjectId, NodeId)> {
        let mut ranked: Vec<(ObjectId, u64)> =
            self.popularity.iter().map(|(o, c)| (*o, *c)).collect();
        // Select the top `k` (highest count, ties broken by object
        // key) instead of sorting the whole popularity map each round
        // — the same select-then-sort move as `view_seed`, and exact
        // for the same reason: the (count, key) ranking is total. The
        // only divergence from the full sort is deliberate: a top-k
        // object with no live holder no longer pulls the (k+1)-th in
        // as a substitute, it just yields a shorter offer.
        let rank_key = |(o, c): &(ObjectId, u64)| (std::cmp::Reverse(*c), o.key());
        if k == 0 {
            // No offer this round, but the decay below still runs —
            // popularity must keep tracking the recent past.
            ranked.clear();
        } else if ranked.len() > k {
            ranked.select_nth_unstable_by_key(k - 1, rank_key);
            ranked.truncate(k);
        }
        ranked.sort_unstable_by_key(rank_key);
        let mut out = Vec::with_capacity(k);
        for (o, _) in ranked {
            // Reuse Algorithm 3's holder choice for a live provider.
            if let DirDecision::ToHolder(h) = self.process(rng, o, NodeId(u32::MAX), 0, 0) {
                out.push((o, h));
            }
        }
        for c in self.popularity.values_mut() {
            *c /= 2;
        }
        self.popularity.retain(|_, c| *c > 0);
        out
    }

    /// Bloom summary over every object currently indexed: a snapshot
    /// of the maintained filter (cached between index mutations),
    /// bit-identical to the full-index scan this used to perform (one
    /// counted occurrence per `(member, object)` listing, so `items`
    /// matches the scan's insert tally too).
    pub fn build_summary(&mut self) -> ContentSummary {
        debug_assert_eq!(
            self.summary.items(),
            self.index.values().map(|e| e.objects.len()).sum::<usize>(),
            "maintained summary drifted from the index listings"
        );
        self.summary.snapshot()
    }

    /// A view seed for a joining client: up to `n` members (the
    /// youngest entries first — most likely alive).
    pub fn view_seed(&self, n: usize, exclude: NodeId) -> Vec<NodeId> {
        if n == 0 {
            return Vec::new();
        }
        // The `recency` set already holds the members in (age, id)
        // ascending order — take the first n that aren't `exclude`.
        // O(n) against the O(Sco) full-index scan this replaces,
        // which was the top entry of the million-node profile (41% of
        // total CPU: every admission paid a walk of the whole index).
        debug_assert_eq!(
            self.recency.len(),
            self.index.len(),
            "recency order drifted from the index"
        );
        self.recency
            .iter()
            .map(|&(_, p)| NodeId(p))
            .filter(|p| *p != exclude)
            .take(n)
            .collect()
    }

    /// Seed the index from a gossip view after a §5.2 takeover: the
    /// new directory knows members and their summaries, but not their
    /// exact object lists yet.
    pub fn seed_from_view<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (NodeId, Option<&'a ContentSummary>)>,
    ) {
        for (peer, summary) in entries {
            if self.is_full() || self.index.contains_key(&peer) {
                continue;
            }
            let mut e = DirEntry::fresh();
            e.summary = summary.cloned();
            if e.summary.is_some() {
                self.summary_entries += 1;
            }
            self.index.insert(peer, e);
            self.recency.insert((-self.ticks, peer.0));
        }
    }

    /// Install a snapshot received in a voluntary hand-off (§5.2).
    /// The one full summary rebuild left: the incoming index replaces
    /// everything, so the counters restart from the snapshot's exact
    /// listings.
    pub fn install_snapshot(&mut self, entries: Vec<(NodeId, u32, Vec<ObjectId>)>) {
        self.index.clear();
        self.holders_of.clear();
        self.summary_entries = 0;
        self.total_indexed = 0;
        self.summary.clear();
        self.recency.clear();
        for (peer, age, objects) in entries {
            let mut e = DirEntry::fresh();
            e.age = age;
            self.total_indexed += objects.len();
            for o in &objects {
                self.add_holder(*o, peer);
                self.summary.insert(*o);
            }
            e.objects = objects.into_iter().collect();
            self.index.insert(peer, e);
            self.recency.insert((age as i64 - self.ticks, peer.0));
        }
    }

    /// Export the index for a voluntary hand-off (§5.2), in
    /// deterministic (node-id) order.
    pub fn snapshot(&self) -> Vec<(NodeId, u32, Vec<ObjectId>)> {
        let mut snap: Vec<(NodeId, u32, Vec<ObjectId>)> = self
            .index
            .iter()
            .map(|(p, e)| {
                let mut objs: Vec<ObjectId> = e.objects.iter().copied().collect();
                objs.sort_unstable();
                (*p, e.age, objs)
            })
            .collect();
        snap.sort_unstable_by_key(|(p, _, _)| p.0);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dir() -> DirectoryState {
        DirectoryState::new(WebsiteId(1), Locality(0), 0, 3, 5, 100)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const O1: ObjectId = ObjectId(11);
    const O2: ObjectId = ObjectId(22);

    #[test]
    fn algorithm3_prefers_index_then_summaries_then_server() {
        let mut d = dir();
        let mut r = rng();
        // Empty: server.
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToServer
        );
        // Neighbour summary knows O1: directory redirect.
        let mut s = ContentSummary::empty(100);
        s.insert(O1);
        d.update_neighbor_summary(NeighborSummary {
            dir: NodeId(50),
            locality: Locality(1),
            dir_id: ChordId(5),
            summary: s,
        });
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToDirectory(NodeId(50))
        );
        // Local holder wins over the summary.
        assert!(d.admit_or_refresh(NodeId(1), O1));
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(1))
        );
    }

    #[test]
    fn dir_hop_budget_disables_summary_redirect() {
        let mut d = dir();
        let mut r = rng();
        let mut s = ContentSummary::empty(100);
        s.insert(O1);
        d.update_neighbor_summary(NeighborSummary {
            dir: NodeId(50),
            locality: Locality(1),
            dir_id: ChordId(5),
            summary: s,
        });
        // Budget exhausted → server, not another directory.
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 1),
            DirDecision::ToServer
        );
    }

    #[test]
    fn querying_peer_is_never_its_own_holder() {
        let mut d = dir();
        let mut r = rng();
        assert!(d.admit_or_refresh(NodeId(1), O1));
        assert_eq!(
            d.process(&mut r, O1, NodeId(1), 1, 0),
            DirDecision::ToServer
        );
    }

    #[test]
    fn load_spreads_over_holders() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 0, 10, 5, 100);
        let mut r = rng();
        for p in 0..5u32 {
            assert!(d.admit_or_refresh(NodeId(p), O1));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let DirDecision::ToHolder(h) = d.process(&mut r, O1, NodeId(99), 1, 0) {
                seen.insert(h);
            }
        }
        assert_eq!(seen.len(), 5, "redirections must hit every holder");
    }

    #[test]
    fn capacity_blocks_admission_but_not_refresh() {
        let mut d = dir(); // capacity 3
        assert!(d.admit_or_refresh(NodeId(1), O1));
        assert!(d.admit_or_refresh(NodeId(2), O1));
        assert!(d.admit_or_refresh(NodeId(3), O1));
        assert!(d.is_full());
        assert!(
            !d.admit_or_refresh(NodeId(4), O1),
            "full overlay rejects new peers"
        );
        assert!(d.admit_or_refresh(NodeId(1), O2), "members always refresh");
        assert_eq!(d.overlay_size(), 3);
    }

    #[test]
    fn tick_ages_and_evicts_at_tdead() {
        let mut d = dir(); // Tdead = 5
        d.admit_or_refresh(NodeId(1), O1);
        d.admit_or_refresh(NodeId(2), O1);
        for _ in 0..4 {
            assert!(d.tick().is_empty());
        }
        // Keepalive saves peer 2.
        d.keepalive(NodeId(2));
        let dead = d.tick();
        assert_eq!(dead, vec![NodeId(1)]);
        assert!(!d.contains(NodeId(1)));
        assert!(d.contains(NodeId(2)));
    }

    #[test]
    fn push_updates_entry_and_age() {
        let mut d = dir();
        d.admit_or_refresh(NodeId(1), O1);
        d.tick();
        d.apply_push(NodeId(1), &[O2], &[O1]);
        let mut r = rng();
        assert_eq!(
            d.process(&mut r, O2, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(1))
        );
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToServer
        );
    }

    #[test]
    fn stale_holders_are_skipped() {
        let mut d = dir();
        let mut r = rng();
        d.admit_or_refresh(NodeId(1), O1);
        for _ in 0..5 {
            d.tick(); // evicts at age 5
        }
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToServer
        );
    }

    #[test]
    fn summary_refresh_threshold() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 0, 100, 5, 100);
        for p in 0..10u32 {
            d.admit_or_refresh(NodeId(p), ObjectId(p as u64));
        }
        // 10 new / 10 total = 1.0 ≥ 0.5 → refresh.
        let s = d.take_summary_refresh(0.5).expect("refresh due");
        assert!(s.might_contain(ObjectId(3)));
        // Counter reset: no refresh until enough new changes.
        assert!(d.take_summary_refresh(0.5).is_none());
        d.admit_or_refresh(NodeId(0), ObjectId(100));
        // 1 new / 11 total < 0.5.
        assert!(d.take_summary_refresh(0.5).is_none());
        assert!(d.take_summary_refresh(0.05).is_some());
    }

    #[test]
    fn view_seed_prefers_young_entries() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 0, 100, 10, 100);
        d.admit_or_refresh(NodeId(1), O1);
        d.tick();
        d.tick();
        d.admit_or_refresh(NodeId(2), O1); // younger
        let seed = d.view_seed(1, NodeId(99));
        assert_eq!(seed, vec![NodeId(2)]);
        // exclusion works
        assert_eq!(d.view_seed(5, NodeId(2)), vec![NodeId(1)]);
    }

    #[test]
    fn takeover_seeding_answers_from_summaries() {
        let mut d = dir();
        let mut r = rng();
        let mut s = ContentSummary::empty(100);
        s.insert(O1);
        d.seed_from_view([(NodeId(7), Some(&s)), (NodeId(8), None)]);
        assert_eq!(d.overlay_size(), 2);
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(7))
        );
    }

    #[test]
    fn first_push_clears_the_seeded_summary() {
        let mut d = dir();
        let mut r = rng();
        let mut s = ContentSummary::empty(100);
        s.insert(O1);
        d.seed_from_view([(NodeId(7), Some(&s))]);
        // Answered from the summary while no push arrived.
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(7))
        );
        // The peer's first push is authoritative: it holds O2, not O1.
        d.apply_push(NodeId(7), &[O2], &[]);
        assert_eq!(
            d.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToServer,
            "stale summary must stop matching after the push"
        );
        assert_eq!(
            d.process(&mut r, O2, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(7))
        );
    }

    #[test]
    fn load_counters_track_protocol_traffic() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 3, 10, 5, 100);
        assert_eq!(d.instance(), 3);
        assert_eq!(d.load(), DirLoad::default());
        d.note_query();
        d.note_query();
        d.apply_push(NodeId(1), &[O1], &[]);
        d.keepalive(NodeId(1));
        let mut s = ContentSummary::empty(100);
        s.insert(O2);
        d.update_neighbor_summary(NeighborSummary {
            dir: NodeId(50),
            locality: Locality(1),
            dir_id: ChordId(5),
            summary: s,
        });
        let l = d.load();
        assert_eq!(
            (l.queries, l.pushes, l.keepalives, l.summaries),
            (2, 1, 1, 1)
        );
        assert_eq!(l.window_queries, 2);
        // The window drains; the lifetime counter does not.
        assert_eq!(d.take_window_queries(), 2);
        assert_eq!(d.take_window_queries(), 0);
        assert_eq!(d.load().queries, 2);
    }

    /// What `build_summary` used to compute: a from-scratch scan over
    /// every `(member, object)` listing.
    fn scan_summary(d: &DirectoryState) -> ContentSummary {
        let mut s = ContentSummary::empty(d.summary.capacity());
        for e in d.index.values() {
            for o in &e.objects {
                s.insert(*o);
            }
        }
        s
    }

    #[test]
    fn maintained_summary_tracks_every_index_mutation() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 0, 10, 3, 100);
        assert_eq!(d.build_summary(), scan_summary(&d));
        // Admissions (new entry + refresh).
        d.admit_or_refresh(NodeId(1), O1);
        d.admit_or_refresh(NodeId(2), O1);
        d.admit_or_refresh(NodeId(1), O2);
        assert_eq!(d.build_summary(), scan_summary(&d));
        // Pushes with adds and removes, including a §5.2-seeded entry
        // (whose gossip summary must never enter the filter).
        let mut s = ContentSummary::empty(100);
        s.insert(ObjectId(77));
        d.seed_from_view([(NodeId(3), Some(&s))]);
        assert_eq!(d.build_summary(), scan_summary(&d));
        d.apply_push(NodeId(3), &[ObjectId(40), ObjectId(41)], &[]);
        d.apply_push(NodeId(1), &[], &[O2]);
        assert_eq!(d.build_summary(), scan_summary(&d));
        // Redirection-failure removal and Tdead eviction.
        d.remove_entry(NodeId(2));
        assert_eq!(d.build_summary(), scan_summary(&d));
        for _ in 0..3 {
            d.tick();
        }
        assert_eq!(d.overlay_size(), 0, "everything aged out");
        assert_eq!(d.build_summary(), scan_summary(&d));
        assert_eq!(d.build_summary(), ContentSummary::empty(100));
        // §5.2 hand-off snapshot install restarts the counters.
        d.install_snapshot(vec![(NodeId(7), 1, vec![O1, O2]), (NodeId(8), 0, vec![O1])]);
        assert_eq!(d.build_summary(), scan_summary(&d));
        assert!(d.build_summary().might_contain(O1));
    }

    #[test]
    fn hot_objects_rank_by_popularity_with_key_tiebreak() {
        let mut d = DirectoryState::new(WebsiteId(1), Locality(0), 0, 10, 5, 100);
        let mut r = rng();
        for (o, holder) in [(ObjectId(1), 1u32), (ObjectId(2), 2), (ObjectId(3), 3)] {
            d.admit_or_refresh(NodeId(holder), o);
        }
        for _ in 0..3 {
            d.note_request(ObjectId(2));
        }
        d.note_request(ObjectId(1));
        d.note_request(ObjectId(3)); // tied with ObjectId(1) → key order
        let hot = d.take_hot_objects(&mut r, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, ObjectId(2), "hottest first");
        assert_eq!(hot[1].0, ObjectId(1), "tie broken by object key");
        // Counters decayed (3/2=1, 1/2=0, 1/2=0): only obj 2 remains.
        let again = d.take_hot_objects(&mut r, 5);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].0, ObjectId(2));
        // k = 0 offers nothing but still decays (obj 2's count 1 → 0),
        // so the following round sees an empty popularity map.
        assert!(d.take_hot_objects(&mut r, 0).is_empty());
        assert!(d.take_hot_objects(&mut r, 5).is_empty());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut d = dir();
        d.admit_or_refresh(NodeId(1), O1);
        d.admit_or_refresh(NodeId(1), O2);
        d.tick();
        let snap = d.snapshot();
        let mut d2 = dir();
        d2.install_snapshot(snap);
        assert!(d2.contains(NodeId(1)));
        let mut r = rng();
        assert_eq!(
            d2.process(&mut r, O1, NodeId(99), 1, 0),
            DirDecision::ToHolder(NodeId(1))
        );
    }

    #[test]
    fn remove_entry_after_redirection_failure() {
        let mut d = dir();
        d.admit_or_refresh(NodeId(1), O1);
        assert!(d.remove_entry(NodeId(1)));
        assert!(!d.remove_entry(NodeId(1)));
        assert!(!d.contains(NodeId(1)));
    }

    #[test]
    fn neighbor_summary_replaced_not_duplicated() {
        let mut d = dir();
        let mk = |o: ObjectId| {
            let mut s = ContentSummary::empty(100);
            s.insert(o);
            NeighborSummary {
                dir: NodeId(50),
                locality: Locality(1),
                dir_id: ChordId(5),
                summary: s,
            }
        };
        d.update_neighbor_summary(mk(O1));
        d.update_neighbor_summary(mk(O2));
        assert_eq!(d.neighbor_summaries().len(), 1);
        assert!(d.neighbor_summaries()[0].summary.might_contain(O2));
    }
}
