//! The Flower-CDN wire protocol: queries, redirections, gossip,
//! pushes, keepalives, and directory recovery messages.
//!
//! Every message models its serialized size ([`simnet::Message`]) so
//! that the paper's background-bandwidth metric (Table 2) can be
//! measured rather than estimated. The byte model is documented per
//! message; the constants below pin the primitive sizes.

use bloom::{ContentSummary, ObjectId};
use chord::Wire;
use simnet::{Locality, Message, NodeId, SimTime, TrafficClass};
use workload::WebsiteId;

use crate::substrate::{DhtKey, PeerRef, SubstrateMsg};

/// Modelled bytes of a peer address (IPv4 + port).
pub const ADDR_BYTES: u32 = 6;
/// Modelled bytes of an age field.
pub const AGE_BYTES: u32 = 2;
/// Modelled bytes of an object identifier (`hash(url)`).
pub const OBJECT_ID_BYTES: u32 = 8;
/// Modelled bytes of a generic message header.
pub const MSG_HEADER_BYTES: u32 = 16;

/// A query for an object `o_ws` (the paper's `query(o_ws)`), carried
/// through every stage of processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// Unique id assigned at submission (metric correlation).
    pub id: u64,
    /// The querying peer (where the object must be delivered).
    pub origin: NodeId,
    /// The origin's locality at submission time.
    pub origin_locality: Locality,
    /// The targeted website.
    pub website: WebsiteId,
    /// The requested object.
    pub object: ObjectId,
    /// Submission instant (lookup-latency measurement).
    pub submitted_at: SimTime,
    /// Directory-level redirections so far (own directory = 0; a
    /// directory-summary redirect increments it; bounded to avoid
    /// summary false-positive ping-pong).
    pub dir_hops: u8,
    /// Redirection failures (§5.1) encountered so far.
    pub holder_retries: u8,
}

impl Wire for Query {
    fn wire_size(&self) -> u32 {
        // id + origin + locality + website + object + time + counters
        8 + ADDR_BYTES + 2 + 2 + OBJECT_ID_BYTES + 8 + 2
    }
}

/// Who served a query, as reported in [`FlowerMsg::ServeObject`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProviderKind {
    /// A content peer.
    ContentPeer,
    /// The website's origin server (a P2P miss).
    OriginServer,
}

/// One view entry travelling inside a gossip exchange: address, age
/// and (optionally) the contact's content summary.
#[derive(Clone, Debug)]
pub struct GossipEntry {
    /// The contact.
    pub peer: NodeId,
    /// Age of the entry at the sender.
    pub age: u32,
    /// The contact's content summary, if the sender has one.
    pub summary: Option<ContentSummary>,
}

impl GossipEntry {
    fn wire_size(&self) -> u32 {
        ADDR_BYTES + AGE_BYTES + self.summary.as_ref().map_or(0, |s| s.wire_size())
    }
}

/// The symmetric payload of Algorithm 4's gossip messages.
#[derive(Clone, Debug)]
pub struct GossipPayload {
    /// The website whose content overlay is gossiping.
    pub website: WebsiteId,
    /// The overlay's locality: overlays are per (website, locality),
    /// so receivers reject cross-locality exchanges (§5.4).
    pub locality: Locality,
    /// The sender's *current* content summary.
    pub summary: ContentSummary,
    /// `Lgossip` view entries.
    pub subset: Vec<GossipEntry>,
    /// The sender's view entry for the directory peer (§4.2.1: spread
    /// in every exchange for failure recovery).
    pub dir_hint: Option<(NodeId, u32)>,
}

impl GossipPayload {
    fn wire_size(&self) -> u32 {
        MSG_HEADER_BYTES
            + self.summary.wire_size()
            + self.subset.iter().map(GossipEntry::wire_size).sum::<u32>()
            + self.dir_hint.map_or(0, |_| ADDR_BYTES + AGE_BYTES)
    }
}

/// A directory-index entry snapshot, used in voluntary hand-off
/// (§5.2).
#[derive(Clone, Debug)]
pub struct IndexSnapshotEntry {
    /// The content peer.
    pub peer: NodeId,
    /// Entry age at hand-off.
    pub age: u32,
    /// Objects the entry lists.
    pub objects: Vec<ObjectId>,
}

/// All messages of the Flower-CDN protocol.
#[derive(Clone, Debug)]
pub enum FlowerMsg {
    /// External injection: the harness asks `origin` to submit a
    /// query. Not a network message (never sent between nodes).
    Submit {
        /// Query id assigned by the harness.
        qid: u64,
        /// Target website.
        website: WebsiteId,
        /// Requested object.
        object: ObjectId,
    },
    /// DHT traffic of the D-ring (routing + maintenance) on the
    /// configured substrate, carrying queries as routed payloads.
    Dht(SubstrateMsg),
    /// A content peer asks its own directory peer to process a query
    /// (the post-join fast path: no D-ring routing).
    ClientQuery {
        /// The query.
        query: Query,
    },
    /// A directory peer redirects a query to another directory peer of
    /// the same website whose directory summary matched (Algorithm 3).
    SummaryRedirect {
        /// The query.
        query: Query,
    },
    /// A directory peer redirects a query to a content peer listed as
    /// holding the object (Algorithm 3).
    RedirectToHolder {
        /// The query.
        query: Query,
    },
    /// A content peer probes a view contact whose summary matched.
    PeerFetch {
        /// The query.
        query: Query,
    },
    /// The probed peer does not actually hold the object (summary
    /// false positive or evicted content).
    FetchMiss {
        /// The query.
        query: Query,
    },
    /// Fallback: the query is sent to the website's origin server.
    ServerQuery {
        /// The query.
        query: Query,
    },
    /// The provider transfers the object to the query origin.
    ServeObject {
        /// The query being answered.
        query: Query,
        /// When the provider received the query (end of lookup).
        resolved_at: SimTime,
        /// Peer or origin server.
        provider: ProviderKind,
        /// Object payload size in bytes.
        size: u32,
        /// A subset of the serving peer's view, seeding the origin's
        /// view (§4.2: "F's view is initialized from a subset of A's
        /// view").
        view_seed: Vec<NodeId>,
    },
    /// The directory peer tells a new client whether it was admitted
    /// into the content overlay, providing itself and a view seed
    /// drawn from its directory index.
    Admission {
        /// The website whose overlay was joined.
        website: WebsiteId,
        /// The locality of the admitting overlay.
        locality: Locality,
        /// False when the overlay is full (`Sco` reached, §5.3).
        admitted: bool,
        /// The directory peer's address (for pushes/keepalives).
        dir: NodeId,
        /// §5.3 PetalUp: live directory instances of the petal at
        /// admission time (1 in the base design). Lets the member pin
        /// its hash-assigned instance against stale gossip hints.
        petal_live: u32,
        /// Initial contacts from the directory index.
        view_seed: Vec<NodeId>,
    },
    /// Active gossip half (Algorithm 4).
    GossipReq(GossipPayload),
    /// Passive gossip half (Algorithm 4).
    GossipResp(GossipPayload),
    /// One-way content push to the directory peer (Algorithm 5).
    Push {
        /// The website whose overlay this push belongs to.
        website: WebsiteId,
        /// Objects gained since the last push.
        added: Vec<ObjectId>,
        /// Objects dropped since the last push.
        removed: Vec<ObjectId>,
    },
    /// Keepalive from a content peer to its directory peer (§5.1).
    KeepAlive {
        /// The website whose overlay this keepalive belongs to.
        website: WebsiteId,
    },
    /// A directory peer sends a refreshed directory summary to a
    /// neighbour directory peer of the same website (§3.3, §4.2.1).
    DirSummary {
        /// Originating website.
        website: WebsiteId,
        /// Locality of the sending directory peer.
        locality: Locality,
        /// Substrate id of the sending directory peer.
        dir_id: DhtKey,
        /// Bloom summary of its directory index.
        summary: ContentSummary,
    },
    /// Voluntary directory hand-off (§5.2): the leaving directory
    /// transfers its directory index and substrate neighbourhood to a
    /// chosen content peer.
    DirHandoff {
        /// Website served.
        website: WebsiteId,
        /// Locality served.
        locality: Locality,
        /// The directory index snapshot.
        index: Vec<IndexSnapshotEntry>,
        /// Substrate neighbours the heir rebuilds its routing state
        /// from (Chord: successors + predecessor; Pastry: leaf set +
        /// table peers).
        neighbors: Vec<PeerRef>,
        /// Live §5.3 petal instance count at the moment of the
        /// hand-off. The heir continues with the running petal rather
        /// than restarting at `live = 1` and orphaning the active
        /// siblings.
        live: u32,
    },
    /// Sender informs a contact that it left the website's overlay
    /// (locality change, §5.4); the receiver drops it like a dead
    /// peer.
    Moved {
        /// The overlay the sender left.
        website: WebsiteId,
    },
    /// §8 active replication: a directory offers its hottest objects
    /// (with a holder for each) to a same-website neighbour directory.
    ReplicaOffer {
        /// The website being replicated.
        website: WebsiteId,
        /// `(object, holder in the offering overlay)` pairs.
        objects: Vec<(ObjectId, NodeId)>,
    },
    /// §8 active replication: the receiving directory instructs one of
    /// its members to pull an object from a remote holder.
    ReplicaInstruct {
        /// The website being replicated.
        website: WebsiteId,
        /// The object to replicate.
        object: ObjectId,
        /// Where to pull it from.
        holder: NodeId,
    },
    /// §8 active replication: the member asks the remote holder for
    /// the object.
    ReplicaPull {
        /// The website being replicated.
        website: WebsiteId,
        /// The object to pull.
        object: ObjectId,
    },
    /// §8 active replication: the object payload.
    ReplicaData {
        /// The website being replicated.
        website: WebsiteId,
        /// The replicated object.
        object: ObjectId,
        /// Payload size in bytes.
        size: u32,
    },
    /// §5.3 PetalUp split: the petal primary tells a sibling instance
    /// that the petal now runs `live` instances. A dormant sibling
    /// activates; an already-active one re-partitions its members
    /// under the new live count.
    PetalActivate {
        /// The petal's website.
        website: WebsiteId,
        /// The petal's locality.
        locality: Locality,
        /// The new live instance count (a power of two ≤ 2^b).
        live: u32,
    },
    /// §5.3 PetalUp merge: the petal primary shrinks the petal to
    /// `live` instances. A sibling at index ≥ `live` re-points its
    /// members to their new owning instances and goes dormant.
    PetalDeactivate {
        /// The petal's website.
        website: WebsiteId,
        /// The petal's locality.
        locality: Locality,
        /// The remaining live instance count.
        live: u32,
    },
    /// §5.3 PetalUp: a sibling instance leaves voluntarily (§5.2
    /// leave or §5.4 locality change). It has already re-pointed its
    /// members to the primary; the primary shrinks the petal below
    /// the retiring instance so forwards stop flowing there.
    PetalRetire {
        /// The petal's website.
        website: WebsiteId,
        /// The petal's locality.
        locality: Locality,
        /// The retiring instance.
        instance: u32,
    },
    /// §5.3 PetalUp telemetry: a live sibling reports its windowed
    /// query load to the petal primary, which runs the merge policy
    /// over the petal total.
    PetalLoad {
        /// The petal's website.
        website: WebsiteId,
        /// The petal's locality.
        locality: Locality,
        /// The reporting instance.
        instance: u32,
        /// Queries the instance processed in the last window.
        queries: u64,
    },
    /// Harness/operator injection (never on the wire): ask a directory
    /// peer to leave voluntarily, handing its directory off to a
    /// stable content peer first (§5.2).
    AdminLeave,
    /// Harness/operator injection (never on the wire): the node
    /// detects it has moved to another network locality (§5.4).
    AdminChangeLocality {
        /// The newly detected locality.
        to: Locality,
    },
}

impl Message for FlowerMsg {
    fn wire_size(&self) -> u32 {
        match self {
            // Harness injections: never cross the wire.
            FlowerMsg::Submit { .. }
            | FlowerMsg::AdminLeave
            | FlowerMsg::AdminChangeLocality { .. } => 0,
            FlowerMsg::Dht(m) => m.wire_size(),
            FlowerMsg::ClientQuery { query }
            | FlowerMsg::SummaryRedirect { query }
            | FlowerMsg::RedirectToHolder { query }
            | FlowerMsg::PeerFetch { query }
            | FlowerMsg::FetchMiss { query }
            | FlowerMsg::ServerQuery { query } => MSG_HEADER_BYTES + query.wire_size(),
            FlowerMsg::ServeObject {
                query,
                size,
                view_seed,
                ..
            } => MSG_HEADER_BYTES + query.wire_size() + size + ADDR_BYTES * view_seed.len() as u32,
            FlowerMsg::Admission { view_seed, .. } => {
                // admitted flag + live count + dir + seed addresses
                MSG_HEADER_BYTES + 1 + 4 + ADDR_BYTES * (1 + view_seed.len() as u32)
            }
            FlowerMsg::GossipReq(p) | FlowerMsg::GossipResp(p) => p.wire_size(),
            FlowerMsg::Push { added, removed, .. } => {
                MSG_HEADER_BYTES + (OBJECT_ID_BYTES + 1) * (added.len() + removed.len()) as u32
            }
            FlowerMsg::KeepAlive { .. } => MSG_HEADER_BYTES,
            FlowerMsg::DirSummary { summary, .. } => MSG_HEADER_BYTES + 8 + summary.wire_size(),
            FlowerMsg::DirHandoff {
                index, neighbors, ..
            } => {
                // Header + index + neighbours + live petal count.
                MSG_HEADER_BYTES
                    + index
                        .iter()
                        .map(|e| ADDR_BYTES + AGE_BYTES + OBJECT_ID_BYTES * e.objects.len() as u32)
                        .sum::<u32>()
                    + 16 * neighbors.len() as u32
                    + 4
            }
            FlowerMsg::Moved { .. } => MSG_HEADER_BYTES,
            FlowerMsg::ReplicaOffer { objects, .. } => {
                MSG_HEADER_BYTES + (OBJECT_ID_BYTES + ADDR_BYTES) * objects.len() as u32
            }
            FlowerMsg::ReplicaInstruct { .. } => MSG_HEADER_BYTES + OBJECT_ID_BYTES + ADDR_BYTES,
            FlowerMsg::ReplicaPull { .. } => MSG_HEADER_BYTES + OBJECT_ID_BYTES,
            FlowerMsg::ReplicaData { size, .. } => MSG_HEADER_BYTES + OBJECT_ID_BYTES + size,
            // website + locality + live count (or retiring instance)
            FlowerMsg::PetalActivate { .. }
            | FlowerMsg::PetalDeactivate { .. }
            | FlowerMsg::PetalRetire { .. } => MSG_HEADER_BYTES + 2 + 2 + 4,
            // website + locality + instance + windowed counter
            FlowerMsg::PetalLoad { .. } => MSG_HEADER_BYTES + 2 + 2 + 4 + 8,
        }
    }

    fn class(&self) -> TrafficClass {
        match self {
            FlowerMsg::Submit { .. }
            | FlowerMsg::AdminLeave
            | FlowerMsg::AdminChangeLocality { .. } => TrafficClass::QueryControl,
            FlowerMsg::Dht(m) => {
                if m.is_routing() {
                    TrafficClass::DhtRouting
                } else {
                    TrafficClass::DhtMaintenance
                }
            }
            FlowerMsg::ClientQuery { .. }
            | FlowerMsg::SummaryRedirect { .. }
            | FlowerMsg::RedirectToHolder { .. }
            | FlowerMsg::PeerFetch { .. }
            | FlowerMsg::FetchMiss { .. }
            | FlowerMsg::ServerQuery { .. }
            | FlowerMsg::Admission { .. } => TrafficClass::QueryControl,
            FlowerMsg::ServeObject { .. } => TrafficClass::Transfer,
            FlowerMsg::GossipReq(_) | FlowerMsg::GossipResp(_) | FlowerMsg::Moved { .. } => {
                TrafficClass::Gossip
            }
            // Directory summaries propagate index contents like pushes
            // do; the paper counts both as background maintenance. The
            // §8 replication control plane is likewise proactive
            // maintenance.
            // The PetalUp control plane is proactive directory
            // maintenance, like summary refreshes.
            FlowerMsg::Push { .. }
            | FlowerMsg::DirSummary { .. }
            | FlowerMsg::ReplicaOffer { .. }
            | FlowerMsg::ReplicaInstruct { .. }
            | FlowerMsg::ReplicaPull { .. }
            | FlowerMsg::PetalActivate { .. }
            | FlowerMsg::PetalDeactivate { .. }
            | FlowerMsg::PetalRetire { .. }
            | FlowerMsg::PetalLoad { .. } => TrafficClass::Push,
            FlowerMsg::ReplicaData { .. } => TrafficClass::Transfer,
            FlowerMsg::KeepAlive { .. } => TrafficClass::KeepAlive,
            FlowerMsg::DirHandoff { .. } => TrafficClass::DhtMaintenance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> Query {
        Query {
            id: 1,
            origin: NodeId(2),
            origin_locality: Locality(3),
            website: WebsiteId(4),
            object: ObjectId(5),
            submitted_at: SimTime::from_secs(6),
            dir_hops: 0,
            holder_retries: 0,
        }
    }

    #[test]
    fn gossip_size_scales_with_subset_length() {
        // Table 2(a): background bandwidth is linear in Lgossip — that
        // linearity comes from this byte model.
        let entry = |peer| GossipEntry {
            peer: NodeId(peer),
            age: 1,
            summary: Some(ContentSummary::empty(100)),
        };
        let payload = |l: u32| {
            FlowerMsg::GossipReq(GossipPayload {
                website: WebsiteId(0),
                locality: Locality(0),
                summary: ContentSummary::empty(100),
                subset: (0..l).map(entry).collect(),
                dir_hint: Some((NodeId(9), 0)),
            })
        };
        let s5 = payload(5).wire_size();
        let s10 = payload(10).wire_size();
        let s20 = payload(20).wire_size();
        assert_eq!(s10 - s5, 5 * (6 + 2 + 100));
        assert_eq!(s20 - s10, 10 * (6 + 2 + 100));
        assert_eq!(payload(5).class(), TrafficClass::Gossip);
    }

    #[test]
    fn serve_object_carries_payload_size() {
        let m = FlowerMsg::ServeObject {
            query: query(),
            resolved_at: SimTime::from_secs(7),
            provider: ProviderKind::ContentPeer,
            size: 50_000,
            view_seed: vec![NodeId(1), NodeId(2)],
        };
        assert!(m.wire_size() > 50_000);
        assert_eq!(m.class(), TrafficClass::Transfer);
    }

    #[test]
    fn classes_separate_background_from_foreground() {
        let push = FlowerMsg::Push {
            website: WebsiteId(0),
            added: vec![ObjectId(1)],
            removed: vec![],
        };
        assert!(push.class().is_background());
        let ka = FlowerMsg::KeepAlive {
            website: WebsiteId(0),
        };
        assert!(!ka.class().is_background());
        let q = FlowerMsg::ClientQuery { query: query() };
        assert!(!q.class().is_background());
        assert_eq!(
            FlowerMsg::Submit {
                qid: 0,
                website: WebsiteId(0),
                object: ObjectId(0)
            }
            .wire_size(),
            0
        );
    }

    #[test]
    fn push_size_scales_with_delta() {
        let mk = |n: u64| FlowerMsg::Push {
            website: WebsiteId(0),
            added: (0..n).map(ObjectId).collect(),
            removed: vec![],
        };
        assert_eq!(mk(10).wire_size() - mk(5).wire_size(), 5 * 9);
    }

    #[test]
    fn dht_classes_split_routing_and_maintenance() {
        let route = SubstrateMsg::Chord(chord::ChordMsg::Route {
            key: chord::ChordId(0),
            hops: 0,
            payload: chord::RoutePayload::App(query()),
        });
        assert_eq!(FlowerMsg::Dht(route).class(), TrafficClass::DhtRouting);
        let maint = SubstrateMsg::Chord(chord::ChordMsg::NeighborsReq);
        assert_eq!(FlowerMsg::Dht(maint).class(), TrafficClass::DhtMaintenance);
        let p_route = SubstrateMsg::Pastry(pastry::PastryMsg::Route {
            key: chord::ChordId(0),
            hops: 0,
            payload: pastry::proto::RoutePayload::App(query()),
        });
        assert_eq!(FlowerMsg::Dht(p_route).class(), TrafficClass::DhtRouting);
        let p_maint = SubstrateMsg::Pastry(pastry::PastryMsg::LeafResp { leaves: vec![] });
        assert_eq!(
            FlowerMsg::Dht(p_maint).class(),
            TrafficClass::DhtMaintenance
        );
    }
}
