//! The pluggable DHT substrate under the D-ring (§3.1).
//!
//! The paper claims the D-ring "can be integrated into any existing
//! structured overlay based on a standard DHT (e.g., Chord, Pastry)".
//! This module turns that claim into an interface: [`DhtSubstrate`]
//! captures the operations [`crate::node::FlowerNode`]'s directory
//! role actually needs — joining, key-based routing with an
//! application payload, message dispatch, periodic maintenance, and
//! the neighbour knowledge the directory protocol piggybacks on — and
//! [`ChordSubstrate`] / [`PastrySubstrate`] implement it over the
//! [`chord`] and [`pastry`] crates respectively.
//!
//! Substrate selection is a runtime configuration choice
//! ([`SubstrateKind`], carried in [`crate::config::FlowerConfig`]), so
//! every experiment can run over either DHT from config alone. The two
//! substrates share the 64-bit identifier space ([`DhtKey`]) and the
//! [`crate::id::KeyScheme`] layout; they differ in ownership rule
//! (clockwise successor vs. numerically closest), routing structure
//! (fingers vs. prefix table + leaf set) and maintenance traffic
//! (stabilize/fix-finger vs. leaf probing).

use simnet::NodeId;

use crate::id::KeyScheme;
use crate::msg::Query;
use crate::policy::DringPolicy;

/// The identifier space shared by all substrates (Chord and Pastry
/// both interpret D-ring keys as 64-bit ring positions).
pub type DhtKey = chord::ChordId;

/// A substrate peer: ring/mesh position plus underlay address.
pub type PeerRef = chord::PeerRef;

/// Wire messages of the selected substrate, embedded in
/// [`crate::msg::FlowerMsg::Dht`]. The enum is closed over the two
/// shipped substrates so the protocol message type stays non-generic;
/// a role built by one [`SubstrateKind`] only ever sees (and sends)
/// its own variant.
#[derive(Clone, Debug)]
pub enum SubstrateMsg {
    /// Chord traffic (routing + ring maintenance).
    Chord(chord::ChordMsg<Query>),
    /// Pastry traffic (routing + leaf-set maintenance).
    Pastry(pastry::PastryMsg<Query>),
}

impl SubstrateMsg {
    /// Modelled wire size of this message.
    pub fn wire_size(&self) -> u32 {
        match self {
            SubstrateMsg::Chord(m) => m.wire_size(),
            SubstrateMsg::Pastry(m) => m.wire_size(),
        }
    }

    /// Whether this is routing traffic, as opposed to substrate
    /// maintenance (drives the traffic-class split of the paper's
    /// bandwidth accounting).
    pub fn is_routing(&self) -> bool {
        match self {
            SubstrateMsg::Chord(m) => m.is_routing(),
            SubstrateMsg::Pastry(m) => m.is_routing(),
        }
    }

    /// The application query this message carries, if any — what a
    /// node without a directory role can still rescue from a bounced
    /// or stray substrate message.
    pub fn carried_query(&self) -> Option<Query> {
        match self {
            SubstrateMsg::Chord(chord::ChordMsg::Route {
                payload: chord::RoutePayload::App(q),
                ..
            }) => Some(*q),
            SubstrateMsg::Pastry(pastry::PastryMsg::Route {
                payload: pastry::proto::RoutePayload::App(q),
                ..
            }) => Some(*q),
            _ => None,
        }
    }
}

/// What a substrate operation surfaced to the embedding node — the
/// substrate's outcome stream.
#[derive(Debug)]
pub enum SubstrateEvent {
    /// A routed query terminated at this node (it is the responsible
    /// directory position, or the hop limit forced local delivery).
    Deliver {
        /// The delivered query.
        query: Query,
        /// Hops the query took through the substrate.
        hops: u8,
    },
    /// This node's join completed; the routing state is usable.
    JoinComplete,
    /// This node's in-flight join lookup was lost (e.g. it bounced off
    /// a dead hop); the node should retry through another entry point.
    NeedRejoin,
}

/// Periodic maintenance ticks the node's timers drive. Substrates map
/// them onto their own maintenance traffic and may ignore ticks they
/// have no use for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaintTick {
    /// Primary neighbour maintenance (Chord: stabilize; Pastry: leaf
    /// probing).
    Stabilize,
    /// Routing-structure repair (Chord: fix one finger; Pastry: the
    /// leaf exchange already refreshes the table — no-op).
    FixFinger,
}

/// Where a substrate role sends its wire messages (implemented by the
/// node over the simulator context).
pub trait SubstrateOut {
    /// Send `msg` to underlay node `to`.
    fn send(&mut self, to: NodeId, msg: SubstrateMsg);
}

/// One node's view of the DHT substrate its directory role runs on.
///
/// Object-safe on purpose: the substrate is chosen at runtime from
/// [`SubstrateKind`], so [`crate::node::DirRole`] holds a
/// `Box<dyn DhtSubstrate>` and the rest of the node is written against
/// this trait alone.
pub trait DhtSubstrate: std::fmt::Debug + Send {
    /// This role's position in the identifier space.
    fn key(&self) -> DhtKey;

    /// Start joining through `entry` (a live substrate member). The
    /// outcome stream later yields [`SubstrateEvent::JoinComplete`].
    fn join(&mut self, out: &mut dyn SubstrateOut, entry: NodeId);

    /// Route `query` toward the owner of `key`, starting locally. May
    /// deliver immediately (the outcome stream is the return value).
    fn route(
        &mut self,
        out: &mut dyn SubstrateOut,
        key: DhtKey,
        query: Query,
    ) -> Vec<SubstrateEvent>;

    /// Dispatch an incoming substrate message.
    fn dispatch(
        &mut self,
        out: &mut dyn SubstrateOut,
        from: NodeId,
        msg: SubstrateMsg,
    ) -> Vec<SubstrateEvent>;

    /// A message this role sent to `to` bounced (destination down):
    /// purge the dead peer and recover what can be recovered
    /// (re-route around the dead hop, flag lost join lookups).
    fn undeliverable(
        &mut self,
        out: &mut dyn SubstrateOut,
        to: NodeId,
        msg: SubstrateMsg,
        joining: bool,
    ) -> Vec<SubstrateEvent>;

    /// Drive periodic maintenance.
    fn maintenance(&mut self, out: &mut dyn SubstrateOut, tick: MaintTick);

    /// Whether this substrate makes use of `tick`. The node stops
    /// rescheduling the corresponding timer when it does not, so a
    /// substrate with no work on a tick costs no simulator events.
    fn wants_tick(&self, tick: MaintTick) -> bool {
        let _ = tick;
        true
    }

    /// Every peer this role currently knows (the D-ring piggybacks
    /// directory summaries and replica offers on this neighbourhood).
    fn known_peers(&self) -> Vec<PeerRef>;

    /// The neighbours a voluntary hand-off ships to the heir, enough
    /// for [`SubstrateKind::handoff_role`] to rebuild a working
    /// routing state at the same key.
    fn handoff_neighbors(&self) -> Vec<PeerRef>;

    /// Peers mentioned in `msg` that claim this role's exact key from
    /// a different underlay node — duplicate D-ring positions from
    /// racing §5.2 replacements. The node resolves the conflict
    /// (lowest node id stays).
    fn conflict_peers(&self, msg: &SubstrateMsg) -> Vec<PeerRef>;

    /// After a join: the underlay node that already owns this exact
    /// key, if the position turned out to be taken.
    fn position_taken_by(&self) -> Option<NodeId>;
}

// ---------------------------------------------------------------------
// Chord
// ---------------------------------------------------------------------

/// [`DhtSubstrate`] over the [`chord`] crate, routing with the
/// website-aware Algorithm 2 policy.
#[derive(Debug)]
pub struct ChordSubstrate {
    st: chord::ChordState,
    policy: DringPolicy,
}

impl ChordSubstrate {
    /// Wrap an existing Chord state (simulation bootstrap).
    pub fn new(st: chord::ChordState, scheme: KeyScheme) -> Self {
        ChordSubstrate {
            st,
            policy: DringPolicy::new(scheme),
        }
    }

    /// The underlying ring state (tests, inspection).
    pub fn chord_state(&self) -> &chord::ChordState {
        &self.st
    }
}

struct ChordOut<'a> {
    out: &'a mut dyn SubstrateOut,
}

impl chord::Transport<Query> for ChordOut<'_> {
    fn send_chord(&mut self, to: NodeId, msg: chord::ChordMsg<Query>) {
        self.out.send(to, SubstrateMsg::Chord(msg));
    }
}

fn chord_events(outcome: Option<chord::ChordOutcome<Query>>) -> Vec<SubstrateEvent> {
    match outcome {
        None => Vec::new(),
        Some(chord::ChordOutcome::Deliver { payload, hops, .. }) => {
            vec![SubstrateEvent::Deliver {
                query: payload,
                hops,
            }]
        }
        Some(chord::ChordOutcome::JoinComplete) => vec![SubstrateEvent::JoinComplete],
    }
}

impl DhtSubstrate for ChordSubstrate {
    fn key(&self) -> DhtKey {
        self.st.id()
    }

    fn join(&mut self, out: &mut dyn SubstrateOut, entry: NodeId) {
        let mut t = ChordOut { out };
        chord::start_join(&mut self.st, &mut t, entry);
    }

    fn route(
        &mut self,
        out: &mut dyn SubstrateOut,
        key: DhtKey,
        query: Query,
    ) -> Vec<SubstrateEvent> {
        let mut t = ChordOut { out };
        chord_events(chord::start_route(
            &mut self.st,
            &mut t,
            key,
            query,
            &self.policy,
        ))
    }

    fn dispatch(
        &mut self,
        out: &mut dyn SubstrateOut,
        from: NodeId,
        msg: SubstrateMsg,
    ) -> Vec<SubstrateEvent> {
        let SubstrateMsg::Chord(cm) = msg else {
            debug_assert!(false, "pastry message reached a chord role");
            return Vec::new();
        };
        let mut t = ChordOut { out };
        chord_events(chord::handle(&mut self.st, &mut t, from, cm, &self.policy))
    }

    fn undeliverable(
        &mut self,
        out: &mut dyn SubstrateOut,
        to: NodeId,
        msg: SubstrateMsg,
        joining: bool,
    ) -> Vec<SubstrateEvent> {
        let SubstrateMsg::Chord(cm) = msg else {
            return Vec::new();
        };
        chord::on_undeliverable(&mut self.st, to, &cm);
        let chord::ChordMsg::Route { key, hops, payload } = cm else {
            return Vec::new();
        };
        match payload {
            // Re-route the application payload around the dead hop.
            chord::RoutePayload::App(query) => {
                let me = self.st.me().node;
                let mut t = ChordOut { out };
                chord_events(chord::handle(
                    &mut self.st,
                    &mut t,
                    me,
                    chord::ChordMsg::Route {
                        key,
                        hops,
                        payload: chord::RoutePayload::App(query),
                    },
                    &self.policy,
                ))
            }
            chord::RoutePayload::FindSuccessor { requester, token } => {
                if requester.node == self.st.me().node {
                    // Our own lookup bounced. A lost join lookup must
                    // be retried through another entry point (the node
                    // picks it); a lost finger fix simply waits for
                    // the next period.
                    if joining && matches!(token, chord::LookupToken::Join) {
                        vec![SubstrateEvent::NeedRejoin]
                    } else {
                        Vec::new()
                    }
                } else if !joining {
                    // We were forwarding someone else's lookup and the
                    // next hop died: re-route around it so the lookup
                    // is not lost (§5.2 joins depend on it while the
                    // ring heals).
                    let me = self.st.me().node;
                    let mut t = ChordOut { out };
                    let _ = chord::handle(
                        &mut self.st,
                        &mut t,
                        me,
                        chord::ChordMsg::Route {
                            key,
                            hops,
                            payload: chord::RoutePayload::FindSuccessor { requester, token },
                        },
                        &self.policy,
                    );
                    Vec::new()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn maintenance(&mut self, out: &mut dyn SubstrateOut, tick: MaintTick) {
        let mut t = ChordOut { out };
        match tick {
            MaintTick::Stabilize => chord::start_stabilize(&mut self.st, &mut t),
            MaintTick::FixFinger => chord::start_fix_finger(&mut self.st, &mut t, &self.policy),
        }
    }

    fn known_peers(&self) -> Vec<PeerRef> {
        self.st.known_peers()
    }

    fn handoff_neighbors(&self) -> Vec<PeerRef> {
        let mut out = self.st.successors().to_vec();
        if let Some(p) = self.st.predecessor() {
            if out.iter().all(|q| q.node != p.node) {
                out.push(p);
            }
        }
        out
    }

    fn conflict_peers(&self, msg: &SubstrateMsg) -> Vec<PeerRef> {
        let SubstrateMsg::Chord(cm) = msg else {
            return Vec::new();
        };
        let me = self.st.me();
        let claims_my_key = |p: &PeerRef| p.id == me.id && p.node != me.node;
        match cm {
            chord::ChordMsg::Notify { peer } if claims_my_key(peer) => vec![*peer],
            chord::ChordMsg::NeighborsResp { pred, succs } => pred
                .iter()
                .chain(succs.iter())
                .filter(|p| claims_my_key(p))
                .copied()
                .collect(),
            _ => Vec::new(),
        }
    }

    fn position_taken_by(&self) -> Option<NodeId> {
        let me = self.st.me();
        self.st
            .successor()
            .filter(|s| s.id == me.id && s.node != me.node)
            .map(|s| s.node)
    }
}

// ---------------------------------------------------------------------
// Pastry
// ---------------------------------------------------------------------

/// [`DhtSubstrate`] over the [`pastry`] crate. No routing policy is
/// needed: Pastry's numerically-closest delivery already lands an
/// absent directory's key on a ring-adjacent directory, which the
/// D-ring id layout makes a same-website one (see
/// `crates/pastry/tests/dring_over_pastry.rs`) — Algorithm 2's goal
/// falls out of the delivery rule.
#[derive(Debug)]
pub struct PastrySubstrate {
    st: pastry::PastryState,
}

impl PastrySubstrate {
    /// Wrap an existing Pastry state (simulation bootstrap).
    pub fn new(st: pastry::PastryState) -> Self {
        PastrySubstrate { st }
    }

    /// The underlying mesh state (tests, inspection).
    pub fn pastry_state(&self) -> &pastry::PastryState {
        &self.st
    }
}

struct PastryOut<'a> {
    out: &'a mut dyn SubstrateOut,
}

impl pastry::proto::Transport<Query> for PastryOut<'_> {
    fn send_pastry(&mut self, to: NodeId, msg: pastry::PastryMsg<Query>) {
        self.out.send(to, SubstrateMsg::Pastry(msg));
    }
}

fn pastry_events(outcome: Option<pastry::PastryOutcome<Query>>) -> Vec<SubstrateEvent> {
    match outcome {
        None => Vec::new(),
        Some(pastry::PastryOutcome::Deliver { payload, hops, .. }) => {
            vec![SubstrateEvent::Deliver {
                query: payload,
                hops,
            }]
        }
        Some(pastry::PastryOutcome::JoinComplete) => vec![SubstrateEvent::JoinComplete],
    }
}

impl DhtSubstrate for PastrySubstrate {
    fn key(&self) -> DhtKey {
        self.st.me().id
    }

    fn join(&mut self, out: &mut dyn SubstrateOut, entry: NodeId) {
        let mut t = PastryOut { out };
        pastry::proto::start_join(&mut self.st, &mut t, entry);
    }

    fn route(
        &mut self,
        out: &mut dyn SubstrateOut,
        key: DhtKey,
        query: Query,
    ) -> Vec<SubstrateEvent> {
        let mut t = PastryOut { out };
        pastry_events(pastry::proto::start_route(&mut self.st, &mut t, key, query))
    }

    fn dispatch(
        &mut self,
        out: &mut dyn SubstrateOut,
        from: NodeId,
        msg: SubstrateMsg,
    ) -> Vec<SubstrateEvent> {
        let SubstrateMsg::Pastry(pm) = msg else {
            debug_assert!(false, "chord message reached a pastry role");
            return Vec::new();
        };
        let mut t = PastryOut { out };
        pastry_events(pastry::proto::handle(&mut self.st, &mut t, from, pm))
    }

    fn undeliverable(
        &mut self,
        out: &mut dyn SubstrateOut,
        to: NodeId,
        msg: SubstrateMsg,
        joining: bool,
    ) -> Vec<SubstrateEvent> {
        let SubstrateMsg::Pastry(pm) = msg else {
            return Vec::new();
        };
        pastry::proto::on_undeliverable(&mut self.st, to, &pm);
        let pastry::PastryMsg::Route { key, hops, payload } = pm else {
            return Vec::new();
        };
        match payload {
            // Re-route the application payload around the dead hop
            // (the purge above removed it from leaf sets and table).
            pastry::proto::RoutePayload::App(query) => {
                let me = self.st.me().node;
                let mut t = PastryOut { out };
                pastry_events(pastry::proto::handle(
                    &mut self.st,
                    &mut t,
                    me,
                    pastry::PastryMsg::Route {
                        key,
                        hops,
                        payload: pastry::proto::RoutePayload::App(query),
                    },
                ))
            }
            pastry::proto::RoutePayload::Join { joiner } => {
                if joiner.node == self.st.me().node {
                    // Our own join request bounced. Retry only while
                    // the join is still in flight; a bounce arriving
                    // after a successful retry is stale and dropped
                    // (mirroring the Chord lookup handling).
                    if joining {
                        vec![SubstrateEvent::NeedRejoin]
                    } else {
                        Vec::new()
                    }
                } else if !joining {
                    let me = self.st.me().node;
                    let mut t = PastryOut { out };
                    let _ = pastry::proto::handle(
                        &mut self.st,
                        &mut t,
                        me,
                        pastry::PastryMsg::Route {
                            key,
                            hops,
                            payload: pastry::proto::RoutePayload::Join { joiner },
                        },
                    );
                    Vec::new()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn maintenance(&mut self, out: &mut dyn SubstrateOut, tick: MaintTick) {
        match tick {
            MaintTick::Stabilize => {
                let mut t = PastryOut { out };
                pastry::proto::start_probe(&mut self.st, &mut t);
            }
            // The leaf exchange already refreshes the routing table.
            MaintTick::FixFinger => {}
        }
    }

    fn wants_tick(&self, tick: MaintTick) -> bool {
        // The leaf exchange covers routing-table refresh; a separate
        // fix-finger tick would be pure no-op simulator load.
        tick != MaintTick::FixFinger
    }

    fn known_peers(&self) -> Vec<PeerRef> {
        self.st.known_peers()
    }

    fn handoff_neighbors(&self) -> Vec<PeerRef> {
        self.st.known_peers()
    }

    fn conflict_peers(&self, msg: &SubstrateMsg) -> Vec<PeerRef> {
        let SubstrateMsg::Pastry(pm) = msg else {
            return Vec::new();
        };
        let me = self.st.me();
        let claims_my_key = |p: &PeerRef| p.id == me.id && p.node != me.node;
        match pm {
            pastry::PastryMsg::JoinResp {
                leaves,
                table_peers,
            } => leaves
                .iter()
                .chain(table_peers.iter())
                .filter(|p| claims_my_key(p))
                .copied()
                .collect(),
            pastry::PastryMsg::LeafResp { leaves } => leaves
                .iter()
                .filter(|p| claims_my_key(p))
                .copied()
                .collect(),
            pastry::PastryMsg::LeafProbe { from } if claims_my_key(from) => vec![*from],
            _ => Vec::new(),
        }
    }

    fn position_taken_by(&self) -> Option<NodeId> {
        let me = self.st.me();
        self.st
            .leaves()
            .find(|p| p.id == me.id && p.node != me.node)
            .map(|p| p.node)
    }
}

// ---------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------

/// Which DHT the D-ring runs on — a runtime configuration choice
/// carried in [`crate::config::FlowerConfig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SubstrateKind {
    /// Chord (the paper's simulated substrate; the default).
    #[default]
    Chord,
    /// Pastry (the paper's other named substrate).
    Pastry,
}

impl SubstrateKind {
    /// Parse `"chord"` or `"pastry"` (case-insensitive).
    pub fn parse(s: &str) -> Result<SubstrateKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "chord" => Ok(SubstrateKind::Chord),
            "pastry" => Ok(SubstrateKind::Pastry),
            other => Err(format!(
                "unknown substrate {other:?} (expected chord or pastry)"
            )),
        }
    }

    /// A fresh, not-yet-joined role at `me` (§5.2 replacement joins).
    pub fn fresh_role(self, scheme: KeyScheme, me: PeerRef) -> Box<dyn DhtSubstrate> {
        match self {
            SubstrateKind::Chord => Box::new(ChordSubstrate::new(
                chord::ChordState::new(me, chord::ChordConfig::default()),
                scheme,
            )),
            SubstrateKind::Pastry => Box::new(PastrySubstrate::new(pastry::PastryState::new(
                me,
                pastry::PastryConfig::default(),
            ))),
        }
    }

    /// Converged per-member roles over `members` — the stable network
    /// the paper's evaluation starts from (mirrors
    /// `chord::stable_ring` / `pastry::stable_mesh`). Returned in
    /// `members` order.
    pub fn stable_network(
        self,
        scheme: KeyScheme,
        members: &[PeerRef],
    ) -> Vec<Box<dyn DhtSubstrate>> {
        match self {
            SubstrateKind::Chord => chord::stable_ring(members, &chord::ChordConfig::default())
                .into_iter()
                .map(|st| Box::new(ChordSubstrate::new(st, scheme)) as Box<dyn DhtSubstrate>)
                .collect(),
            SubstrateKind::Pastry => pastry::stable_mesh(members, &pastry::PastryConfig::default())
                .into_iter()
                .map(|st| Box::new(PastrySubstrate::new(st)) as Box<dyn DhtSubstrate>)
                .collect(),
        }
    }

    /// A joined role at `me` rebuilt from a hand-off's neighbour list
    /// (§5.2 voluntary leave: the heir assumes the position).
    pub fn handoff_role(
        self,
        scheme: KeyScheme,
        me: PeerRef,
        neighbors: &[PeerRef],
    ) -> Box<dyn DhtSubstrate> {
        match self {
            SubstrateKind::Chord => {
                let mut st = chord::ChordState::new(me, chord::ChordConfig::default());
                let mut others: Vec<PeerRef> = neighbors
                    .iter()
                    .filter(|p| p.node != me.node)
                    .copied()
                    .collect();
                // Ring order around our key: clockwise distance sorts
                // the old successor list back into place; the closest
                // counter-clockwise neighbour is the predecessor.
                let pred = others
                    .iter()
                    .copied()
                    .min_by_key(|p| p.id.clockwise_distance(me.id));
                others.sort_by_key(|p| me.id.clockwise_distance(p.id));
                others.truncate(chord::ChordConfig::default().successor_list_len);
                st.install(pred, others, vec![None; DhtKey::BITS as usize]);
                Box::new(ChordSubstrate::new(st, scheme))
            }
            SubstrateKind::Pastry => {
                let mut st = pastry::PastryState::new(me, pastry::PastryConfig::default());
                for p in neighbors {
                    st.absorb_peer(*p);
                }
                Box::new(PastrySubstrate::new(st))
            }
        }
    }

    /// The wire message a plain client (no substrate role of its own)
    /// sends to a bootstrap directory to inject `query` into the
    /// D-ring toward `key`.
    pub fn client_entry_msg(self, key: DhtKey, query: Query) -> SubstrateMsg {
        match self {
            SubstrateKind::Chord => SubstrateMsg::Chord(chord::ChordMsg::Route {
                key,
                hops: 0,
                payload: chord::RoutePayload::App(query),
            }),
            SubstrateKind::Pastry => SubstrateMsg::Pastry(pastry::PastryMsg::Route {
                key,
                hops: 0,
                payload: pastry::proto::RoutePayload::App(query),
            }),
        }
    }
}

impl std::fmt::Display for SubstrateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubstrateKind::Chord => "chord",
            SubstrateKind::Pastry => "pastry",
        })
    }
}

/// Synchronous test drivers for substrate roles, shared by this
/// module's unit tests and integration tests in other crates
/// (`crates/pastry/tests/dring_over_pastry.rs`). Hidden from docs:
/// not part of the supported API.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Collects substrate sends for synchronous replay.
    #[derive(Default)]
    pub struct CollectOut {
        /// `(destination, message)` pairs in send order.
        pub sent: Vec<(NodeId, SubstrateMsg)>,
    }

    impl SubstrateOut for CollectOut {
        fn send(&mut self, to: NodeId, msg: SubstrateMsg) {
            self.sent.push((to, msg));
        }
    }

    /// Route `query` toward `key` from `roles[start]` (indexed in
    /// `members` order), pumping messages until the outcome stream
    /// yields a delivery. Returns `(member index, hops)`; panics if
    /// the query is lost or routing does not terminate.
    pub fn route_to_delivery(
        roles: &mut [Box<dyn DhtSubstrate>],
        members: &[PeerRef],
        start: usize,
        key: DhtKey,
        query: crate::msg::Query,
    ) -> (usize, u8) {
        let mut out = CollectOut::default();
        let mut pending = roles[start].route(&mut out, key, query);
        let mut at = start;
        let mut guard = 0;
        loop {
            for ev in pending.drain(..) {
                if let SubstrateEvent::Deliver { hops, .. } = ev {
                    return (at, hops);
                }
            }
            let Some((to, msg)) = out.sent.pop() else {
                panic!("query lost before delivery")
            };
            guard += 1;
            assert!(guard < 10_000, "routing storm");
            at = members
                .iter()
                .position(|m| m.node == to)
                .expect("route reached unknown node");
            pending = roles[at].dispatch(&mut out, NodeId(u32::MAX), msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::route_to_delivery;
    use super::*;
    use simnet::{Locality, SimTime};
    use workload::WebsiteId;

    fn scheme() -> KeyScheme {
        KeyScheme::new(8, 0)
    }

    fn query(key_ws: u16) -> Query {
        Query {
            id: 1,
            origin: NodeId(900),
            origin_locality: Locality(0),
            website: WebsiteId(key_ws),
            object: bloom::ObjectId(7),
            submitted_at: SimTime::ZERO,
            dir_hops: 0,
            holder_retries: 0,
        }
    }

    fn dring_members(websites: u16, localities: u16) -> Vec<PeerRef> {
        let s = scheme();
        let mut members = Vec::new();
        let mut idx = 0u32;
        for ws in 0..websites {
            for l in 0..localities {
                members.push(PeerRef {
                    id: s.key(WebsiteId(ws), Locality(l)),
                    node: NodeId(idx),
                });
                idx += 1;
            }
        }
        members
    }

    #[test]
    fn both_substrates_deliver_dring_keys_to_their_owners() {
        let members = dring_members(8, 4);
        for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
            let mut roles = kind.stable_network(scheme(), &members);
            for ws in 0..8u16 {
                for l in 0..4u16 {
                    let key = scheme().key(WebsiteId(ws), Locality(l));
                    let expect = members
                        .iter()
                        .position(|m| m.id == key)
                        .expect("directory exists");
                    let start = ((ws as usize) * 7 + l as usize) % members.len();
                    let (got, _) = route_to_delivery(&mut roles, &members, start, key, query(ws));
                    assert_eq!(
                        got, expect,
                        "{kind}: key for ws{ws}/loc{l} missed its owner"
                    );
                }
            }
        }
    }

    #[test]
    fn absent_keys_land_on_same_website_directories_under_both_substrates() {
        let s = scheme();
        // Website 3 has localities 0..4; route a key for locality 5.
        let members = dring_members(8, 4);
        let key = s.key(WebsiteId(3), Locality(5));
        for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
            let mut roles = kind.stable_network(s, &members);
            let (got, _) = route_to_delivery(&mut roles, &members, 0, key, query(3));
            assert!(
                s.same_website(members[got].id, key),
                "{kind}: absent key landed on the wrong website ({:?})",
                members[got].id
            );
        }
    }

    #[test]
    fn substrate_kind_parses_and_prints() {
        assert_eq!(SubstrateKind::parse("chord").unwrap(), SubstrateKind::Chord);
        assert_eq!(
            SubstrateKind::parse("Pastry").unwrap(),
            SubstrateKind::Pastry
        );
        assert!(SubstrateKind::parse("kademlia").is_err());
        assert_eq!(SubstrateKind::Chord.to_string(), "chord");
        assert_eq!(SubstrateKind::Pastry.to_string(), "pastry");
        assert_eq!(SubstrateKind::default(), SubstrateKind::Chord);
    }

    #[test]
    fn handoff_role_rebuilds_a_routable_position() {
        let members = dring_members(6, 3);
        let s = scheme();
        for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
            let roles = kind.stable_network(s, &members);
            // Node 4 hands off to a fresh node 100 at the same key.
            let neighbors = roles[4].handoff_neighbors();
            assert!(
                !neighbors.is_empty(),
                "{kind}: handoff must ship neighbours"
            );
            let heir = PeerRef {
                id: members[4].id,
                node: NodeId(100),
            };
            let role = kind.handoff_role(s, heir, &neighbors);
            assert_eq!(role.key(), members[4].id);
            assert!(
                !role.known_peers().is_empty(),
                "{kind}: heir must know its neighbourhood"
            );
        }
    }

    #[test]
    fn conflict_detection_sees_duplicate_positions() {
        let members = dring_members(4, 2);
        let s = scheme();
        for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
            let roles = kind.stable_network(s, &members);
            let me = members[0];
            let usurper = PeerRef {
                id: me.id,
                node: NodeId(77),
            };
            let msg = match kind {
                SubstrateKind::Chord => {
                    SubstrateMsg::Chord(chord::ChordMsg::Notify { peer: usurper })
                }
                SubstrateKind::Pastry => {
                    SubstrateMsg::Pastry(pastry::PastryMsg::LeafProbe { from: usurper })
                }
            };
            let conflicts = roles[0].conflict_peers(&msg);
            assert_eq!(
                conflicts,
                vec![usurper],
                "{kind}: duplicate position not flagged"
            );
            // Our own announcements are not conflicts.
            let own = match kind {
                SubstrateKind::Chord => SubstrateMsg::Chord(chord::ChordMsg::Notify { peer: me }),
                SubstrateKind::Pastry => {
                    SubstrateMsg::Pastry(pastry::PastryMsg::LeafProbe { from: me })
                }
            };
            assert!(roles[0].conflict_peers(&own).is_empty());
        }
    }

    #[test]
    fn carried_query_is_recoverable_from_both_wire_formats() {
        let q = query(2);
        let key = scheme().key(WebsiteId(2), Locality(0));
        for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
            let msg = kind.client_entry_msg(key, q);
            assert_eq!(msg.carried_query().map(|c| c.id), Some(q.id));
            assert!(msg.is_routing());
            assert!(msg.wire_size() > 0);
        }
    }
}
