//! The Flower-CDN protocol node: one state machine per underlay node,
//! combining up to three roles:
//!
//! * **directory peer** (§3) — a D-ring member with a pluggable DHT
//!   substrate role ([`DhtSubstrate`]: Chord or Pastry, chosen by
//!   configuration) and a [`DirectoryState`], processing queries per
//!   Algorithm 3;
//! * **content peer** (§4) — one [`ContentPeerState`] per supported
//!   website, gossiping, pushing and answering fetches;
//! * **origin server** — the website's web server, the fallback
//!   provider (always has every object of its site).
//!
//! Plus the client behaviour: submitting queries, collecting served
//! objects, joining overlays, and — per §5 — reacting to redirection
//! failures, directory failures (detection, jittered replacement,
//! conflict resolution) and locality changes.

use std::collections::HashMap;
use std::sync::Arc;

use bloom::ObjectId;
use gossip::PushPolicy;
use metrics::{Counter, Hist};
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::stats::ServedBy;
use simnet::{Ctx, Event, Locality, Message as _, NodeId, SimDuration, SimTime};
use workload::{Catalog, WebsiteId};

use crate::config::FlowerConfig;
use crate::content::ContentPeerState;
use crate::directory::{DirDecision, DirectoryState, NeighborSummary};
use crate::id::{instance_for, KeyScheme};
use crate::msg::{FlowerMsg, IndexSnapshotEntry, ProviderKind, Query};
use crate::substrate::{
    DhtSubstrate, MaintTick, PeerRef, SubstrateEvent, SubstrateMsg, SubstrateOut,
};

/// Timer kinds used by [`FlowerNode`].
pub mod timers {
    /// Gossip period elapsed for a content role (tag = website).
    pub const GOSSIP: u16 = 1;
    /// Keepalive period elapsed for a content role (tag = website).
    pub const KEEPALIVE: u16 = 2;
    /// Directory age tick (Algorithm 6 active behaviour).
    pub const DIR_TICK: u16 = 3;
    /// Substrate neighbour-maintenance tick (Chord: stabilize;
    /// Pastry: leaf probing).
    pub const STABILIZE: u16 = 4;
    /// Substrate routing-repair tick (Chord: fix one finger).
    pub const FIX_FINGER: u16 = 5;
    /// Jittered directory-replacement attempt (tag = website; §5.2).
    pub const REPLACE_DIR: u16 = 6;
    /// Watchdog for an in-flight §5.2 replacement join (tag =
    /// website): retries the join or stands down if a winner emerged.
    pub const JOIN_RETRY: u16 = 7;
    /// §8 active-replication round at a directory peer.
    pub const REPLICATE: u16 = 8;
    /// Pending-query timeout (tag = query id): fires when neither a
    /// serve nor a bounce arrived — the silent-loss/partition case
    /// the §5 synchronous failure signals cannot cover.
    pub const QUERY_TIMEOUT: u16 = 9;
}

/// Deployment-wide shared knowledge (who the origin servers are, how
/// to reach the D-ring). Everything here is public information a real
/// deployment would ship in client configuration.
#[derive(Debug)]
pub struct Deployment {
    /// Protocol parameters.
    pub cfg: FlowerConfig,
    /// The website/object universe.
    pub catalog: Catalog,
    /// The D-ring key layout.
    pub scheme: KeyScheme,
    /// Origin server node of each website (indexed by website id).
    pub servers: Vec<NodeId>,
    /// Well-known D-ring entry points for new clients and for §5.2
    /// replacement joins.
    pub bootstrap_dirs: Vec<NodeId>,
    /// §5.3 PetalUp: the deployed directory instances of every petal,
    /// indexed by instance. Like `servers` and `bootstrap_dirs`, this
    /// is the public deployment directory a real system would ship in
    /// client configuration; liveness and the *live* instance count
    /// remain protocol state.
    pub dir_instances: HashMap<(WebsiteId, Locality), Vec<NodeId>>,
}

impl Deployment {
    /// The origin server of `ws`.
    pub fn server_of(&self, ws: WebsiteId) -> NodeId {
        self.servers[ws.idx()]
    }

    /// The deployed directory node of petal `(ws, loc)` instance
    /// `instance`.
    pub fn instance_node(&self, ws: WebsiteId, loc: Locality, instance: u32) -> NodeId {
        self.dir_instances[&(ws, loc)][instance as usize]
    }
}

/// §5.3 PetalUp state of one directory instance within its petal.
#[derive(Debug)]
pub struct PetalState {
    /// This role's instance index (0 = the petal primary).
    pub instance: u32,
    /// Live instances of the petal. Authoritative at the primary,
    /// which runs the split/merge policy; siblings cache the count
    /// from the last `PetalActivate`/`PetalDeactivate`.
    pub live: u32,
    /// Whether this instance processes queries. The primary is always
    /// active; siblings activate on a split and go dormant on a merge
    /// (a dormant sibling forwards deliveries to the primary).
    pub active: bool,
    /// Last windowed query load reported per instance (index 0 = the
    /// primary's own window). Only maintained at the primary.
    pub sibling_loads: Vec<u64>,
    /// Merge back-off: ticks to wait after a resize before merging
    /// again — a resize resets the primary's window counter mid-way,
    /// so the very next tick would otherwise read an artificially
    /// quiet petal and fold a fresh split straight back.
    pub merge_hold: u8,
    /// Where this sibling last saw the petal primary: the sender of
    /// the most recent `PetalActivate`/`PetalDeactivate`. `None`
    /// falls back to the statically deployed instance-0 node. After a
    /// §5.2 primary replacement the new primary's resizes re-point
    /// this, so sibling load reports (and dormant relays) keep
    /// reaching whoever actually runs the split/merge policy instead
    /// of the deployed corpse.
    pub primary: Option<NodeId>,
    /// Instances that left for good (crashed mid-forward or retired
    /// voluntarily) — only the primary maintains this. A sibling role
    /// is never re-installed after the initial deployment, so a
    /// retired slot permanently caps how far the petal can split:
    /// re-activating it would silently black-hole its query share (an
    /// alive-but-roleless node produces no bounce to heal from).
    pub retired: Vec<bool>,
}

impl PetalState {
    fn new(instance: u32, instances: u32) -> Self {
        PetalState {
            instance,
            live: 1,
            active: instance == 0,
            sibling_loads: vec![0; instances as usize],
            merge_hold: 0,
            primary: None,
            retired: vec![false; instances as usize],
        }
    }

    /// The node this instance should address the petal primary at:
    /// the last observed primary, or the deployed instance-0 node
    /// before any resize was seen.
    pub fn primary_node(&self, deployed_primary: NodeId) -> NodeId {
        self.primary.unwrap_or(deployed_primary)
    }

    /// The largest power-of-two live count the petal can still reach:
    /// doubling stops at the first retired slot (assignments nest, so
    /// only contiguous power-of-two prefixes are usable).
    fn usable_instances(&self, instances: u32) -> u32 {
        let mut l = 1u32;
        while l * 2 <= instances
            && self.retired[l as usize..(l * 2) as usize]
                .iter()
                .all(|r| !*r)
        {
            l *= 2;
        }
        l
    }
}

/// The §5.3 split sizing: double `live` until the projected
/// per-instance share of `load` drops under `threshold` (clamped to
/// the deployed instance count).
fn sized_split(live: u32, instances: u32, load: u64, threshold: u64) -> u32 {
    let mut new_live = live;
    let mut projected = load;
    while new_live < instances && projected > threshold {
        new_live *= 2;
        projected /= 2;
    }
    new_live
}

/// The §5.3 shrink target when instance `below` left the petal: the
/// largest power-of-two live count that excludes it (nesting keeps
/// every surviving assignment valid).
fn shrunk_below(live: u32, below: u32) -> u32 {
    let mut new_live = live;
    while new_live > below {
        new_live /= 2;
    }
    new_live.max(1)
}

/// The directory role of a node.
#[derive(Debug)]
pub struct DirRole {
    /// D-ring position and routing state on the configured DHT
    /// substrate (Chord or Pastry).
    pub substrate: Box<dyn DhtSubstrate>,
    /// The directory itself.
    pub dir: DirectoryState,
    /// True while a §5.2 replacement join is still in flight.
    pub joining: bool,
    /// §5.3 PetalUp instance state.
    pub petal: PetalState,
}

/// A query this node originated and is still waiting on.
#[derive(Debug, Clone, Default)]
struct PendingQuery {
    /// Summary candidates already probed (includes bounced peers).
    tried: Vec<NodeId>,
    /// The query itself, kept for timeout-driven re-routing (only
    /// populated when `query_timeout` is configured).
    query: Option<Query>,
    /// Timeout-driven re-route attempts made so far.
    retries: u8,
}

/// The per-node protocol state machine. Implements
/// [`simnet::Node<FlowerMsg>`].
pub struct FlowerNode {
    shared: Arc<Deployment>,
    /// §5.4: a peer may detect a locality different from the
    /// topology's initial assignment.
    locality_override: Option<Locality>,
    /// The directory role, if this node is (or is becoming) a
    /// directory peer.
    pub(crate) dir_role: Option<DirRole>,
    /// Content-peer roles by website.
    pub(crate) content: HashMap<WebsiteId, ContentPeerState>,
    /// Which website this node is the origin server of.
    server_for: Option<WebsiteId>,
    /// Queries in flight that we originated.
    pending: HashMap<u64, PendingQuery>,
    /// Objects served before the admission decision arrived.
    parked_objects: HashMap<WebsiteId, Vec<ObjectId>>,
    /// Websites for which a replacement attempt is scheduled/running.
    replacing: std::collections::HashSet<WebsiteId>,
    /// Monotonic counters (observability / tests).
    pub stats: NodeCounters,
}

/// Per-node protocol counters, exposed for tests and harnesses.
#[derive(Debug, Default, Clone)]
pub struct NodeCounters {
    /// Queries this node submitted.
    pub queries_submitted: u64,
    /// Queries answered from the node's own cache.
    pub self_hits: u64,
    /// Objects this node served to other peers.
    pub serves: u64,
    /// Queries this node served as an origin server.
    pub server_hits: u64,
    /// Gossip exchanges initiated.
    pub gossips_started: u64,
    /// Pushes sent.
    pub pushes_sent: u64,
    /// Directory replacements completed by this node.
    pub replacements_won: u64,
    /// Directory replacement attempts abandoned (someone else won).
    pub replacements_lost: u64,
    /// §5.3 petal splits this node decided as a petal primary.
    pub petal_splits: u64,
    /// §5.3 petal merges this node decided as a petal primary.
    pub petal_merges: u64,
    /// Queries this directory instance forwarded to another instance
    /// of its petal (primary dispatch or dormant-sibling relay).
    pub petal_forwards: u64,
    /// Pending-query timeouts that fired on this node.
    pub query_timeouts: u64,
    /// Timed-out queries re-routed within the retry budget.
    pub query_retries: u64,
    /// Timed-out queries degraded to the origin server.
    pub query_origin_fallbacks: u64,
}

/// Adapter exposing the simulator context as the substrate's message
/// sink.
struct CtxTransport<'a, 'b> {
    ctx: &'a mut Ctx<'b, FlowerMsg>,
}

impl SubstrateOut for CtxTransport<'_, '_> {
    fn send(&mut self, to: NodeId, msg: SubstrateMsg) {
        self.ctx.send(to, FlowerMsg::Dht(msg));
    }
}

impl FlowerNode {
    /// A plain client node.
    pub fn client(shared: Arc<Deployment>) -> Self {
        FlowerNode {
            shared,
            locality_override: None,
            dir_role: None,
            content: HashMap::new(),
            server_for: None,
            pending: HashMap::new(),
            parked_objects: HashMap::new(),
            replacing: Default::default(),
            stats: NodeCounters::default(),
        }
    }

    /// An origin-server node for `ws`.
    pub fn server(shared: Arc<Deployment>, ws: WebsiteId) -> Self {
        let mut n = Self::client(shared);
        n.server_for = Some(ws);
        n
    }

    /// A directory-peer node for `(ws, loc)`, §5.3 instance
    /// `instance`, with a pre-installed substrate role (the paper's
    /// evaluation starts from a stable D-ring).
    pub fn directory(
        shared: Arc<Deployment>,
        ws: WebsiteId,
        loc: Locality,
        instance: u32,
        substrate: Box<dyn DhtSubstrate>,
    ) -> Self {
        let dir = DirectoryState::new(
            ws,
            loc,
            instance,
            shared.cfg.max_overlay,
            shared.cfg.t_dead,
            shared.catalog.objects_per_website(),
        );
        let petal = PetalState::new(instance, shared.scheme.instances() as u32);
        let mut n = Self::client(shared);
        n.dir_role = Some(DirRole {
            substrate,
            dir,
            joining: false,
            petal,
        });
        n
    }

    /// Is this node currently a directory peer?
    pub fn is_directory(&self) -> bool {
        self.dir_role.as_ref().is_some_and(|r| !r.joining)
    }

    /// The directory role, if any.
    pub fn dir_role(&self) -> Option<&DirRole> {
        self.dir_role.as_ref()
    }

    /// Mutable directory role (harness setup, e.g. staging a §5.3
    /// petal state before driving an administrative path).
    pub fn dir_role_mut(&mut self) -> Option<&mut DirRole> {
        self.dir_role.as_mut()
    }

    /// Is this node a content peer of `ws`?
    pub fn is_content_peer(&self, ws: WebsiteId) -> bool {
        self.content.contains_key(&ws)
    }

    /// The content role for `ws`, if any.
    pub fn content_role(&self, ws: WebsiteId) -> Option<&ContentPeerState> {
        self.content.get(&ws)
    }

    /// Any participant role at all (content or directory)?
    pub fn is_participant(&self) -> bool {
        self.is_directory() || !self.content.is_empty()
    }

    /// The locality this node considers itself in (§5.4 override or
    /// the topology's landmark measurement).
    fn my_locality(&self, ctx: &Ctx<'_, FlowerMsg>) -> Locality {
        self.locality_override
            .unwrap_or_else(|| ctx.locality(ctx.id()))
    }

    /// §5.4: the peer detects it moved to another locality. All
    /// content roles are dropped (contacts learn via `Moved` replies);
    /// held objects are parked so the rejoin pushes them to the new
    /// directory. A directory role is handed off first.
    pub fn change_locality(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, new: Locality) {
        if let Some(role) = &self.dir_role {
            if !role.joining {
                self.voluntary_dir_handoff(ctx);
            }
        }
        self.locality_override = Some(new);
        let mut websites: Vec<WebsiteId> = self.content.keys().copied().collect();
        websites.sort_unstable();
        for ws in websites {
            if let Some(cp) = self.content.remove(&ws) {
                let objs: Vec<ObjectId> = cp.objects().collect();
                self.parked_objects.entry(ws).or_default().extend(objs);
            }
        }
    }

    /// §5.2 voluntary leave: pick the youngest (most recently alive)
    /// index entry and transfer the directory to it.
    pub fn voluntary_dir_handoff(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) -> Option<NodeId> {
        let instance = self.dir_role.as_ref()?.petal.instance;
        if instance != 0 {
            // A §5.3 sibling instance has no hand-off protocol: it
            // returns its members to the petal primary (Admission
            // under live = 1; the primary re-admits and the next
            // split redistributes them) and tells the primary to
            // shrink the petal so forwards stop flowing here — the
            // node stays alive, so nothing would ever bounce.
            let me = ctx.id();
            self.repartition_members(ctx, me, 1);
            let role = self.dir_role.take().expect("checked above");
            let ws = role.dir.website();
            let loc = role.dir.locality();
            ctx.send(
                role.petal
                    .primary_node(self.shared.instance_node(ws, loc, 0)),
                FlowerMsg::PetalRetire {
                    website: ws,
                    locality: loc,
                    instance,
                },
            );
            return None;
        }
        let role = self.dir_role.take()?;
        let me = ctx.id();
        let seeded = role.dir.view_seed(1, me);
        {
            let mut m = ctx.metrics();
            m.incr(Counter::DirViewSeeds);
            m.record(Hist::DirViewSeedLen, seeded.len() as u64);
        }
        let target = seeded.first().copied();
        let Some(target) = target else {
            // Nobody to hand off to; the directory simply disappears
            // and §5.2 crash recovery will eventually elect a peer.
            return None;
        };
        let index = role
            .dir
            .snapshot()
            .into_iter()
            .map(|(peer, age, objects)| IndexSnapshotEntry { peer, age, objects })
            .collect();
        ctx.send(
            target,
            FlowerMsg::DirHandoff {
                website: role.dir.website(),
                locality: role.dir.locality(),
                index,
                neighbors: role.substrate.handoff_neighbors(),
                live: role.petal.live,
            },
        );
        Some(target)
    }

    // ------------------------------------------------------------------
    // Query origination
    // ------------------------------------------------------------------

    fn on_submit(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        qid: u64,
        ws: WebsiteId,
        object: ObjectId,
    ) {
        self.stats.queries_submitted += 1;
        ctx.query_stats().on_submit();
        let me = ctx.id();
        let query = Query {
            id: qid,
            origin: me,
            origin_locality: self.my_locality(ctx),
            website: ws,
            object,
            submitted_at: ctx.now(),
            dir_hops: 0,
            holder_retries: 0,
        };

        if let Some(cp) = self.content.get(&ws) {
            // Content-peer path (§3.4: subsequent queries bypass D-ring).
            if cp.has(object) {
                // Served from the local cache: no lookup, no transfer.
                self.content
                    .get_mut(&ws)
                    .expect("checked")
                    .touch_object(object);
                self.stats.self_hits += 1;
                let now = ctx.now();
                ctx.query_stats()
                    .on_resolved(now, me, 0, 0, ServedBy::OwnCache);
                return;
            }
            let candidates = cp.summary_candidates(object, &[]);
            if let Some(target) = candidates.first().copied() {
                self.pending.insert(
                    qid,
                    PendingQuery {
                        tried: vec![target],
                        query: self.shared.cfg.query_timeout.map(|_| query),
                        retries: 0,
                    },
                );
                self.arm_query_timeout(ctx, qid, 0);
                ctx.send(target, FlowerMsg::PeerFetch { query });
                return;
            }
            // §3.4: members use the content overlay *instead of* the
            // D-ring; with no summary match the query leaves the P2P
            // system (unless the dir-fallback variant is enabled).
            let fallback_dir = cp
                .directory()
                .filter(|_| self.shared.cfg.member_dir_fallback);
            self.track_pending(ctx, query);
            if let Some(dir) = fallback_dir {
                ctx.send(dir, FlowerMsg::ClientQuery { query });
                return;
            }
            ctx.send(self.shared.server_of(ws), FlowerMsg::ServerQuery { query });
            return;
        }

        // New-client path: route through the D-ring (§3.4).
        self.track_pending(ctx, query);
        self.route_via_dring(ctx, query);
    }

    /// Register `query` in the pending map and arm its timeout (when
    /// configured).
    fn track_pending(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query) {
        self.pending.insert(
            query.id,
            PendingQuery {
                tried: Vec::new(),
                query: self.shared.cfg.query_timeout.map(|_| query),
                retries: 0,
            },
        );
        self.arm_query_timeout(ctx, query.id, 0);
    }

    /// Arm the pending-query timeout for attempt number `retries`
    /// (exponential backoff: the base timeout doubles per attempt).
    /// A no-op when `query_timeout` is `None` — the paper's base
    /// system, which relies purely on synchronous bounces.
    fn arm_query_timeout(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, qid: u64, retries: u8) {
        if let Some(t) = self.shared.cfg.query_timeout {
            let delay = SimDuration::from_ms(t.as_ms() << retries.min(5));
            ctx.set_timer(delay, timers::QUERY_TIMEOUT, qid);
        }
    }

    /// A pending query heard nothing — no serve, no bounce — for a
    /// whole timeout window: partitions and silent loss leave exactly
    /// this trace. Re-route within the retry budget (a sibling petal
    /// instance where §5.3 provides one, else a fresh D-ring entry),
    /// then degrade to the origin server, which is reachable whenever
    /// the client's own uplink works.
    fn on_query_timeout(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, qid: u64) {
        let Some(p) = self.pending.get_mut(&qid) else {
            // Resolved in the meantime: the timer outlived the query.
            return;
        };
        let Some(query) = p.query else {
            return;
        };
        p.retries += 1;
        let retries = p.retries;
        self.stats.query_timeouts += 1;
        ctx.metrics().incr(Counter::DirQueryTimeouts);
        if retries <= self.shared.cfg.query_retry_budget {
            self.stats.query_retries += 1;
            ctx.metrics().incr(Counter::DirQueryRetries);
            self.arm_query_timeout(ctx, qid, retries);
            self.reroute_query(ctx, query, retries);
        } else {
            // Retry budget exhausted: graceful degradation. Counted
            // as a miss by the hit-ratio series, but the user is
            // served — availability over locality.
            self.stats.query_origin_fallbacks += 1;
            ctx.metrics().incr(Counter::DirQueryOriginFallbacks);
            self.arm_query_timeout(ctx, qid, retries);
            ctx.send(
                self.shared.server_of(query.website),
                FlowerMsg::ServerQuery { query },
            );
        }
    }

    /// Timeout-driven re-route of attempt `attempt`: with §5.3
    /// instance bits the query walks to the *next* sibling petal
    /// instance (a deterministic rotation from the client's
    /// hash-assigned one); on the flat D-ring it re-enters through a
    /// freshly drawn bootstrap directory.
    fn reroute_query(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query, attempt: u8) {
        let instances = self.shared.scheme.instances() as u32;
        if instances > 1 {
            let base = instance_for(query.origin, instances);
            let instance = (base + attempt as u32) % instances;
            self.route_via_dring_instance(ctx, query, instance);
        } else {
            self.route_via_dring(ctx, query);
        }
    }

    /// Route a query into the D-ring toward `d_{ws,loc}` — or, with
    /// §5.3 instance bits, toward the client's hash-assigned instance
    /// `d_{ws,loc,i}`. The instance choice is a pure function of the
    /// client id over the *deployed* instance set; if the chosen
    /// instance is dormant it relays to the petal primary, which
    /// re-dispatches over the live set (the nesting property of
    /// [`instance_for`] keeps the two consistent).
    fn route_via_dring(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query) {
        let instance = instance_for(query.origin, self.shared.scheme.instances() as u32);
        self.route_via_dring_instance(ctx, query, instance);
    }

    /// As [`FlowerNode::route_via_dring`], but toward an explicit
    /// petal instance (timeout re-routes rotate through siblings).
    fn route_via_dring_instance(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        query: Query,
        instance: u32,
    ) {
        let scheme = self.shared.scheme;
        let key = scheme.key_with_instance(query.website, query.origin_locality, instance);
        // If we are ourselves on the D-ring (and fully joined), route
        // from here; a node mid-join has no usable routing state yet.
        if self.dir_role.as_ref().is_some_and(|r| !r.joining) {
            let role = self.dir_role.as_mut().expect("checked");
            let mut t = CtxTransport { ctx };
            let events = role.substrate.route(&mut t, key, query);
            self.on_substrate_events(ctx, events);
            return;
        }
        // Otherwise enter through a random well-known directory peer.
        let entry = *self
            .shared
            .bootstrap_dirs
            .choose(ctx.rng())
            .expect("deployment has at least one bootstrap directory");
        ctx.send(
            entry,
            FlowerMsg::Dht(self.shared.cfg.substrate.client_entry_msg(key, query)),
        );
    }

    // ------------------------------------------------------------------
    // Directory-side query processing (Algorithm 3)
    // ------------------------------------------------------------------

    fn dir_process_query(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query) {
        let me = ctx.id();
        let Some(role) = &mut self.dir_role else {
            // Not a directory (e.g. we abdicated moments ago): let the
            // origin server handle it rather than dropping the query.
            ctx.send(
                self.shared.server_of(query.website),
                FlowerMsg::ServerQuery { query },
            );
            return;
        };
        if role.dir.website() != query.website {
            // Cross-website delivery can only happen when the whole
            // website block is absent from D-ring; fall back (§3.4).
            ctx.send(
                self.shared.server_of(query.website),
                FlowerMsg::ServerQuery { query },
            );
            return;
        }

        // §5.3 PetalUp dispatch. A dormant sibling instance never
        // processes: it relays to the petal primary, the one node that
        // knows the live instance count. The primary re-selects the
        // owning instance as a pure function of (origin id, live set)
        // and hands the query over when it is not instance 0's.
        if !role.petal.active {
            let primary = role.petal.primary_node(self.shared.instance_node(
                query.website,
                role.dir.locality(),
                0,
            ));
            self.stats.petal_forwards += 1;
            ctx.send(primary, FlowerMsg::ClientQuery { query });
            return;
        }
        if role.petal.instance == 0
            && role.petal.live > 1
            && role.dir.locality() == query.origin_locality
        {
            let owner = instance_for(query.origin, role.petal.live);
            if owner != 0 {
                let sibling = self
                    .shared
                    .instance_node(query.website, role.dir.locality(), owner);
                self.stats.petal_forwards += 1;
                ctx.send(sibling, FlowerMsg::ClientQuery { query });
                return;
            }
        }

        // Optimistic admission (§3.4) happens at the origin's own
        // locality directory only.
        let admits_here =
            role.dir.locality() == query.origin_locality && !role.dir.contains(query.origin);
        role.dir.note_query();
        role.dir.note_request(query.object);
        let max_hops = self.shared.cfg.max_dir_hops;
        let decision = role.dir.process(
            ctx.rng(),
            query.object,
            query.origin,
            max_hops,
            query.dir_hops,
        );
        ctx.metrics().incr(Counter::DirProcess);
        if role.dir.locality() == query.origin_locality {
            let admitted = role.dir.admit_or_refresh(query.origin, query.object);
            if admits_here {
                let view_seed = role.dir.view_seed(8, query.origin);
                let mut m = ctx.metrics();
                m.incr(Counter::DirViewSeeds);
                m.record(Hist::DirViewSeedLen, view_seed.len() as u64);
                ctx.send(
                    query.origin,
                    FlowerMsg::Admission {
                        website: query.website,
                        locality: role.dir.locality(),
                        admitted,
                        dir: me,
                        petal_live: role.petal.live,
                        view_seed,
                    },
                );
            }
        }
        match decision {
            DirDecision::ToHolder(h) => {
                ctx.metrics().incr(Counter::DirToHolder);
                ctx.send(h, FlowerMsg::RedirectToHolder { query });
            }
            DirDecision::ToDirectory(d) => {
                ctx.metrics().incr(Counter::DirToDirectory);
                let mut q = query;
                q.dir_hops += 1;
                ctx.send(d, FlowerMsg::SummaryRedirect { query: q });
            }
            DirDecision::ToServer => {
                ctx.metrics().incr(Counter::DirToServer);
                ctx.send(
                    self.shared.server_of(query.website),
                    FlowerMsg::ServerQuery { query },
                );
            }
        }
        self.maybe_split_on_load(ctx);
        self.maybe_broadcast_summary(ctx);
    }

    /// Event-driven half of the §5.3 split policy: the moment a petal
    /// primary's windowed load crosses the split threshold it resizes,
    /// rather than waiting out the rest of the tick window — a hot
    /// website's first load wave otherwise lands entirely on one
    /// instance. (The tick-driven policy still handles sibling-peak
    /// splits and all merges.)
    fn maybe_split_on_load(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let instances = self.shared.scheme.instances() as u32;
        if instances <= 1 {
            return;
        }
        let me = ctx.id();
        let threshold = self.shared.cfg.petal_split_threshold;
        let Some(role) = &self.dir_role else {
            return;
        };
        let usable = role.petal.usable_instances(instances);
        if role.joining || role.petal.instance != 0 || role.petal.live >= usable {
            return;
        }
        let window = role.dir.load().window_queries;
        if window <= threshold {
            return;
        }
        let new_live = sized_split(role.petal.live, usable, window, threshold);
        self.resize_petal(ctx, me, new_live);
    }

    /// §4.2.1: if enough of the index changed, send a refreshed
    /// directory summary to the same-website directory peers we know
    /// through the routing table.
    fn maybe_broadcast_summary(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let scheme = self.shared.scheme;
        let threshold = self.shared.cfg.summary_refresh_threshold;
        let me = ctx.id();
        let Some(role) = &mut self.dir_role else {
            return;
        };
        let Some(summary) = role.dir.take_summary_refresh(threshold) else {
            return;
        };
        let my_id = role.substrate.key();
        let ws = role.dir.website();
        let loc = role.dir.locality();
        let neighbours: Vec<NodeId> = role
            .substrate
            .known_peers()
            .into_iter()
            .filter(|p| p.node != me && scheme.same_website(p.id, my_id))
            .map(|p| p.node)
            .collect();
        for n in neighbours {
            ctx.send(
                n,
                FlowerMsg::DirSummary {
                    website: ws,
                    locality: loc,
                    dir_id: my_id,
                    summary: summary.clone(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Serving
    // ------------------------------------------------------------------

    /// Serve `query` from this node's cache (content peer) or as the
    /// origin server.
    fn serve(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query, provider: ProviderKind) {
        let size = self.shared.catalog.object_size(query.object);
        let view_seed = match provider {
            ProviderKind::ContentPeer => {
                self.stats.serves += 1;
                self.content
                    .get(&query.website)
                    .map(|cp| {
                        cp.view()
                            .select_subset(ctx.rng(), 8)
                            .into_iter()
                            .map(|e| e.peer)
                            .collect()
                    })
                    .unwrap_or_default()
            }
            ProviderKind::OriginServer => {
                self.stats.server_hits += 1;
                ctx.gauge("server_load", 1.0);
                Vec::new()
            }
        };
        let now = ctx.now();
        ctx.send(
            query.origin,
            FlowerMsg::ServeObject {
                query,
                resolved_at: now,
                provider,
                size,
                view_seed,
            },
        );
    }

    fn on_serve_object(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        from: NodeId,
        query: Query,
        resolved_at: SimTime,
        provider: ProviderKind,
        view_seed: Vec<NodeId>,
    ) {
        if self.pending.remove(&query.id).is_none() {
            // Duplicate serve (e.g. a retry raced a slow holder): the
            // metrics already counted this query.
            return;
        }
        let me = ctx.id();
        let lookup_ms = resolved_at.since(query.submitted_at).as_ms();
        let transfer_ms = ctx.latency_ms(me, from);
        let served_by = match provider {
            ProviderKind::OriginServer => ServedBy::OriginServer,
            ProviderKind::ContentPeer => {
                if ctx.locality(from) == self.my_locality(ctx) {
                    ServedBy::LocalOverlay
                } else {
                    ServedBy::RemoteOverlay
                }
            }
        };
        let now = ctx.now();
        ctx.query_stats()
            .on_resolved(now, me, lookup_ms, transfer_ms, served_by);

        // Keep the object (§4.1: "after being served, p keeps its copy
        // of o for subsequent requests").
        let provider_locality = ctx.locality(from);
        if let Some(cp) = self.content.get_mut(&query.website) {
            cp.insert_object(query.object);
            // View seeds only make sense from our own overlay (§4.2:
            // the serving peer A and the client F share an overlay);
            // a remote-overlay or server provider contributes none.
            if !view_seed.is_empty() && provider_locality == cp.locality() {
                cp.seed_view(&view_seed, me);
            }
            self.maybe_push(ctx, query.website);
        } else {
            // Not (yet) a member: park until the admission decision.
            let parked = self.parked_objects.entry(query.website).or_default();
            if !parked.contains(&query.object) {
                parked.push(query.object);
            }
            if !view_seed.is_empty() {
                // Remember contacts for the moment we join.
                // (Seeding happens in on_admission.)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_admission(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        ws: WebsiteId,
        locality: Locality,
        admitted: bool,
        dir: NodeId,
        petal_live: u32,
        view_seed: Vec<NodeId>,
    ) {
        if !admitted {
            self.parked_objects.remove(&ws);
            return;
        }
        let me = ctx.id();
        let cfg = &self.shared.cfg;
        // A stale admission from an overlay we no longer belong to
        // (e.g. after a §5.4 move) must not resurrect the old role.
        if locality != self.my_locality(ctx) {
            return;
        }
        // An admission into a different locality's overlay than the
        // role we hold means we moved: start a fresh role.
        if self
            .content
            .get(&ws)
            .is_some_and(|cp| cp.locality() != locality)
        {
            self.content.remove(&ws);
        }
        let is_new = !self.content.contains_key(&ws);
        let cp = self.content.entry(ws).or_insert_with(|| {
            ContentPeerState::with_cache(
                ws,
                locality,
                cfg.v_gossip,
                self.shared.catalog.objects_per_website(),
                crate::cache::CacheManager::new(cfg.cache_policy, cfg.cache_capacity.max(1)),
            )
        });
        let prev_dir = cp.directory();
        cp.set_directory(dir);
        cp.set_petal_live(petal_live);
        if prev_dir.is_some_and(|d| d != dir) {
            // §5.3 re-pointing (petal split/merge): our entry at the
            // new instance starts empty, so flag everything held as
            // unreported — the push below rebuilds it in full.
            cp.mark_all_dirty();
        }
        cp.seed_view(&view_seed, me);
        if let Some(parked) = self.parked_objects.remove(&ws) {
            for o in parked {
                cp.insert_object(o);
            }
        }
        if is_new {
            // One sample per join: integrating this gauge over time
            // gives the participant count for Figure 5.
            ctx.gauge("joins", 1.0);
            // Stagger periodic behaviour so overlays do not beat in
            // lock-step.
            let g = ctx.rng().gen_range(0..cfg.t_gossip.as_ms().max(1));
            ctx.set_timer(SimDuration::from_ms(g), timers::GOSSIP, ws.0 as u64);
            let k = ctx.rng().gen_range(0..cfg.keepalive_period.as_ms().max(1));
            ctx.set_timer(SimDuration::from_ms(k), timers::KEEPALIVE, ws.0 as u64);
        }
        self.maybe_push(ctx, ws);
    }

    // ------------------------------------------------------------------
    // Gossip & push (Algorithms 4–6)
    // ------------------------------------------------------------------

    fn on_gossip_timer(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId) {
        let l_gossip = self.shared.cfg.l_gossip;
        let t_gossip = self.shared.cfg.t_gossip;
        let Some(cp) = self.content.get_mut(&ws) else {
            return;
        };
        if let Some(target) = cp.gossip_tick() {
            let cached = cp.summary_is_cached();
            let payload = cp.build_gossip(ctx.rng(), l_gossip);
            self.stats.gossips_started += 1;
            let msg = FlowerMsg::GossipReq(payload);
            {
                let mut m = ctx.metrics();
                m.incr(Counter::GossipExchanges);
                m.record(Hist::GossipPayloadBytes, msg.wire_size() as u64);
                m.incr(if cached {
                    Counter::BloomCowClones
                } else {
                    Counter::BloomRebuilds
                });
            }
            ctx.send(target, msg);
        }
        ctx.set_timer(t_gossip, timers::GOSSIP, ws.0 as u64);
    }

    fn on_gossip_req(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        from: NodeId,
        payload: crate::msg::GossipPayload,
    ) {
        let ws = payload.website;
        let l_gossip = self.shared.cfg.l_gossip;
        let me = ctx.id();
        match self.content.get_mut(&ws) {
            // Overlays are scoped by (website, locality): only
            // same-overlay exchanges are answered.
            Some(cp) if cp.locality() == payload.locality => {
                let cached = cp.summary_is_cached();
                let reply = cp.build_gossip(ctx.rng(), l_gossip);
                let msg = FlowerMsg::GossipResp(reply);
                {
                    let mut m = ctx.metrics();
                    m.record(Hist::GossipPayloadBytes, msg.wire_size() as u64);
                    m.incr(if cached {
                        Counter::BloomCowClones
                    } else {
                        Counter::BloomRebuilds
                    });
                }
                ctx.send(from, msg);
                cp.absorb_gossip(me, from, payload, self.shared.cfg.t_dead);
                self.pin_own_directory(me, ws);
                self.pin_petal_directory(me, ws);
            }
            // We are not (any more) in this overlay: §5.4 — the
            // contact should forget us.
            _ => ctx.send(from, FlowerMsg::Moved { website: ws }),
        }
    }

    /// Invariant repair: a node that *is* the directory of its
    /// overlay must never be talked out of it by stale gossip hints
    /// (a §5.2/§5.2-handoff heir can receive hints that still point
    /// to its predecessor).
    fn pin_own_directory(&mut self, me: NodeId, ws: WebsiteId) {
        let Some(role) = &self.dir_role else { return };
        if role.joining || role.dir.website() != ws {
            return;
        }
        let loc = role.dir.locality();
        if let Some(cp) = self.content.get_mut(&ws) {
            if cp.locality() == loc && cp.directory() != Some(me) {
                cp.set_directory(me);
            }
        }
    }

    // ------------------------------------------------------------------
    // §5.3 PetalUp: load-adaptive directory instances per petal
    // ------------------------------------------------------------------

    /// Invariant repair for members of a split petal: gossip hints
    /// point at whatever directory the sender believes in, which in a
    /// multi-instance petal is frequently a *sibling* instance. A
    /// member that knows its petal runs `live > 1` instances re-derives
    /// its hash-assigned instance and pins its directory there.
    fn pin_petal_directory(&mut self, me: NodeId, ws: WebsiteId) {
        if self.shared.scheme.instances() <= 1 {
            return;
        }
        let Some(cp) = self.content.get_mut(&ws) else {
            return;
        };
        let live = cp.petal_live();
        if live <= 1 {
            return;
        }
        let assigned = self
            .shared
            .instance_node(ws, cp.locality(), instance_for(me, live));
        if assigned != me && cp.directory().is_some_and(|d| d != assigned) {
            cp.set_directory(assigned);
        }
    }

    /// One directory-tick of the §5.3 split/merge policy. Siblings
    /// report their window to the primary; the primary folds its own
    /// window in and grows the petal when any live instance ran hot,
    /// or shrinks it when the whole petal went quiet. Every decision
    /// is a pure function of per-node protocol state, so it is
    /// identical under any engine shard layout.
    fn petal_policy_tick(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let instances = self.shared.scheme.instances() as u32;
        let me = ctx.id();
        let Some(role) = &mut self.dir_role else {
            return;
        };
        if role.joining {
            return;
        }
        let window = role.dir.take_window_queries();
        if instances <= 1 {
            return;
        }
        let ws = role.dir.website();
        let loc = role.dir.locality();
        if role.petal.instance != 0 {
            if role.petal.active {
                // Report to the *current* primary (last resize
                // sender), not the statically deployed node — after a
                // §5.2 replacement the deployed node is a corpse and
                // load-driven split/merge would go blind.
                let primary = role
                    .petal
                    .primary_node(self.shared.instance_node(ws, loc, 0));
                ctx.send(
                    primary,
                    FlowerMsg::PetalLoad {
                        website: ws,
                        locality: loc,
                        instance: role.petal.instance,
                        queries: window,
                    },
                );
            }
            return;
        }
        role.petal.sibling_loads[0] = window;
        let live = role.petal.live;
        let usable = role.petal.usable_instances(instances);
        let loads = &role.petal.sibling_loads[..live as usize];
        let peak = loads.iter().copied().max().unwrap_or(0);
        let total: u64 = loads.iter().sum();
        let held = role.petal.merge_hold > 0;
        if held {
            role.petal.merge_hold -= 1;
        }
        let cfg = &self.shared.cfg;
        if live < usable && peak > cfg.petal_split_threshold {
            // Size the split to the overload: a petal at 4× the
            // threshold jumps straight to 4 instances instead of
            // losing a window per doubling.
            let new_live = sized_split(live, usable, peak, cfg.petal_split_threshold);
            self.resize_petal(ctx, me, new_live);
        } else if !held && live > 1 && total < cfg.petal_merge_floor {
            self.resize_petal(ctx, me, live / 2);
        }
    }

    /// Primary-side petal resize to `new_live` instances: informs the
    /// siblings (activation with the new live count, or deactivation
    /// with re-pointing duty), then re-points the primary's own moved
    /// members. State travels by protocol — moved members push their
    /// content to their new instance themselves.
    fn resize_petal(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, me: NodeId, new_live: u32) {
        let shared = Arc::clone(&self.shared);
        let Some(role) = &mut self.dir_role else {
            return;
        };
        let ws = role.dir.website();
        let loc = role.dir.locality();
        let old_live = role.petal.live;
        let new_live = new_live.max(1);
        if new_live == old_live {
            return;
        }
        // Every sibling below the new live count learns it. On a
        // split the dormant ones activate and the already-active ones
        // re-partition under the larger set; on a merge the survivors
        // need the shrunk count too — their admissions advertise it,
        // and a stale value would pin members to deactivated
        // instances. (`usable_instances` guarantees none of these
        // slots is retired.)
        for inst in 1..new_live {
            ctx.send(
                shared.instance_node(ws, loc, inst),
                FlowerMsg::PetalActivate {
                    website: ws,
                    locality: loc,
                    live: new_live,
                },
            );
        }
        if new_live > old_live {
            self.stats.petal_splits += 1;
            ctx.metrics().incr(Counter::DirPetalSplits);
        } else {
            self.stats.petal_merges += 1;
            ctx.metrics().incr(Counter::DirPetalMerges);
            for inst in new_live..old_live {
                ctx.send(
                    shared.instance_node(ws, loc, inst),
                    FlowerMsg::PetalDeactivate {
                        website: ws,
                        locality: loc,
                        live: new_live,
                    },
                );
            }
            for stale in &mut role.petal.sibling_loads[new_live as usize..old_live as usize] {
                *stale = 0;
            }
        }
        role.petal.live = new_live;
        // The windowed counter restarts with the new layout (the
        // event-driven trigger would otherwise keep escalating on the
        // pre-split cumulative count), and merges back off for a
        // couple of full windows.
        role.dir.take_window_queries();
        role.petal.merge_hold = 2;
        self.repartition_members(ctx, me, new_live);
    }

    /// Re-point every indexed member whose hash assignment under
    /// `live` instances is another instance of this petal: each gets a
    /// fresh `Admission` naming its new directory, upon which it
    /// re-pushes its full content there (`mark_all_dirty`). Entries at
    /// this instance are left to age out — they still describe real
    /// holders, so Algorithm 3 keeps using them meanwhile.
    fn repartition_members(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, me: NodeId, live: u32) {
        let shared = Arc::clone(&self.shared);
        let Some(role) = &mut self.dir_role else {
            return;
        };
        let ws = role.dir.website();
        let loc = role.dir.locality();
        let my_inst = role.petal.instance;
        let mut movers: Vec<(NodeId, u32)> = role
            .dir
            .members()
            .filter(|m| *m != me)
            .map(|m| (m, instance_for(m, live)))
            .filter(|(_, owner)| *owner != my_inst)
            .collect();
        movers.sort_unstable_by_key(|(m, _)| m.0);
        for (m, owner) in movers {
            ctx.send(
                m,
                FlowerMsg::Admission {
                    website: ws,
                    locality: loc,
                    admitted: true,
                    dir: shared.instance_node(ws, loc, owner),
                    petal_live: live,
                    view_seed: Vec::new(),
                },
            );
        }
    }

    /// A query forwarded to a sibling instance bounced: the sibling is
    /// dead. Shrink the petal below the dead instance (the power-of-two
    /// nesting keeps every surviving assignment valid) so traffic
    /// stops flowing at the corpse. Returns true when handled.
    fn petal_sibling_down(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        dead: NodeId,
        ws: WebsiteId,
    ) -> bool {
        let me = ctx.id();
        let Some(role) = &self.dir_role else {
            return false;
        };
        if role.petal.instance != 0 || role.petal.live <= 1 || role.dir.website() != ws {
            return false;
        }
        let loc = role.dir.locality();
        let live = role.petal.live;
        let Some(dead_inst) = (1..live).find(|i| self.shared.instance_node(ws, loc, *i) == dead)
        else {
            return false;
        };
        // A crashed sibling never gets its role back (NodeUp wipes
        // volatile state): cap the petal below it for good instead of
        // re-splitting over the corpse and thrashing on every bounce.
        if let Some(role) = &mut self.dir_role {
            role.petal.retired[dead_inst as usize] = true;
        }
        self.resize_petal(ctx, me, shrunk_below(live, dead_inst));
        true
    }

    fn maybe_push(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId) {
        let policy = PushPolicy::new(self.shared.cfg.push_threshold);
        let Some(cp) = self.content.get_mut(&ws) else {
            return;
        };
        let Some(dir) = cp.directory() else { return };
        let Some((added, removed)) = cp.take_push(policy) else {
            return;
        };
        cp.reset_dir_age();
        self.stats.pushes_sent += 1;
        if dir == ctx.id() {
            // We are the directory ourselves (post-§5.2 takeover).
            if let Some(role) = &mut self.dir_role {
                role.dir.apply_push(dir, &added, &removed);
            }
            return;
        }
        ctx.send(
            dir,
            FlowerMsg::Push {
                website: ws,
                added,
                removed,
            },
        );
    }

    fn on_keepalive_timer(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId) {
        let period = self.shared.cfg.keepalive_period;
        let me = ctx.id();
        self.pin_own_directory(me, ws);
        if let Some(cp) = self.content.get_mut(&ws) {
            if let Some(dir) = cp.directory() {
                if dir != me {
                    // One-way probe for the *directory's* failure
                    // detection (§5.1); it does not refresh our own
                    // knowledge of the directory — only pushes and
                    // gossip hints do (§4.2.1).
                    ctx.send(dir, FlowerMsg::KeepAlive { website: ws });
                }
            }
            ctx.set_timer(period, timers::KEEPALIVE, ws.0 as u64);
        }
    }

    // ------------------------------------------------------------------
    // Directory failure handling (§5.2)
    // ------------------------------------------------------------------

    /// A message to our directory bounced: forget it and schedule a
    /// jittered replacement attempt.
    fn on_dir_unreachable(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId, dead: NodeId) {
        let jitter_ms = self.shared.cfg.dir_replacement_jitter.as_ms().max(1);
        if let Some(cp) = self.content.get_mut(&ws) {
            if cp.directory() == Some(dead) {
                cp.clear_directory();
                // §5.3: stop pinning to a hash-assigned instance that
                // may be the dead node; fall back to hint-following
                // until a fresh admission re-announces the live count.
                cp.set_petal_live(1);
            }
            cp.forget_peer(dead);
            if self.replacing.insert(ws) {
                let j = ctx.rng().gen_range(0..jitter_ms);
                ctx.set_timer(SimDuration::from_ms(j), timers::REPLACE_DIR, ws.0 as u64);
            }
        }
    }

    fn on_replace_dir_timer(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId) {
        self.replacing.remove(&ws);
        let me = ctx.id();
        let Some(cp) = self.content.get(&ws) else {
            return;
        };
        if cp.directory().is_some() {
            // Gossip already told us about a replacement.
            return;
        }
        if self.dir_role.is_some() {
            // Base design: one D-ring position per node; leave the
            // take-over to another overlay member.
            return;
        }
        // §5.2: adopt the common key and join D-ring through a
        // bootstrap entry.
        let loc = self.my_locality(ctx);
        let key = self.shared.scheme.key(ws, loc);
        let substrate = self
            .shared
            .cfg
            .substrate
            .fresh_role(self.shared.scheme, PeerRef { id: key, node: me });
        let dir = DirectoryState::new(
            ws,
            loc,
            0,
            self.shared.cfg.max_overlay,
            self.shared.cfg.t_dead,
            self.shared.catalog.objects_per_website(),
        );
        // A §5.2 replacement assumes the petal-primary position; any
        // sibling instances re-attach through the bounce/merge path.
        let petal = PetalState::new(0, self.shared.scheme.instances() as u32);
        self.dir_role = Some(DirRole {
            substrate,
            dir,
            joining: true,
            petal,
        });
        let entry = *self
            .shared
            .bootstrap_dirs
            .choose(ctx.rng())
            .expect("deployment has at least one bootstrap directory");
        let role = self.dir_role.as_mut().expect("just installed");
        let mut t = CtxTransport { ctx };
        role.substrate.join(&mut t, entry);
        // Watchdog: lookups can be lost while the ring is healing
        // around the dead directory; retry until we win or learn of a
        // winner.
        let watchdog = self.shared.cfg.keepalive_period.mul(2);
        ctx.set_timer(watchdog, timers::JOIN_RETRY, ws.0 as u64);
    }

    /// The §5.2 join watchdog fired: stand down if a winner became
    /// known through gossip, otherwise retry the join.
    fn on_join_retry_timer(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ws: WebsiteId) {
        let me = ctx.id();
        let Some(role) = &self.dir_role else { return };
        if !role.joining || role.dir.website() != ws {
            return;
        }
        // Did gossip tell us someone else already took the position?
        let learned_winner = self
            .content
            .get(&ws)
            .and_then(|cp| cp.directory())
            .filter(|d| *d != me);
        if let Some(winner) = learned_winner {
            self.stats.replacements_lost += 1;
            self.dir_role = None;
            if let Some(cp) = self.content.get_mut(&ws) {
                cp.set_directory(winner);
            }
            return;
        }
        let entry = *self
            .shared
            .bootstrap_dirs
            .choose(ctx.rng())
            .expect("deployment has at least one bootstrap directory");
        let role = self.dir_role.as_mut().expect("checked");
        let mut t = CtxTransport { ctx };
        role.substrate.join(&mut t, entry);
        let watchdog = self.shared.cfg.keepalive_period.mul(2);
        ctx.set_timer(watchdog, timers::JOIN_RETRY, ws.0 as u64);
    }

    /// The §5.2 join completed: either we own the position now, or
    /// someone else took it first and we abdicate.
    fn on_join_complete(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let me = ctx.id();
        let Some(role) = &mut self.dir_role else {
            return;
        };
        if !role.joining {
            return;
        }
        let taken_by = role.substrate.position_taken_by();
        let ws = role.dir.website();
        if let Some(winner) = taken_by {
            // Position already appropriated (§5.2): adopt the winner
            // as our directory and stand down.
            self.stats.replacements_lost += 1;
            self.dir_role = None;
            if let Some(cp) = self.content.get_mut(&ws) {
                cp.set_directory(winner);
            }
            return;
        }
        role.joining = false;
        self.stats.replacements_won += 1;
        // Seed the new directory from our gossip view: members and
        // their summaries ("answers first queries from its content
        // summaries").
        if let Some(cp) = self.content.get_mut(&ws) {
            let entries: Vec<(NodeId, Option<&bloom::ContentSummary>)> = cp
                .view()
                .iter()
                .map(|e| (e.peer, e.data.as_ref()))
                .collect();
            role.dir.seed_from_view(entries);
            // Index ourselves with our own content.
            for o in cp.objects().collect::<Vec<_>>() {
                role.dir.admit_or_refresh(me, o);
            }
            cp.set_directory(me);
        }
        self.schedule_dir_timers(ctx);
    }

    /// Arm the periodic directory-side timers (maintenance ticks the
    /// substrate has no use for are never armed).
    pub(crate) fn schedule_dir_timers(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let cfg = &self.shared.cfg;
        let wants_fix_finger = self
            .dir_role
            .as_ref()
            .is_some_and(|r| r.substrate.wants_tick(MaintTick::FixFinger));
        ctx.set_timer(cfg.keepalive_period, timers::DIR_TICK, 0);
        let s = ctx.rng().gen_range(0..cfg.stabilize_period.as_ms().max(1));
        ctx.set_timer(SimDuration::from_ms(s), timers::STABILIZE, 0);
        if wants_fix_finger {
            let f = ctx.rng().gen_range(0..cfg.fix_finger_period.as_ms().max(1));
            ctx.set_timer(SimDuration::from_ms(f), timers::FIX_FINGER, 0);
        }
        if let Some(p) = cfg.replication_period {
            let r = ctx.rng().gen_range(0..p.as_ms().max(1));
            ctx.set_timer(SimDuration::from_ms(r), timers::REPLICATE, 0);
        }
    }

    /// §8 active replication: offer our hottest objects to the
    /// same-website neighbour directories.
    fn on_replicate_timer(&mut self, ctx: &mut Ctx<'_, FlowerMsg>) {
        let Some(period) = self.shared.cfg.replication_period else {
            return;
        };
        let top_k = self.shared.cfg.replication_top_k;
        let scheme = self.shared.scheme;
        let me = ctx.id();
        let Some(role) = &mut self.dir_role else {
            return;
        };
        if role.joining {
            ctx.set_timer(period, timers::REPLICATE, 0);
            return;
        }
        let hot = role.dir.take_hot_objects(ctx.rng(), top_k);
        if !hot.is_empty() {
            let my_id = role.substrate.key();
            let ws = role.dir.website();
            let neighbours: Vec<NodeId> = role
                .substrate
                .known_peers()
                .into_iter()
                .filter(|p| p.node != me && scheme.same_website(p.id, my_id))
                .map(|p| p.node)
                .collect();
            for n in neighbours {
                ctx.send(
                    n,
                    FlowerMsg::ReplicaOffer {
                        website: ws,
                        objects: hot.clone(),
                    },
                );
            }
        }
        ctx.set_timer(period, timers::REPLICATE, 0);
    }

    /// Conflict resolution for duplicate D-ring positions (two §5.2
    /// replacements racing): the lower node id stays, the other
    /// abdicates. Returns true if we abdicated.
    fn resolve_position_conflict(&mut self, other: PeerRef, me: NodeId) -> bool {
        let Some(role) = &self.dir_role else {
            return false;
        };
        if other.id != role.substrate.key() || other.node == me {
            return false;
        }
        if me.0 < other.node.0 {
            return false; // we win; the other side will abdicate.
        }
        let ws = role.dir.website();
        self.stats.replacements_lost += 1;
        self.dir_role = None;
        if let Some(cp) = self.content.get_mut(&ws) {
            cp.set_directory(other.node);
        }
        true
    }

    // ------------------------------------------------------------------
    // Substrate plumbing
    // ------------------------------------------------------------------

    fn on_dht_msg(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, from: NodeId, msg: SubstrateMsg) {
        let me = ctx.id();
        // Duplicate-position detection on maintenance traffic.
        let conflicts = self
            .dir_role
            .as_ref()
            .map(|r| r.substrate.conflict_peers(&msg))
            .unwrap_or_default();
        for p in conflicts {
            if self.resolve_position_conflict(p, me) {
                return;
            }
        }
        let Some(role) = &mut self.dir_role else {
            // DHT traffic for a node that is not (or no longer) on the
            // D-ring. If it carries a query, rescue it via the origin
            // server; everything else is dropped.
            if let Some(query) = msg.carried_query() {
                ctx.send(
                    self.shared.server_of(query.website),
                    FlowerMsg::ServerQuery { query },
                );
            }
            return;
        };
        let mut t = CtxTransport { ctx };
        let events = role.substrate.dispatch(&mut t, from, msg);
        self.on_substrate_events(ctx, events);
    }

    /// Drain a substrate outcome stream.
    fn on_substrate_events(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, events: Vec<SubstrateEvent>) {
        for ev in events {
            match ev {
                SubstrateEvent::Deliver { query, .. } => self.dir_process_query(ctx, query),
                SubstrateEvent::JoinComplete => self.on_join_complete(ctx),
                SubstrateEvent::NeedRejoin => {
                    // Our §5.2 join lookup was lost while the ring was
                    // healing: retry through another entry point.
                    if self.dir_role.as_ref().is_some_and(|r| r.joining) {
                        let entry = *self
                            .shared
                            .bootstrap_dirs
                            .choose(ctx.rng())
                            .expect("bootstrap set non-empty");
                        let role = self.dir_role.as_mut().expect("checked");
                        let mut t = CtxTransport { ctx };
                        role.substrate.join(&mut t, entry);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure notifications
    // ------------------------------------------------------------------

    fn on_undeliverable(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, to: NodeId, msg: FlowerMsg) {
        match msg {
            FlowerMsg::Dht(sm) => {
                if self.dir_role.is_some() {
                    // The substrate purges the dead peer, re-routes
                    // payloads and lookups around it, and flags a lost
                    // join lookup for retry.
                    let role = self.dir_role.as_mut().expect("checked");
                    let joining = role.joining;
                    let mut t = CtxTransport { ctx };
                    let events = role.substrate.undeliverable(&mut t, to, sm, joining);
                    self.on_substrate_events(ctx, events);
                } else if let Some(query) = sm.carried_query() {
                    // A client whose bootstrap died: try another entry
                    // point.
                    self.route_via_dring(ctx, query);
                }
            }
            FlowerMsg::RedirectToHolder { query } => {
                // §5.1 redirection failure: drop the entry, retry.
                ctx.query_stats().on_redirection_failure();
                if let Some(role) = &mut self.dir_role {
                    role.dir.remove_entry(to);
                }
                self.retry_after_holder_failure(ctx, query);
            }
            FlowerMsg::SummaryRedirect { query } => {
                if let Some(role) = &mut self.dir_role {
                    role.dir.remove_neighbor(to);
                }
                ctx.send(
                    self.shared.server_of(query.website),
                    FlowerMsg::ServerQuery { query },
                );
            }
            FlowerMsg::ClientQuery { query } => {
                // A petal primary's intra-petal forward bounced: the
                // sibling instance died. Shrink the petal and re-run
                // the dispatch — the query lands on a live instance.
                if self.petal_sibling_down(ctx, to, query.website) {
                    self.dir_process_query(ctx, query);
                    return;
                }
                self.on_dir_unreachable(ctx, query.website, to);
                ctx.send(
                    self.shared.server_of(query.website),
                    FlowerMsg::ServerQuery { query },
                );
            }
            FlowerMsg::PeerFetch { query } => {
                if let Some(cp) = self.content.get_mut(&query.website) {
                    cp.forget_peer(to);
                }
                self.continue_local_search(ctx, query, to);
            }
            FlowerMsg::Push { website, .. } | FlowerMsg::KeepAlive { website } => {
                self.on_dir_unreachable(ctx, website, to);
            }
            FlowerMsg::GossipReq(p) | FlowerMsg::GossipResp(p) => {
                if let Some(cp) = self.content.get_mut(&p.website) {
                    cp.forget_peer(to);
                }
            }
            FlowerMsg::PetalLoad { website, .. } => {
                // Our load report bounced off a dead primary: drop the
                // hint and fall back to the deployed instance-0 node
                // until the next resize (from whoever replaces it per
                // §5.2) re-points us.
                if let Some(role) = &mut self.dir_role {
                    if role.dir.website() == website && role.petal.primary == Some(to) {
                        role.petal.primary = None;
                    }
                }
            }
            FlowerMsg::ServeObject { .. }
            | FlowerMsg::Admission { .. }
            | FlowerMsg::FetchMiss { .. }
            | FlowerMsg::DirSummary { .. }
            | FlowerMsg::Moved { .. }
            | FlowerMsg::ServerQuery { .. }
            | FlowerMsg::DirHandoff { .. }
            | FlowerMsg::Submit { .. }
            | FlowerMsg::ReplicaOffer { .. }
            | FlowerMsg::ReplicaInstruct { .. }
            | FlowerMsg::ReplicaPull { .. }
            | FlowerMsg::ReplicaData { .. }
            | FlowerMsg::PetalActivate { .. }
            | FlowerMsg::PetalDeactivate { .. }
            | FlowerMsg::PetalRetire { .. }
            | FlowerMsg::AdminLeave
            | FlowerMsg::AdminChangeLocality { .. } => {}
        }
    }

    /// A redirected holder was dead or lacked the object: re-run
    /// Algorithm 3 with the retry budget, else fall back to the server
    /// (§5.1: "tries another redirection destination until an
    /// available copy is found").
    fn retry_after_holder_failure(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, query: Query) {
        let mut q = query;
        q.holder_retries += 1;
        if q.holder_retries > self.shared.cfg.holder_retries {
            ctx.send(
                self.shared.server_of(q.website),
                FlowerMsg::ServerQuery { query: q },
            );
            return;
        }
        self.dir_process_query(ctx, q);
    }

    /// Continue the content-peer local search after a failed probe.
    fn continue_local_search(
        &mut self,
        ctx: &mut Ctx<'_, FlowerMsg>,
        query: Query,
        failed: NodeId,
    ) {
        let Some(p) = self.pending.get_mut(&query.id) else {
            return;
        };
        if !p.tried.contains(&failed) {
            p.tried.push(failed);
        }
        let tried = p.tried.clone();
        let retries = self.shared.cfg.summary_fetch_retries as usize;
        let Some(cp) = self.content.get(&query.website) else {
            return;
        };
        if tried.len() <= retries {
            if let Some(next) = cp.summary_candidates(query.object, &tried).first().copied() {
                if let Some(p) = self.pending.get_mut(&query.id) {
                    p.tried.push(next);
                }
                ctx.send(next, FlowerMsg::PeerFetch { query });
                return;
            }
        }
        // Overlay exhausted: §3.4 sends the query to the origin
        // server (or, in the fallback variant, the directory peer).
        if self.shared.cfg.member_dir_fallback {
            let dir = cp.directory();
            match dir {
                Some(dir) if dir == ctx.id() => {
                    self.dir_process_query(ctx, query);
                    return;
                }
                Some(dir) => {
                    ctx.send(dir, FlowerMsg::ClientQuery { query });
                    return;
                }
                None => {}
            }
        }
        ctx.send(
            self.shared.server_of(query.website),
            FlowerMsg::ServerQuery { query },
        );
    }
}

impl simnet::Node<FlowerMsg> for FlowerNode {
    fn on_event(&mut self, ctx: &mut Ctx<'_, FlowerMsg>, ev: Event<FlowerMsg>) {
        match ev {
            Event::Recv { from, msg } => match msg {
                FlowerMsg::Submit {
                    qid,
                    website,
                    object,
                } => self.on_submit(ctx, qid, website, object),
                FlowerMsg::Dht(m) => self.on_dht_msg(ctx, from, m),
                FlowerMsg::ClientQuery { query } => {
                    // Refresh the member's entry; then Algorithm 3.
                    self.dir_process_query(ctx, query);
                }
                FlowerMsg::SummaryRedirect { query } => self.dir_process_query(ctx, query),
                FlowerMsg::RedirectToHolder { query } => {
                    let has = self
                        .content
                        .get(&query.website)
                        .is_some_and(|cp| cp.has(query.object));
                    if has {
                        self.serve(ctx, query, ProviderKind::ContentPeer);
                    } else {
                        // Stale index entry (we dropped the object):
                        // tell the directory so it can retry.
                        ctx.send(from, FlowerMsg::FetchMiss { query });
                    }
                }
                FlowerMsg::PeerFetch { query } => {
                    let has = self
                        .content
                        .get(&query.website)
                        .is_some_and(|cp| cp.has(query.object));
                    if has {
                        self.serve(ctx, query, ProviderKind::ContentPeer);
                    } else {
                        ctx.send(from, FlowerMsg::FetchMiss { query });
                    }
                }
                FlowerMsg::FetchMiss { query } => {
                    if query.origin == ctx.id() {
                        // Our local-search probe missed (summary false
                        // positive): continue.
                        self.continue_local_search(ctx, query, from);
                    } else {
                        // We are the directory that redirected to a
                        // holder that no longer has the object.
                        if let Some(role) = &mut self.dir_role {
                            role.dir.apply_push(from, &[], &[query.object]);
                        }
                        self.retry_after_holder_failure(ctx, query);
                    }
                }
                FlowerMsg::ServerQuery { query } => {
                    debug_assert_eq!(
                        self.server_for,
                        Some(query.website),
                        "query at wrong server"
                    );
                    self.serve(ctx, query, ProviderKind::OriginServer);
                }
                FlowerMsg::ServeObject {
                    query,
                    resolved_at,
                    provider,
                    view_seed,
                    ..
                } => self.on_serve_object(ctx, from, query, resolved_at, provider, view_seed),
                FlowerMsg::Admission {
                    website,
                    locality,
                    admitted,
                    dir,
                    petal_live,
                    view_seed,
                } => {
                    self.on_admission(ctx, website, locality, admitted, dir, petal_live, view_seed)
                }
                FlowerMsg::GossipReq(p) => self.on_gossip_req(ctx, from, p),
                FlowerMsg::GossipResp(p) => {
                    let me = ctx.id();
                    let ws = p.website;
                    let t_dead = self.shared.cfg.t_dead;
                    if let Some(cp) = self.content.get_mut(&ws) {
                        if cp.locality() == p.locality {
                            cp.absorb_gossip(me, from, p, t_dead);
                            self.pin_own_directory(me, ws);
                            self.pin_petal_directory(me, ws);
                        }
                    }
                }
                FlowerMsg::Push {
                    website,
                    added,
                    removed,
                } => {
                    match &mut self.dir_role {
                        Some(role) if role.dir.website() == website => {
                            role.dir.apply_push(from, &added, &removed);
                            self.maybe_broadcast_summary(ctx);
                        }
                        _ => {
                            // We are not this overlay's directory (we
                            // stood down or handed off): tell the peer
                            // so it re-learns its directory via gossip.
                            ctx.send(from, FlowerMsg::Moved { website });
                        }
                    }
                }
                FlowerMsg::KeepAlive { website } => match &mut self.dir_role {
                    Some(role) if role.dir.website() == website => {
                        role.dir.keepalive(from);
                    }
                    _ => ctx.send(from, FlowerMsg::Moved { website }),
                },
                FlowerMsg::DirSummary {
                    website,
                    locality,
                    dir_id,
                    summary,
                } => {
                    if let Some(role) = &mut self.dir_role {
                        if role.dir.website() == website {
                            role.dir.update_neighbor_summary(NeighborSummary {
                                dir: from,
                                locality,
                                dir_id,
                                summary,
                            });
                        }
                    }
                }
                FlowerMsg::DirHandoff {
                    website,
                    locality,
                    index,
                    neighbors,
                    live,
                } => {
                    // §5.2 voluntary hand-off: assume the departing
                    // directory's identity and state.
                    let me = ctx.id();
                    let key = self.shared.scheme.key(website, locality);
                    let substrate = self.shared.cfg.substrate.handoff_role(
                        self.shared.scheme,
                        PeerRef { id: key, node: me },
                        &neighbors,
                    );
                    let mut dir = DirectoryState::new(
                        website,
                        locality,
                        0,
                        self.shared.cfg.max_overlay,
                        self.shared.cfg.t_dead,
                        self.shared.catalog.objects_per_website(),
                    );
                    let members: Vec<NodeId> =
                        index.iter().map(|e| e.peer).filter(|p| *p != me).collect();
                    dir.install_snapshot(
                        index
                            .into_iter()
                            .map(|e| (e.peer, e.age, e.objects))
                            .collect(),
                    );
                    // §5.2 + §5.3: the departing primary's petal keeps
                    // running — the heir inherits the live-instance
                    // count instead of restarting at 1, which would
                    // orphan the active siblings (they keep serving
                    // and reporting load, but nothing would ever route
                    // to them or shrink them again).
                    let mut petal = PetalState::new(0, self.shared.scheme.instances() as u32);
                    petal.live = live.clamp(1, self.shared.scheme.instances() as u32);
                    let inherited_live = petal.live;
                    self.dir_role = Some(DirRole {
                        substrate,
                        dir,
                        joining: false,
                        petal,
                    });
                    // The heir is an overlay member (it came from the
                    // directory index), but its own Admission may still
                    // be in flight: ensure the content role exists so
                    // the replacement hint spreads through gossip.
                    let cfg = &self.shared.cfg;
                    let is_new_role = !self.content.contains_key(&website);
                    let cp = self.content.entry(website).or_insert_with(|| {
                        ContentPeerState::with_cache(
                            website,
                            locality,
                            cfg.v_gossip,
                            self.shared.catalog.objects_per_website(),
                            crate::cache::CacheManager::new(
                                cfg.cache_policy,
                                cfg.cache_capacity.max(1),
                            ),
                        )
                    });
                    cp.set_directory(me);
                    // §5.3: the content role adopts the carried live
                    // count too — the heir's own pushes and instance
                    // pinning must keep honouring the split petal, not
                    // fall back to single-instance routing until the
                    // next admission re-announces it.
                    cp.set_petal_live(inherited_live);
                    cp.seed_view(&members, me);
                    if is_new_role {
                        let g = ctx.rng().gen_range(0..cfg.t_gossip.as_ms().max(1));
                        ctx.set_timer(SimDuration::from_ms(g), timers::GOSSIP, website.0 as u64);
                        let k = ctx.rng().gen_range(0..cfg.keepalive_period.as_ms().max(1));
                        ctx.set_timer(SimDuration::from_ms(k), timers::KEEPALIVE, website.0 as u64);
                    }
                    self.schedule_dir_timers(ctx);
                    // Tell the substrate we exist.
                    let role = self.dir_role.as_mut().expect("just installed");
                    let mut t = CtxTransport { ctx };
                    role.substrate.maintenance(&mut t, MaintTick::Stabilize);
                }
                FlowerMsg::Moved { website } => {
                    if let Some(cp) = self.content.get_mut(&website) {
                        cp.forget_peer(from);
                    }
                }
                FlowerMsg::ReplicaOffer { website, objects } => {
                    // §8: pick a member to host each object we lack.
                    let Some(role) = &mut self.dir_role else {
                        return;
                    };
                    if role.dir.website() != website {
                        return;
                    }
                    for (object, holder) in objects {
                        // Skip objects some live member already holds.
                        let already = matches!(
                            role.dir.process(ctx.rng(), object, NodeId(u32::MAX), 0, 0),
                            crate::directory::DirDecision::ToHolder(_)
                        );
                        ctx.metrics().incr(Counter::DirProcess);
                        if already {
                            continue;
                        }
                        let seeded = role.dir.view_seed(1, holder);
                        {
                            let mut m = ctx.metrics();
                            m.incr(Counter::DirViewSeeds);
                            m.record(Hist::DirViewSeedLen, seeded.len() as u64);
                        }
                        if let Some(member) = seeded.first().copied() {
                            ctx.send(
                                member,
                                FlowerMsg::ReplicaInstruct {
                                    website,
                                    object,
                                    holder,
                                },
                            );
                        }
                    }
                }
                FlowerMsg::ReplicaInstruct {
                    website,
                    object,
                    holder,
                } => {
                    let should_pull = self.content.get(&website).is_some_and(|cp| !cp.has(object));
                    if should_pull {
                        ctx.send(holder, FlowerMsg::ReplicaPull { website, object });
                    }
                }
                FlowerMsg::ReplicaPull { website, object } => {
                    let has = self.content.get(&website).is_some_and(|cp| cp.has(object));
                    if has {
                        let size = self.shared.catalog.object_size(object);
                        ctx.send(
                            from,
                            FlowerMsg::ReplicaData {
                                website,
                                object,
                                size,
                            },
                        );
                    }
                }
                FlowerMsg::ReplicaData {
                    website, object, ..
                } => {
                    if let Some(cp) = self.content.get_mut(&website) {
                        cp.insert_object(object);
                    }
                    self.maybe_push(ctx, website);
                }
                FlowerMsg::PetalActivate {
                    website,
                    locality,
                    live,
                } => {
                    let me = ctx.id();
                    let mut repartition = false;
                    if let Some(role) = &mut self.dir_role {
                        if role.dir.website() == website
                            && role.dir.locality() == locality
                            && role.petal.instance != 0
                        {
                            role.petal.live = live;
                            role.petal.active = role.petal.instance < live;
                            // Only the petal primary resizes: its
                            // address is authoritative (it may be a
                            // §5.2 replacement, not the deployed node).
                            role.petal.primary = Some(from);
                            repartition = role.petal.active;
                        }
                    }
                    if repartition {
                        // An already-active sibling may now own fewer
                        // members (the petal grew): hand the moved
                        // ones to their new instances.
                        self.repartition_members(ctx, me, live);
                    }
                }
                FlowerMsg::PetalDeactivate {
                    website,
                    locality,
                    live,
                } => {
                    let me = ctx.id();
                    let mut stand_down = false;
                    if let Some(role) = &mut self.dir_role {
                        if role.dir.website() == website
                            && role.dir.locality() == locality
                            && role.petal.instance != 0
                        {
                            role.petal.live = live;
                            role.petal.active = role.petal.instance < live;
                            role.petal.primary = Some(from);
                            stand_down = !role.petal.active;
                        }
                    }
                    if stand_down {
                        // Re-point every member to its owner under the
                        // shrunk petal, then abandon the index — the
                        // members rebuild their entries by pushing
                        // (§5.2-style), nothing is teleported.
                        self.repartition_members(ctx, me, live);
                        if let Some(role) = &mut self.dir_role {
                            role.dir.install_snapshot(Vec::new());
                        }
                    }
                }
                FlowerMsg::PetalRetire {
                    website,
                    locality,
                    instance,
                } => {
                    let me = ctx.id();
                    let mut shrink_live = None;
                    if let Some(role) = &mut self.dir_role {
                        if role.petal.instance == 0
                            && role.dir.website() == website
                            && role.dir.locality() == locality
                            && instance != 0
                            && (instance as usize) < role.petal.retired.len()
                        {
                            // Gone for good — even a currently dormant
                            // retiree must never be re-activated by a
                            // later split (it has no role to answer
                            // with and, being alive, never bounces).
                            role.petal.retired[instance as usize] = true;
                            if instance < role.petal.live {
                                shrink_live = Some(role.petal.live);
                            }
                        }
                    }
                    if let Some(live) = shrink_live {
                        self.resize_petal(ctx, me, shrunk_below(live, instance));
                    }
                }
                FlowerMsg::PetalLoad {
                    website,
                    locality,
                    instance,
                    queries,
                } => {
                    if let Some(role) = &mut self.dir_role {
                        if role.dir.website() == website
                            && role.dir.locality() == locality
                            && role.petal.instance == 0
                        {
                            if let Some(slot) = role.petal.sibling_loads.get_mut(instance as usize)
                            {
                                *slot = queries;
                            }
                        }
                    }
                }
                FlowerMsg::AdminLeave => {
                    self.voluntary_dir_handoff(ctx);
                }
                FlowerMsg::AdminChangeLocality { to } => {
                    self.change_locality(ctx, to);
                }
            },
            Event::Timer { kind, tag } => match kind {
                timers::GOSSIP => self.on_gossip_timer(ctx, WebsiteId(tag as u16)),
                timers::KEEPALIVE => self.on_keepalive_timer(ctx, WebsiteId(tag as u16)),
                timers::DIR_TICK => {
                    let period = self.shared.cfg.keepalive_period;
                    if let Some(role) = &mut self.dir_role {
                        role.dir.tick();
                        ctx.set_timer(period, timers::DIR_TICK, 0);
                    }
                    // One tick = one §5.3 split/merge policy window.
                    self.petal_policy_tick(ctx);
                }
                timers::STABILIZE => {
                    let period = self.shared.cfg.stabilize_period;
                    if let Some(role) = &mut self.dir_role {
                        let mut t = CtxTransport { ctx };
                        role.substrate.maintenance(&mut t, MaintTick::Stabilize);
                        ctx.set_timer(period, timers::STABILIZE, 0);
                    }
                }
                timers::FIX_FINGER => {
                    let period = self.shared.cfg.fix_finger_period;
                    if let Some(role) = &mut self.dir_role {
                        // A substrate with no routing-repair work
                        // (Pastry) lets the timer die instead of
                        // rescheduling a no-op forever.
                        if role.substrate.wants_tick(MaintTick::FixFinger) {
                            let mut t = CtxTransport { ctx };
                            role.substrate.maintenance(&mut t, MaintTick::FixFinger);
                            ctx.set_timer(period, timers::FIX_FINGER, 0);
                        }
                    }
                }
                timers::REPLACE_DIR => self.on_replace_dir_timer(ctx, WebsiteId(tag as u16)),
                timers::JOIN_RETRY => self.on_join_retry_timer(ctx, WebsiteId(tag as u16)),
                timers::REPLICATE => self.on_replicate_timer(ctx),
                timers::QUERY_TIMEOUT => self.on_query_timeout(ctx, tag),
                _ => {}
            },
            Event::Undeliverable { to, msg } => self.on_undeliverable(ctx, to, msg),
            Event::NodeUp => {
                // §5: a revived peer rejoins as a new client; volatile
                // state did not survive the crash.
                self.dir_role = None;
                self.content.clear();
                self.pending.clear();
                self.parked_objects.clear();
                self.replacing.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn petal_primary_hint_overrides_the_deployed_node() {
        let deployed = NodeId(10);
        let mut p = PetalState::new(2, 4);
        assert_eq!(
            p.primary_node(deployed),
            deployed,
            "no resize seen yet: fall back to the deployed instance-0 node"
        );
        p.primary = Some(NodeId(77));
        assert_eq!(
            p.primary_node(deployed),
            NodeId(77),
            "the last resize sender is the authoritative primary"
        );
        p.primary = None; // bounce reset
        assert_eq!(p.primary_node(deployed), deployed);
    }
}
