//! The D-ring routing service (§3.2, Algorithm 2).
//!
//! D-ring reuses the DHT's key-based routing unchanged except for two
//! added steps, exactly as the paper presents them: after the standard
//! `local_lookup` picks the next hop `p'`,
//!
//! 1. if `p'.websiteID != key.websiteID`, run a **conditional local
//!    lookup**: among the peers this node knows, find the numerically
//!    closest one to `key` *with the same website ID as `key`*;
//! 2. if no such peer is known, keep `p'`.
//!
//! This guarantees that a message for `d_{ws,loc}` keeps moving toward
//! *some* directory peer of `ws` even when the exact target is absent
//! (not yet joined, or failed) — the directory peers of one website
//! are ring neighbours (see [`crate::id`]), so the ordinary lookup is
//! usually already right and the conditional lookup only corrects the
//! edge cases at the website block boundaries.

use chord::{ChordId, ChordState, PeerRef, RoutePolicy};

use crate::id::KeyScheme;

/// Algorithm 2's next-hop adjustment, parameterized by the key scheme.
#[derive(Clone, Copy, Debug)]
pub struct DringPolicy {
    scheme: KeyScheme,
}

impl DringPolicy {
    /// A policy for the given key layout.
    pub fn new(scheme: KeyScheme) -> Self {
        DringPolicy { scheme }
    }

    /// The key layout.
    pub fn scheme(&self) -> KeyScheme {
        self.scheme
    }

    /// The paper's `conditional_local_lookup(key, key.websiteID)`:
    /// the known peer numerically closest to `key` whose website ID
    /// equals the key's (or `None`).
    pub fn conditional_local_lookup(&self, st: &ChordState, key: ChordId) -> Option<PeerRef> {
        let me = st.me();
        st.known_peers()
            .into_iter()
            .chain(std::iter::once(me))
            .filter(|p| self.scheme.same_website(p.id, key))
            .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
    }
}

impl RoutePolicy for DringPolicy {
    fn adjust_next_hop(&self, st: &ChordState, key: ChordId, dflt: PeerRef) -> PeerRef {
        if self.scheme.same_website(dflt.id, key) {
            return dflt;
        }
        self.conditional_local_lookup(st, key).unwrap_or(dflt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chord::{stable_ring, ChordConfig};
    use simnet::{Locality, NodeId};
    use workload::WebsiteId;

    fn scheme() -> KeyScheme {
        KeyScheme::new(8, 0)
    }

    /// Build D-ring states for the given (website, locality) pairs.
    fn dring(pairs: &[(u16, u16)]) -> (Vec<ChordState>, Vec<PeerRef>) {
        let s = scheme();
        let members: Vec<PeerRef> = pairs
            .iter()
            .enumerate()
            .map(|(i, (ws, loc))| PeerRef {
                id: s.key(WebsiteId(*ws), Locality(*loc)),
                node: NodeId(i as u32),
            })
            .collect();
        (stable_ring(&members, &ChordConfig::default()), members)
    }

    #[test]
    fn same_website_default_is_kept() {
        let (states, members) = dring(&[(1, 0), (1, 1), (1, 2), (2, 0), (2, 1)]);
        let p = DringPolicy::new(scheme());
        let key = scheme().key(WebsiteId(1), Locality(1));
        // Default next hop already of website 1 → unchanged.
        let dflt = members[2];
        let got = p.adjust_next_hop(&states[0], key, dflt);
        assert_eq!(got, dflt);
    }

    #[test]
    fn cross_website_default_is_corrected() {
        // Website 1 has localities {0, 2}; the key for locality 3 may
        // default to another website's directory — the conditional
        // lookup must pull it back to website 1.
        let (states, members) = dring(&[(1, 0), (1, 2), (2, 0), (2, 1), (3, 0)]);
        let p = DringPolicy::new(scheme());
        let key = scheme().key(WebsiteId(1), Locality(3));
        // Pretend the default lookup picked a website-2 directory.
        let wrong = members[2];
        let got = p.adjust_next_hop(&states[0], key, wrong);
        assert!(
            p.scheme().same_website(got.id, key),
            "next hop {:?} not of website 1",
            got.id
        );
    }

    #[test]
    fn conditional_lookup_picks_numerically_closest() {
        let (states, members) = dring(&[(1, 0), (1, 1), (1, 5), (2, 0)]);
        let p = DringPolicy::new(scheme());
        // Key for (1, 4): closest same-website peer is (1,5) at ring
        // distance 1, vs (1,1) at distance 3.
        let key = scheme().key(WebsiteId(1), Locality(4));
        let got = p.conditional_local_lookup(&states[3], key).unwrap();
        assert_eq!(got.id, members[2].id, "expected (1,5), got {:?}", got.id);
    }

    #[test]
    fn conditional_lookup_none_when_website_unknown() {
        let (states, _) = dring(&[(2, 0), (2, 1)]);
        let p = DringPolicy::new(scheme());
        let key = scheme().key(WebsiteId(9), Locality(0));
        // The tiny ring only knows website 2 → no same-website peer.
        assert!(p.conditional_local_lookup(&states[0], key).is_none());
        // adjust falls back to the default.
        let dflt = states[0].me();
        assert_eq!(p.adjust_next_hop(&states[0], key, dflt), dflt);
    }

    #[test]
    fn conditional_lookup_may_return_self() {
        let (states, _) = dring(&[(1, 0), (2, 0)]);
        let p = DringPolicy::new(scheme());
        // From the website-1 directory, the closest website-1 peer for
        // key (1, 3) is itself.
        let key = scheme().key(WebsiteId(1), Locality(3));
        let got = p.conditional_local_lookup(&states[0], key).unwrap();
        assert_eq!(got.node, states[0].me().node);
    }
}
