//! Cache replacement policies for content peers.
//!
//! The paper assumes "a content peer has enough storage potential to
//! avoid replacing its content through the experiment's duration"
//! (§6.1) and defers cache expiration/replacement to future work
//! (§8, footnote 1). This module implements that future work: bounded
//! per-peer caches with classic replacement policies. Evictions flow
//! through the normal change log, so pushes keep the directory index
//! consistent (∆list removals) and stale redirects exercise the §5.1
//! retry machinery.

use std::collections::HashMap;

use bloom::ObjectId;

/// Which object to evict when a bounded cache overflows.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CachePolicy {
    /// The paper's evaluation model: nothing is ever evicted.
    #[default]
    Unbounded,
    /// Evict the least recently used object.
    Lru,
    /// Evict the least frequently used object (ties broken by
    /// recency).
    Lfu,
}

/// Replacement bookkeeping for one content peer's cache.
///
/// Tracks access order and frequency; the owning
/// [`crate::content::ContentPeerState`] consults it on insertion to
/// decide evictions.
#[derive(Clone, Debug)]
pub struct CacheManager {
    policy: CachePolicy,
    /// Maximum objects held (ignored when unbounded).
    capacity: usize,
    /// Logical clock advanced on every touch.
    clock: u64,
    /// Per-object (last-touch, frequency).
    meta: HashMap<ObjectId, (u64, u64)>,
}

impl CacheManager {
    /// A manager with the given policy; `capacity` bounds the cache
    /// for the bounded policies.
    pub fn new(policy: CachePolicy, capacity: usize) -> Self {
        if policy != CachePolicy::Unbounded {
            assert!(capacity > 0, "bounded cache needs positive capacity");
        }
        CacheManager {
            policy,
            capacity,
            clock: 0,
            meta: HashMap::new(),
        }
    }

    /// The paper's unbounded behaviour.
    pub fn unbounded() -> Self {
        CacheManager::new(CachePolicy::Unbounded, 0)
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// The configured capacity (meaningless when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an access (hit or insertion) of `o`.
    pub fn touch(&mut self, o: ObjectId) {
        self.clock += 1;
        let e = self.meta.entry(o).or_insert((0, 0));
        e.0 = self.clock;
        e.1 += 1;
    }

    /// Forget an object (evicted or dropped externally).
    pub fn forget(&mut self, o: ObjectId) {
        self.meta.remove(&o);
    }

    /// Called before inserting a new object into a cache currently
    /// holding `len` objects: returns the object to evict, if the
    /// bound requires one.
    pub fn evict_for_insert(&mut self, len: usize) -> Option<ObjectId> {
        if self.policy == CachePolicy::Unbounded || len < self.capacity {
            return None;
        }
        let victim = match self.policy {
            CachePolicy::Unbounded => unreachable!(),
            CachePolicy::Lru => self
                .meta
                .iter()
                .min_by_key(|(o, (last, _))| (*last, o.key()))
                .map(|(o, _)| *o),
            CachePolicy::Lfu => self
                .meta
                .iter()
                .min_by_key(|(o, (last, freq))| (*freq, *last, o.key()))
                .map(|(o, _)| *o),
        };
        if let Some(v) = victim {
            self.meta.remove(&v);
        }
        victim
    }

    /// Number of tracked objects.
    pub fn tracked(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(1);
    const B: ObjectId = ObjectId(2);
    const C: ObjectId = ObjectId(3);

    #[test]
    fn unbounded_never_evicts() {
        let mut m = CacheManager::unbounded();
        for i in 0..1000u64 {
            m.touch(ObjectId(i));
            assert_eq!(m.evict_for_insert(i as usize), None);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = CacheManager::new(CachePolicy::Lru, 2);
        m.touch(A);
        m.touch(B);
        m.touch(A); // A is now more recent than B.
        assert_eq!(m.evict_for_insert(2), Some(B));
        m.touch(C);
        // Cache now {A, C}; A was touched before C.
        assert_eq!(m.evict_for_insert(2), Some(A));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut m = CacheManager::new(CachePolicy::Lfu, 2);
        m.touch(A);
        m.touch(A);
        m.touch(A);
        m.touch(B);
        m.touch(B);
        m.touch(C); // C: freq 1 → victim.
        assert_eq!(m.evict_for_insert(3), Some(C));
    }

    #[test]
    fn lfu_ties_break_by_recency() {
        let mut m = CacheManager::new(CachePolicy::Lfu, 2);
        m.touch(A); // freq 1, older
        m.touch(B); // freq 1, newer
        assert_eq!(m.evict_for_insert(2), Some(A));
    }

    #[test]
    fn no_eviction_below_capacity() {
        let mut m = CacheManager::new(CachePolicy::Lru, 5);
        m.touch(A);
        assert_eq!(m.evict_for_insert(1), None);
        assert_eq!(m.evict_for_insert(4), None);
        m.touch(B);
        assert!(m.evict_for_insert(5).is_some());
    }

    #[test]
    fn forget_removes_from_tracking() {
        let mut m = CacheManager::new(CachePolicy::Lru, 1);
        m.touch(A);
        m.forget(A);
        assert_eq!(m.tracked(), 0);
        // Nothing to evict even though len says full (external state).
        assert_eq!(m.evict_for_insert(1), None);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn bounded_zero_capacity_rejected() {
        let _ = CacheManager::new(CachePolicy::Lfu, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any access pattern, a bounded LRU manager holds at
        /// most `cap` objects if the caller inserts/evicts as told.
        #[test]
        fn lru_respects_capacity(accesses in proptest::collection::vec(0u64..30, 1..200), cap in 1usize..10) {
            let mut m = CacheManager::new(CachePolicy::Lru, cap);
            let mut cache: std::collections::HashSet<ObjectId> = Default::default();
            for a in accesses {
                let o = ObjectId(a);
                if cache.contains(&o) {
                    m.touch(o);
                    continue;
                }
                if let Some(v) = m.evict_for_insert(cache.len()) {
                    prop_assert!(cache.remove(&v), "evicted object not in cache");
                }
                cache.insert(o);
                m.touch(o);
                prop_assert!(cache.len() <= cap);
            }
        }

        /// The evicted LRU victim is never the most recently touched
        /// object.
        #[test]
        fn lru_never_evicts_most_recent(objs in proptest::collection::vec(0u64..20, 2..50)) {
            let mut m = CacheManager::new(CachePolicy::Lru, 1);
            let mut last = None;
            for a in objs {
                let o = ObjectId(a);
                m.touch(o);
                last = Some(o);
            }
            if let Some(v) = m.evict_for_insert(5) {
                // capacity 1 with several touched: victim != last touched
                // (unless only one distinct object was ever touched).
                if m.tracked() > 0 {
                    prop_assert_ne!(Some(v), last);
                }
            }
        }
    }
}
