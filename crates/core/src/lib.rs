//! # flower-core — the Flower-CDN protocol
//!
//! Reproduction of the system contributed by *"Flower-CDN: A hybrid
//! P2P overlay for Efficient Query Processing in CDN"* (El Dick,
//! Pacitti, Kemme; EDBT 2009).
//!
//! Flower-CDN lets the community interested in an under-provisioned
//! website redistribute its content. Its hybrid overlay is:
//!
//! * **D-ring** ([`id`], [`policy`], [`directory`]) — a structured
//!   directory overlay over a standard DHT. One *directory peer*
//!   `d_{ws,loc}` per (website, locality) indexes the content stored
//!   in its locality's *content overlay*. Peer IDs concatenate a
//!   website hash with a locality number (§3.1), so a query routed
//!   with the key `(website, locality)` lands on the right directory
//!   in `O(log n)` hops, and Algorithm 2's tweak keeps it within the
//!   right website when directories are missing (§3.2).
//! * **Content overlays** ([`content`]) — per-(website, locality)
//!   gossip clusters of *content peers* that cache the objects they
//!   requested and serve them to close-by peers. Gossip (Algorithm 4)
//!   disseminates content summaries, discovers members and detects
//!   failures; pushes (Algorithm 5/6) keep the directory index fresh.
//!
//! [`node::FlowerNode`] ties the roles together as a single
//! event-driven state machine over the [`simnet`] simulator, and
//! [`system::FlowerSystem`] builds the paper's full evaluation setup
//! (Table 1).
//!
//! ## Quickstart
//!
//! ```
//! use flower_core::system::{FlowerSystem, SystemConfig};
//!
//! let mut cfg = SystemConfig::small_test();
//! cfg.workload.duration_ms = 60_000; // one simulated minute
//! let (_system, report) = FlowerSystem::run(&cfg);
//! assert!(report.resolved > 0);
//! println!("hit ratio: {:.2}", report.hit_ratio);
//! ```

pub mod cache;
pub mod config;
pub mod content;
pub mod directory;
pub mod id;
pub mod msg;
pub mod node;
pub mod policy;
pub mod substrate;
pub mod system;

pub use cache::{CacheManager, CachePolicy};
pub use config::FlowerConfig;
pub use content::ContentPeerState;
pub use directory::{DirDecision, DirLoad, DirectoryState, NeighborSummary};
pub use id::{instance_for, KeyScheme};
pub use msg::{FlowerMsg, GossipEntry, GossipPayload, ProviderKind, Query};
pub use node::{Deployment, FlowerNode, NodeCounters};
pub use policy::DringPolicy;
pub use substrate::{ChordSubstrate, DhtSubstrate, PastrySubstrate, SubstrateKind};
pub use system::{FlowerSystem, SystemConfig, SystemReport};
