//! The simulation harness: builds a complete Flower-CDN deployment
//! (§6.1's setup) and runs the paper's workload against it.
//!
//! Responsibilities:
//!
//! 1. generate the underlay topology and localities (5000 nodes, k=6);
//! 2. assign roles: one origin server per website, one directory peer
//!    per `(website, locality)` — the paper "starts with a stable
//!    D-ring … with an empty directory" — and, for each *active*
//!    website, a community of up to `Sco` potential clients per
//!    locality;
//! 3. bootstrap the D-ring as a converged network over the directory
//!    peers on the configured DHT substrate (Chord or Pastry);
//! 4. inject the query trace: each query picks a uniform random
//!    locality and a uniform community member as originator ("a new
//!    client or a content peer of ws is chosen from a random
//!    locality");
//! 5. run and report the paper's four metrics.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simnet::{
    ChurnScript, Engine, Event, Locality, NodeId, SimDuration, SimTime, Topology, TopologyConfig,
};
use workload::{Catalog, CatalogConfig, QueryStream, WebsiteId, WorkloadConfig};

use crate::config::FlowerConfig;
use crate::id::KeyScheme;
use crate::msg::FlowerMsg;
use crate::node::{timers, Deployment, FlowerNode};
use crate::substrate::PeerRef;

/// Everything needed to build and run one simulation.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Underlay shape.
    pub topology: TopologyConfig,
    /// Website/object universe.
    pub catalog: CatalogConfig,
    /// Query trace shape.
    pub workload: WorkloadConfig,
    /// Protocol parameters.
    pub flower: FlowerConfig,
    /// Master seed; every run is a pure function of the config.
    pub seed: u64,
    /// Metric series window.
    pub window: SimDuration,
    /// Locality shards the engine runs on (worker threads). Results
    /// are bit-identical for every value; values above the number of
    /// localities are clamped.
    pub shards: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            topology: TopologyConfig::default(),
            catalog: CatalogConfig::default(),
            workload: WorkloadConfig::default(),
            flower: FlowerConfig::default(),
            seed: 42,
            window: SimDuration::from_mins(30),
            shards: 1,
        }
    }
}

impl SystemConfig {
    /// The paper's Table 1 setup.
    pub fn paper() -> Self {
        SystemConfig::default()
    }

    /// A miniature deployment for fast tests: 3 localities, small
    /// websites, minute-scale horizon, second-scale protocol periods.
    pub fn small_test() -> Self {
        SystemConfig {
            topology: TopologyConfig {
                nodes: 300,
                localities: 3,
                ..Default::default()
            },
            catalog: CatalogConfig {
                num_websites: 6,
                active_websites: 2,
                objects_per_website: 30,
                ..Default::default()
            },
            workload: WorkloadConfig {
                query_rate_per_sec: 10.0,
                duration_ms: 10 * 60 * 1000,
                ..Default::default()
            },
            flower: FlowerConfig::fast_test(),
            seed: 42,
            window: SimDuration::from_mins(1),
            shards: 1,
        }
    }
}

/// End-of-run summary of the paper's metrics.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Queries submitted.
    pub submitted: u64,
    /// Queries resolved (always ≤ submitted; in-flight queries at the
    /// horizon are not counted).
    pub resolved: u64,
    /// The paper's hit ratio.
    pub hit_ratio: f64,
    /// Mean lookup latency (ms).
    pub mean_lookup_ms: f64,
    /// Mean transfer distance (ms).
    pub mean_transfer_ms: f64,
    /// Mean transfer distance of P2P hits only (ms) — the paper uses
    /// the metric "with queries satisfied from the P2P system".
    pub mean_transfer_hit_ms: f64,
    /// The paper's background-traffic metric (gossip + push bits per
    /// second per participant).
    pub background_bps: f64,
    /// Participants at the horizon (directory + content peers).
    pub participants: usize,
    /// §5.1 redirection failures observed.
    pub redirection_failures: u64,
    /// Fraction of P2P hits served within the requester's locality.
    pub local_hit_fraction: f64,
    /// §5.3 PetalUp: hottest directory instance's query load over the
    /// mean *petal* load (total queries / loaded petals). 0 when no
    /// directory processed a query. At `instance_bits = 0` this is the
    /// classic max/mean directory imbalance; splits shrink it toward 1
    /// without moving the denominator.
    pub dir_load_max_mean: f64,
    /// §5.3 PetalUp: live directory instances summed over all petal
    /// primaries (= number of petals when nothing ever split).
    pub dir_instances_live: usize,
}

/// A built (and possibly run) Flower-CDN simulation.
pub struct FlowerSystem {
    engine: Engine<FlowerMsg, FlowerNode>,
    dirs: BTreeMap<(WebsiteId, Locality), NodeId>,
    communities: HashMap<(WebsiteId, Locality), Vec<NodeId>>,
    servers: Vec<NodeId>,
    duration: SimTime,
    queries_scheduled: usize,
}

impl FlowerSystem {
    /// Build the deployment and schedule the whole query trace.
    pub fn build(cfg: &SystemConfig) -> FlowerSystem {
        let topo = Topology::generate(&cfg.topology, cfg.seed);
        let catalog = Catalog::new(cfg.catalog.clone());
        // Validation precedes key-scheme construction: an invalid
        // `m1 + b` geometry surfaces as the config error here, never
        // as the KeyScheme panic.
        cfg.flower
            .validate(topo.num_localities())
            .expect("invalid Flower-CDN configuration");
        let scheme = KeyScheme::new(cfg.flower.locality_bits, cfg.flower.instance_bits);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5E7_u64);

        let k = topo.num_localities();
        // Shuffled per-locality node pools.
        let mut pools: Vec<Vec<NodeId>> = (0..k)
            .map(|l| {
                let mut v = topo.nodes_in(Locality(l as u16));
                v.shuffle(&mut rng);
                v
            })
            .collect();
        debug_assert_eq!(pools.len(), k);

        // Directory peers: `2^b` instances per (website, locality)
        // petal (1 in the base design), drawn from the locality's
        // pool. `all_dirs` keeps deployment order for deterministic
        // timer staggering below.
        let instances = scheme.instances() as u32;
        let mut dirs: BTreeMap<(WebsiteId, Locality), NodeId> = BTreeMap::new();
        let mut dir_instances: HashMap<(WebsiteId, Locality), Vec<NodeId>> = HashMap::new();
        let mut all_dirs: Vec<((WebsiteId, Locality, u32), NodeId)> = Vec::new();
        for ws in catalog.websites() {
            for (l, pool) in pools.iter_mut().enumerate() {
                let loc = Locality(l as u16);
                let mut petal = Vec::with_capacity(instances as usize);
                for inst in 0..instances {
                    let node = pool
                        .pop()
                        .unwrap_or_else(|| panic!("locality {l} too small for the D-ring"));
                    if inst == 0 {
                        dirs.insert((ws, loc), node);
                    }
                    petal.push(node);
                    all_dirs.push(((ws, loc, inst), node));
                }
                dir_instances.insert((ws, loc), petal);
            }
        }

        // Origin servers: anywhere, not already directory peers.
        let mut servers = Vec::with_capacity(catalog.websites().count());
        {
            let mut l = 0usize;
            for _ws in catalog.websites() {
                // Round-robin across localities for geographic spread.
                let mut placed = None;
                for _ in 0..k {
                    l = (l + 1) % k;
                    if let Some(n) = pools[l].pop() {
                        placed = Some(n);
                        break;
                    }
                }
                servers.push(placed.expect("topology too small for origin servers"));
            }
        }

        // Communities: for each active website and locality, up to
        // `Sco` potential clients. Websites may share nodes ("no
        // correlation between website communities" — a node can be
        // interested in several sites), but directory peers and
        // servers never query.
        let mut communities: HashMap<(WebsiteId, Locality), Vec<NodeId>> = HashMap::new();
        for ws in catalog.active_websites() {
            for (l, pool) in pools.iter().enumerate() {
                let loc = Locality(l as u16);
                let take = cfg.flower.max_overlay.min(pool.len());
                let mut comm: Vec<NodeId> = pool.choose_multiple(&mut rng, take).copied().collect();
                comm.sort_unstable_by_key(|n| n.0);
                communities.insert((ws, loc), comm);
            }
        }

        // D-ring bootstrap: a converged substrate network over all
        // directory instances (the paper's stable start), on whichever
        // DHT the configuration selects.
        let members: Vec<PeerRef> = all_dirs
            .iter()
            .map(|((ws, loc, inst), node)| PeerRef {
                id: scheme.key_with_instance(*ws, *loc, *inst),
                node: *node,
            })
            .collect();
        let states = cfg.flower.substrate.stable_network(scheme, &members);
        let mut state_by_node: HashMap<NodeId, Box<dyn crate::substrate::DhtSubstrate>> =
            members.iter().map(|m| m.node).zip(states).collect();

        let deployment = Arc::new(Deployment {
            cfg: cfg.flower.clone(),
            catalog: Catalog::new(cfg.catalog.clone()),
            scheme,
            servers: servers.clone(),
            bootstrap_dirs: members.iter().map(|m| m.node).collect(),
            dir_instances,
        });

        // Instantiate protocol nodes.
        let dir_of_node: HashMap<NodeId, (WebsiteId, Locality, u32)> =
            all_dirs.iter().map(|(kli, n)| (*n, *kli)).collect();
        let server_of_node: HashMap<NodeId, WebsiteId> = servers
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, WebsiteId(i as u16)))
            .collect();
        let nodes: Vec<FlowerNode> = topo
            .node_ids()
            .map(|n| {
                if let Some((ws, loc, inst)) = dir_of_node.get(&n) {
                    let st = state_by_node.remove(&n).expect("dir has substrate state");
                    FlowerNode::directory(Arc::clone(&deployment), *ws, *loc, *inst, st)
                } else if let Some(ws) = server_of_node.get(&n) {
                    FlowerNode::server(Arc::clone(&deployment), *ws)
                } else {
                    FlowerNode::client(Arc::clone(&deployment))
                }
            })
            .collect();

        let mut engine = Engine::with_shards(
            topo,
            nodes,
            cfg.seed ^ 0xE6_91E,
            cfg.window,
            cfg.shards.max(1),
        );

        // Arm directory timers (staggered), one set per deployed
        // instance, in deployment order (identical to the pre-§5.3
        // draw sequence when `instances == 1`).
        for (_, node) in all_dirs.iter() {
            let s = rng.gen_range(0..cfg.flower.keepalive_period.as_ms().max(2));
            engine.schedule_at(
                SimTime::from_ms(s),
                *node,
                Event::Timer {
                    kind: timers::DIR_TICK,
                    tag: 0,
                },
            );
            let s = rng.gen_range(0..cfg.flower.stabilize_period.as_ms().max(2));
            engine.schedule_at(
                SimTime::from_ms(s),
                *node,
                Event::Timer {
                    kind: timers::STABILIZE,
                    tag: 0,
                },
            );
            let s = rng.gen_range(0..cfg.flower.fix_finger_period.as_ms().max(2));
            engine.schedule_at(
                SimTime::from_ms(s),
                *node,
                Event::Timer {
                    kind: timers::FIX_FINGER,
                    tag: 0,
                },
            );
            if let Some(p) = cfg.flower.replication_period {
                let s = rng.gen_range(0..p.as_ms().max(2));
                engine.schedule_at(
                    SimTime::from_ms(s),
                    *node,
                    Event::Timer {
                        kind: timers::REPLICATE,
                        tag: 0,
                    },
                );
            }
        }

        // Schedule the query trace (§6.1 originator selection).
        let stream = QueryStream::generate(&cfg.workload, &catalog, cfg.seed ^ 0x0077_ACE5);
        let mut scheduled = 0usize;
        for (qid, ev) in stream.events().iter().enumerate() {
            // "chosen from a random locality": uniform locality, then a
            // uniform community member of (website, locality).
            let mut origin = None;
            for _attempt in 0..4 {
                let loc = Locality(rng.gen_range(0..k) as u16);
                let comm = &communities[&(ev.website, loc)];
                if !comm.is_empty() {
                    origin = Some(comm[rng.gen_range(0..comm.len())]);
                    break;
                }
            }
            let Some(origin) = origin else { continue };
            engine.schedule_at(
                SimTime::from_ms(ev.at_ms),
                origin,
                Event::Recv {
                    from: origin,
                    msg: FlowerMsg::Submit {
                        qid: qid as u64,
                        website: ev.website,
                        object: ev.object,
                    },
                },
            );
            scheduled += 1;
        }

        FlowerSystem {
            engine,
            dirs,
            communities,
            servers,
            duration: SimTime::from_ms(cfg.workload.duration_ms),
            queries_scheduled: scheduled,
        }
    }

    /// Build and run to [`FlowerSystem::drain_horizon`].
    pub fn run(cfg: &SystemConfig) -> (FlowerSystem, SystemReport) {
        let mut sys = FlowerSystem::build(cfg);
        sys.engine.run_until(sys.drain_horizon());
        let report = sys.report();
        (sys, report)
    }

    /// The standard run horizon: the workload duration plus a drain
    /// margin so in-flight queries resolve. [`FlowerSystem::run`] and
    /// the experiment harnesses all run to this instant.
    pub fn drain_horizon(&self) -> SimTime {
        self.duration + SimDuration::from_secs(30)
    }

    /// Advance the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.engine.run_until(t);
    }

    /// The engine (metrics, topology, node inspection).
    pub fn engine(&self) -> &Engine<FlowerMsg, FlowerNode> {
        &self.engine
    }

    /// Mutable engine access (churn installation, extra events).
    pub fn engine_mut(&mut self) -> &mut Engine<FlowerMsg, FlowerNode> {
        &mut self.engine
    }

    /// The workload horizon.
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    /// Queries scheduled into the engine.
    pub fn queries_scheduled(&self) -> usize {
        self.queries_scheduled
    }

    /// Directory peer of `(ws, loc)` as initially deployed.
    pub fn initial_directory(&self, ws: WebsiteId, loc: Locality) -> Option<NodeId> {
        self.dirs.get(&(ws, loc)).copied()
    }

    /// The community (potential clients) of `(ws, loc)`.
    pub fn community(&self, ws: WebsiteId, loc: Locality) -> &[NodeId] {
        self.communities
            .get(&(ws, loc))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Origin servers by website index.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Current participants: nodes holding a directory or content
    /// role.
    pub fn participants(&self) -> Vec<NodeId> {
        self.engine
            .topology()
            .node_ids()
            .filter(|n| self.engine.node(*n).is_participant())
            .collect()
    }

    /// Install a churn script over the engine.
    pub fn apply_churn(&mut self, script: &ChurnScript) {
        script.install(&mut self.engine);
    }

    /// Install a fault-injection script (partitions, link loss,
    /// regional failures) over the engine.
    pub fn apply_faults(&mut self, plane: &simnet::FaultPlane) {
        self.engine.set_fault_plane(plane.clone());
    }

    /// Per-instance directory query loads: one `((website, locality,
    /// instance), queries processed)` entry for every directory role
    /// that processed at least one query, in deployment order.
    pub fn dir_query_loads(&self) -> Vec<((WebsiteId, Locality, u32), u64)> {
        let mut out = Vec::new();
        for n in self.engine.topology().node_ids() {
            if let Some(role) = self.engine.node(n).dir_role() {
                let q = role.dir.load().queries;
                if q > 0 {
                    out.push((
                        (role.dir.website(), role.dir.locality(), role.dir.instance()),
                        q,
                    ));
                }
            }
        }
        out.sort_unstable_by_key(|((ws, loc, inst), _)| (*ws, *loc, *inst));
        out
    }

    /// Compute the end-of-run report.
    pub fn report(&self) -> SystemReport {
        let q = self.engine.query_stats();
        let participants = self.participants();
        let elapsed = self.engine.now() - SimTime::ZERO;
        let loads = self.dir_query_loads();
        let total: u64 = loads.iter().map(|(_, q)| q).sum();
        let max = loads.iter().map(|(_, q)| *q).max().unwrap_or(0);
        let petals: std::collections::HashSet<(WebsiteId, Locality)> =
            loads.iter().map(|((ws, loc, _), _)| (*ws, *loc)).collect();
        let dir_load_max_mean = if petals.is_empty() || total == 0 {
            0.0
        } else {
            max as f64 / (total as f64 / petals.len() as f64)
        };
        let dir_instances_live = self
            .engine
            .topology()
            .node_ids()
            .filter_map(|n| self.engine.node(n).dir_role())
            .filter(|r| !r.joining && r.petal.instance == 0)
            .map(|r| r.petal.live as usize)
            .sum();
        SystemReport {
            submitted: q.submitted(),
            resolved: q.resolved(),
            hit_ratio: q.hit_ratio(),
            mean_lookup_ms: q.mean_lookup_ms(),
            mean_transfer_ms: q.mean_transfer_ms(),
            mean_transfer_hit_ms: q.mean_transfer_hit_ms(),
            background_bps: self.engine.traffic().background_bps(&participants, elapsed),
            participants: participants.len(),
            redirection_failures: q.redirection_failures(),
            local_hit_fraction: q.local_hit_fraction(),
            dir_load_max_mean,
            dir_instances_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (FlowerSystem, SystemReport) {
        let cfg = SystemConfig {
            seed,
            ..SystemConfig::small_test()
        };
        FlowerSystem::run(&cfg)
    }

    #[test]
    fn small_system_processes_queries() {
        let (sys, r) = run_small(1);
        assert!(
            r.submitted > 1000,
            "expected thousands of queries, got {}",
            r.submitted
        );
        // Allow a tiny number of stragglers lost to protocol corner
        // cases, but essentially everything must resolve.
        assert!(
            r.resolved as f64 >= r.submitted as f64 * 0.99,
            "resolved {} of {}",
            r.resolved,
            r.submitted
        );
        assert!(r.hit_ratio > 0.5, "hit ratio {} too low", r.hit_ratio);
        assert!(r.participants > 20, "participants {}", r.participants);
        assert!(sys.queries_scheduled() > 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(7);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.resolved, b.resolved);
        assert!((a.hit_ratio - b.hit_ratio).abs() < 1e-12);
        assert!((a.background_bps - b.background_bps).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = run_small(1);
        let (_, b) = run_small(2);
        assert!(a.submitted != b.submitted || (a.hit_ratio - b.hit_ratio).abs() > 1e-12);
    }

    #[test]
    fn deployment_shape() {
        let cfg = SystemConfig::small_test();
        let sys = FlowerSystem::build(&cfg);
        // 6 websites × 3 localities directory peers.
        let topo = sys.engine().topology();
        assert_eq!(topo.num_localities(), 3);
        for ws in 0..6u16 {
            for l in 0..3u16 {
                let d = sys.initial_directory(WebsiteId(ws), Locality(l));
                assert!(d.is_some(), "missing directory for ws{ws} loc{l}");
                assert!(sys.engine().node(d.unwrap()).is_directory());
            }
        }
        assert_eq!(sys.servers().len(), 6);
        // Active websites have communities.
        for ws in 0..2u16 {
            for l in 0..3u16 {
                assert!(!sys.community(WebsiteId(ws), Locality(l)).is_empty());
            }
        }
    }

    #[test]
    fn hit_ratio_improves_over_time() {
        let (sys, _) = run_small(3);
        let pts = sys.engine().query_stats().hit_series().points();
        let early: Vec<_> = pts.iter().take(3).filter(|p| p.count > 0).collect();
        let late: Vec<_> = pts.iter().rev().take(3).filter(|p| p.count > 0).collect();
        let avg = |v: &[&simnet::SeriesPoint]| {
            v.iter().map(|p| p.mean()).sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            avg(&late) > avg(&early),
            "hit ratio should rise: early {:.3} late {:.3}",
            avg(&early),
            avg(&late)
        );
    }

    #[test]
    fn background_traffic_is_gossip_and_push_only() {
        let (sys, r) = run_small(4);
        assert!(r.background_bps > 0.0, "gossip must produce traffic");
        let t = sys.engine().traffic();
        let gossip = t.total_sent(simnet::TrafficClass::Gossip);
        let push = t.total_sent(simnet::TrafficClass::Push);
        assert!(gossip > 0, "no gossip traffic recorded");
        assert!(push > 0, "no push traffic recorded");
    }
}
