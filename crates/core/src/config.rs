//! Flower-CDN protocol parameters.
//!
//! Defaults reproduce Table 1 of the paper plus the protocol constants
//! the paper mentions in prose (keepalives, `Tdead`, push thresholds,
//! summary refresh). Everything the evaluation sweeps (`Lgossip`,
//! `Tgossip`, `Vgossip`, push threshold, `Sco`) is a field here.

use simnet::SimDuration;

use crate::cache::CachePolicy;
use crate::substrate::SubstrateKind;

/// All tunables of the Flower-CDN protocol.
#[derive(Clone, Debug)]
pub struct FlowerConfig {
    // ---- gossip (Table 1, §4.2) ----
    /// View size `Vgossip`: max contacts in a content peer's view.
    pub v_gossip: usize,
    /// Gossip length `Lgossip`: view entries sent per exchange.
    pub l_gossip: usize,
    /// Gossip period `Tgossip` between exchanges a peer initiates.
    pub t_gossip: SimDuration,

    // ---- directory maintenance (§4.2.1, §5.1) ----
    /// Fraction of changed content triggering a push to the directory
    /// (Table 1: push threshold; default 0.1).
    pub push_threshold: f64,
    /// Fraction of new indexed objects triggering a directory-summary
    /// refresh to neighbour directory peers (§4.2.1, "delayed
    /// propagation").
    pub summary_refresh_threshold: f64,
    /// Age limit `Tdead` (in directory ticks) after which a directory
    /// entry is considered dead and removed (§5.1).
    pub t_dead: u32,
    /// Keepalive period of content peers toward their directory
    /// (§5.1); also the directory's age-increment tick.
    pub keepalive_period: SimDuration,

    // ---- overlay capacity (§5.3, Table 1) ----
    /// Maximum content-overlay size `Sco`.
    pub max_overlay: usize,

    // ---- D-ring substrate (§3.1) ----
    /// Which structured DHT the D-ring runs on ("can be integrated
    /// into any existing structured overlay … e.g., Chord, Pastry").
    pub substrate: SubstrateKind,

    // ---- D-ring key scheme (§3.1, §5.3) ----
    /// Bits `m1` of the locality segment (2^m1 ≥ k).
    pub locality_bits: u32,
    /// Extra low-order bits `b` for the §5.3 scale-up extension
    /// (multiple directory peers per (website, locality)); 0 in the
    /// paper's base design.
    pub instance_bits: u32,

    // ---- PetalUp split/merge policy (§5.3 scale-up) ----
    /// Split a petal (double its live directory instances, up to
    /// `2^b`) when one instance processes more than this many queries
    /// within one directory tick window. Inert when `instance_bits`
    /// is 0.
    pub petal_split_threshold: u64,
    /// Merge a petal (halve its live instances) when the *total*
    /// windowed query load across all its live instances falls below
    /// this floor. Must stay below the split threshold (hysteresis).
    pub petal_merge_floor: u64,

    // ---- DHT maintenance ----
    /// Chord stabilization period for directory peers.
    pub stabilize_period: SimDuration,
    /// Chord finger-repair period for directory peers.
    pub fix_finger_period: SimDuration,

    // ---- failure handling (§5.1, §5.2) ----
    /// Redirection retries before falling back to the server when
    /// holders turn out dead (§5.1).
    pub holder_retries: u8,
    /// Directory-level redirections allowed per query (Algorithm 3's
    /// directory-summary step). The paper's design gives 1: the
    /// locality's own directory plus at most one summary redirect.
    /// 0 disables directory summaries (ablation).
    pub max_dir_hops: u8,
    /// How many summary-matched view candidates a content peer probes
    /// before giving up on the overlay.
    pub summary_fetch_retries: u8,
    /// Where a content peer's query goes when its own cache and its
    /// view summaries fail. The paper's design sends it to the origin
    /// server: "once a client has become a content peer, any
    /// subsequent queries … directly use the content overlay instead
    /// of the D-ring" (§3.4) — which is exactly why the hit ratio of
    /// Table 2 depends on the gossip parameters. Setting this to true
    /// escalates to the directory peer instead (a design variant the
    /// ablation experiment measures).
    pub member_dir_fallback: bool,
    /// Maximum jitter before a content peer attempts to replace a dead
    /// directory (reduces join collisions; §5.2).
    pub dir_replacement_jitter: SimDuration,
    /// Timeout armed on every pending query. The paper's §5 failure
    /// handling relies on *synchronous* bounces from dead
    /// destinations; partitions and silent message loss give no such
    /// signal, so a pending query that hears nothing for this long
    /// fires a retry (doubling the timeout each attempt, re-routed to
    /// a sibling petal instance where the §5.3 scheme provides one)
    /// and, past [`FlowerConfig::query_retry_budget`], degrades to
    /// the origin server. `None` (the default, the paper's base
    /// system) disables timeouts entirely.
    pub query_timeout: Option<SimDuration>,
    /// Timed-out re-route attempts before a query degrades to the
    /// origin server. Only meaningful with `query_timeout` set.
    pub query_retry_budget: u8,

    // ---- §8 extensions (off by default: the paper's base system) ----
    /// Cache replacement policy of content peers (paper: unbounded).
    pub cache_policy: CachePolicy,
    /// Cache capacity in objects when the policy is bounded.
    pub cache_capacity: usize,
    /// Period of the active-replication extension (§8: "pushing
    /// popular contents towards other overlays of the same website");
    /// `None` disables it (the paper's base system).
    pub replication_period: Option<SimDuration>,
    /// How many of the most-requested objects each replication round
    /// offers to neighbour overlays.
    pub replication_top_k: usize,
}

impl Default for FlowerConfig {
    fn default() -> Self {
        FlowerConfig {
            v_gossip: 50,
            l_gossip: 10,
            t_gossip: SimDuration::from_mins(30),
            push_threshold: 0.1,
            summary_refresh_threshold: 0.1,
            t_dead: 10,
            keepalive_period: SimDuration::from_mins(5),
            max_overlay: 100,
            substrate: SubstrateKind::Chord,
            locality_bits: 8,
            instance_bits: 0,
            petal_split_threshold: 500,
            petal_merge_floor: 100,
            stabilize_period: SimDuration::from_mins(1),
            fix_finger_period: SimDuration::from_secs(30),
            holder_retries: 3,
            max_dir_hops: 1,
            summary_fetch_retries: 2,
            member_dir_fallback: false,
            dir_replacement_jitter: SimDuration::from_secs(60),
            query_timeout: None,
            query_retry_budget: 2,
            cache_policy: CachePolicy::Unbounded,
            cache_capacity: 0,
            replication_period: None,
            replication_top_k: 5,
        }
    }
}

impl FlowerConfig {
    /// The paper's chosen operating point (§6.2): `Tgossip = 30 min`,
    /// `Lgossip = 10`, `Vgossip = 50`.
    pub fn paper() -> Self {
        FlowerConfig::default()
    }

    /// A fast-converging configuration for small tests: second-scale
    /// periods instead of minutes.
    pub fn fast_test() -> Self {
        FlowerConfig {
            t_gossip: SimDuration::from_secs(10),
            keepalive_period: SimDuration::from_secs(5),
            stabilize_period: SimDuration::from_secs(5),
            fix_finger_period: SimDuration::from_secs(2),
            dir_replacement_jitter: SimDuration::from_secs(20),
            max_overlay: 20,
            v_gossip: 10,
            l_gossip: 4,
            ..Default::default()
        }
    }

    /// Validate invariants against the deployment parameters.
    pub fn validate(&self, num_localities: usize) -> Result<(), String> {
        if self.v_gossip == 0 {
            return Err("Vgossip must be positive".into());
        }
        if self.l_gossip == 0 || self.l_gossip > self.v_gossip {
            return Err(format!(
                "Lgossip must be in 1..=Vgossip ({} vs {})",
                self.l_gossip, self.v_gossip
            ));
        }
        if self.t_gossip.is_zero() {
            return Err("Tgossip must be positive".into());
        }
        if self.push_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("push threshold must be positive".into());
        }
        if self.t_dead == 0 {
            return Err("Tdead must be positive".into());
        }
        if self.max_overlay == 0 {
            return Err("Sco must be positive".into());
        }
        // The key-scheme geometry check lives in `KeyScheme::try_new`
        // (the single authority): an invalid `m1 + b` is a config
        // error here, never a panic downstream.
        let scheme = crate::id::KeyScheme::try_new(self.locality_bits, self.instance_bits)?;
        if num_localities > scheme.max_localities() {
            return Err(format!(
                "2^m1 = {} localities representable, {num_localities} requested",
                scheme.max_localities()
            ));
        }
        if self.instance_bits > 0 && self.petal_merge_floor >= self.petal_split_threshold {
            return Err(format!(
                "petal merge floor ({}) must stay below the split threshold ({}) \
                 or petals would oscillate",
                self.petal_merge_floor, self.petal_split_threshold
            ));
        }
        if self.cache_policy != CachePolicy::Unbounded && self.cache_capacity == 0 {
            return Err("bounded cache policy needs a positive capacity".into());
        }
        if let Some(p) = self.replication_period {
            if p.is_zero() {
                return Err("replication period must be positive".into());
            }
        }
        if let Some(t) = self.query_timeout {
            if t.is_zero() {
                return Err("query timeout must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = FlowerConfig::default();
        assert_eq!(c.v_gossip, 50);
        assert_eq!(c.l_gossip, 10);
        assert_eq!(c.t_gossip, SimDuration::from_mins(30));
        assert_eq!(c.max_overlay, 100);
        assert!((c.push_threshold - 0.1).abs() < 1e-12);
        c.validate(6).unwrap();
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_bad_configs() {
        let mut c = FlowerConfig::default();
        c.l_gossip = 0;
        assert!(c.validate(6).is_err());
        c = FlowerConfig::default();
        c.l_gossip = c.v_gossip + 1;
        assert!(c.validate(6).is_err());
        c = FlowerConfig::default();
        c.locality_bits = 2;
        assert!(c.validate(6).is_err(), "6 localities need 3 bits");
        c = FlowerConfig::default();
        c.locality_bits = 3;
        assert!(c.validate(6).is_ok());
        c = FlowerConfig::default();
        c.instance_bits = 60;
        assert!(c.validate(6).is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn key_scheme_bound_is_an_error_not_a_panic() {
        use crate::id::KeyScheme;
        use chord::ChordId;
        // The widest geometry KeyScheme::try_new accepts…
        let widest = ChordId::BITS - KeyScheme::MIN_WEBSITE_BITS;
        let mut c = FlowerConfig::default();
        c.locality_bits = 8;
        c.instance_bits = widest - 8;
        // (merge floor < split threshold holds by default)
        assert!(c.validate(6).is_ok(), "m2 = MIN_WEBSITE_BITS is legal");
        // …one more bit is a config *error* on this path, while
        // `KeyScheme::new` panics — the same single boundary.
        c.instance_bits = widest - 7;
        let err = c.validate(6).unwrap_err();
        assert!(err.contains("website bits"), "unexpected error: {err}");
        assert!(KeyScheme::try_new(8, widest - 7).is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn petal_policy_needs_hysteresis() {
        let mut c = FlowerConfig::default();
        c.instance_bits = 2;
        c.petal_split_threshold = 100;
        c.petal_merge_floor = 100;
        assert!(c.validate(6).is_err(), "floor == threshold oscillates");
        c.petal_merge_floor = 99;
        assert!(c.validate(6).is_ok());
        // Inert at instance_bits = 0: the knobs are not even checked.
        c.instance_bits = 0;
        c.petal_merge_floor = 100;
        assert!(c.validate(6).is_ok());
    }
}
