//! # bloom — Bloom filters and content summaries
//!
//! Flower-CDN represents the content held by a peer or indexed by a
//! directory as a *summary*: a Bloom filter over object identifiers,
//! following the summary-cache design of Fan et al. (SIGCOMM 1998)
//! that the paper cites for both its content summaries (§4.2) and its
//! directory summaries (§3.3).
//!
//! Sizing follows Table 1 of the paper: `summary size = 8 · nb-ob`
//! bits, i.e. 8 bits per potential object, which with the optimal
//! number of hash functions gives a false-positive rate around 2 %.
//!
//! The crate provides:
//! * [`BitVec`] — a compact bit vector;
//! * [`BloomFilter`] — insert / query / union with double hashing;
//! * [`ContentSummary`] — the paper-facing wrapper sized per Table 1,
//!   reporting its wire size for the bandwidth model;
//! * [`MaintainedSummary`] — the counting-Bloom-backed *maintained*
//!   form: O(k) insert/remove, O(words) snapshots bit-identical to a
//!   from-scratch [`ContentSummary`] (the hot-path replacement for
//!   rebuild-per-gossip).

pub mod bits;
pub mod filter;
pub mod maintained;
pub mod summary;

pub use bits::BitVec;
pub use filter::BloomFilter;
pub use maintained::MaintainedSummary;
pub use summary::{ContentSummary, ObjectId};
