//! Incrementally maintained content summaries.
//!
//! [`ContentSummary::from_objects`] rebuilds a filter from scratch —
//! `O(items · k)` hashing per call — which PR 3's engine profile
//! showed on the hot path: every gossip exchange rebuilt the peer's
//! summary and every directory-summary refresh rescanned the whole
//! index. PlanetP (Cuenca-Acuna et al.) reached the same conclusion
//! for its gossiped Bloom digests: maintain the summary as state,
//! don't recompute it.
//!
//! [`MaintainedSummary`] is the counting-Bloom-backed replacement: a
//! per-slot counter multiset plus the ordinary bit projection kept in
//! sync (`bit set ⇔ counter > 0`). `insert`/`remove` cost `O(k)`
//! counter updates; [`MaintainedSummary::snapshot`] clones the bit
//! projection in `O(words)` and is **bit-identical** (including the
//! insert count) to the filter [`ContentSummary::from_objects`] would
//! build from the same live multiset — both draw their probes from
//! the one shared probe function, so the seed-pinned simulations
//! cannot tell the difference.
//!
//! Counters are a multiset: inserting the same key twice requires
//! removing it twice before the bits clear. That is exactly the
//! directory-summary discipline, where one object is listed once per
//! holding member; content peers insert each held object once.
//!
//! Most summaries are nearly empty (a fresh content peer holds one or
//! two objects against a website of hundreds), so the counters start
//! as a sorted sparse `(slot, count)` list and promote themselves to
//! a dense array only once the sparse form would outgrow it — the
//! 100k-node deployments pay dense storage only for the peers that
//! actually fill up.

use crate::bits::BitVec;
use crate::filter::{probe_positions, rate_geometry, BloomFilter};
use crate::summary::{ContentSummary, ObjectId, BITS_PER_OBJECT};

/// Per-slot counter width. A slot's count is bounded by the number of
/// live insertions probing it; at the paper's `8·nb-ob` sizing the
/// expectation is `items · k / m = items · 0.75 / nb-ob`, so even a
/// directory indexing every object of every member stays orders of
/// magnitude under 2^16. Overflow panics rather than corrupting the
/// summary.
type Count = u16;

/// Counter storage: sparse while few slots are touched, dense after.
#[derive(Clone, Debug)]
enum Counts {
    /// Sorted `(slot, count)` pairs.
    Sparse(Vec<(u32, Count)>),
    /// One counter per slot.
    Dense(Vec<Count>),
}

/// A content summary maintained as state: counting-Bloom counters
/// plus the live bit projection, supporting `O(k)` insert/remove and
/// `O(words)` snapshots bit-identical to a from-scratch
/// [`ContentSummary`].
#[derive(Clone, Debug)]
pub struct MaintainedSummary {
    /// The design capacity (nb-ob), echoed into snapshots.
    capacity: usize,
    k: u32,
    /// Invariant: bit `i` is set ⇔ slot `i`'s counter is positive.
    bits: BitVec,
    counts: Counts,
    /// Live insertions (multiset cardinality) — the `items` count a
    /// from-scratch filter over the same multiset would report.
    items: usize,
    /// The last snapshot, reused until the next mutation: a summary
    /// gossiped every `Tgossip` while the content sits still costs one
    /// `Arc` bump per exchange instead of one bit-array copy.
    cached: Option<ContentSummary>,
}

impl MaintainedSummary {
    /// An empty maintained summary with the geometry of
    /// [`ContentSummary::empty`]`(capacity)` (Table 1: `8·nb-ob`
    /// bits).
    pub fn empty(capacity: usize) -> Self {
        let (m, k) = rate_geometry(capacity, BITS_PER_OBJECT);
        MaintainedSummary {
            capacity,
            k,
            bits: BitVec::new(m),
            counts: Counts::Sparse(Vec::new()),
            items: 0,
            cached: None,
        }
    }

    /// The design capacity (nb-ob).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live insertions (multiset cardinality).
    pub fn items(&self) -> usize {
        self.items
    }

    /// True when nothing is inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Sparse counters outgrow the dense array past this many touched
    /// slots (8 bytes per sparse pair vs 2 per dense slot).
    fn promote_threshold(&self) -> usize {
        self.bits.len() / 4
    }

    fn bump(&mut self, slot: usize) {
        let overflow = "counting-bloom slot overflow";
        let became_positive = match &mut self.counts {
            Counts::Sparse(v) => match v.binary_search_by_key(&(slot as u32), |(s, _)| *s) {
                Ok(i) => {
                    v[i].1 = v[i].1.checked_add(1).expect(overflow);
                    false
                }
                Err(i) => {
                    v.insert(i, (slot as u32, 1));
                    true
                }
            },
            Counts::Dense(v) => {
                v[slot] = v[slot].checked_add(1).expect(overflow);
                v[slot] == 1
            }
        };
        if became_positive {
            self.bits.set(slot);
        }
        if let Counts::Sparse(v) = &self.counts {
            if v.len() > self.promote_threshold() {
                let mut dense = vec![0 as Count; self.bits.len()];
                for (s, c) in v {
                    dense[*s as usize] = *c;
                }
                self.counts = Counts::Dense(dense);
            }
        }
    }

    fn drop_one(&mut self, slot: usize) {
        let missing = "removing a key that was never inserted";
        let became_zero = match &mut self.counts {
            Counts::Sparse(v) => {
                let i = v
                    .binary_search_by_key(&(slot as u32), |(s, _)| *s)
                    .unwrap_or_else(|_| panic!("{missing}"));
                assert!(v[i].1 > 0, "{missing}");
                v[i].1 -= 1;
                if v[i].1 == 0 {
                    v.remove(i);
                    true
                } else {
                    false
                }
            }
            Counts::Dense(v) => {
                assert!(v[slot] > 0, "{missing}");
                v[slot] -= 1;
                v[slot] == 0
            }
        };
        if became_zero {
            self.bits.unset(slot);
        }
    }

    /// Add one occurrence of `o` (`O(k)`).
    pub fn insert(&mut self, o: ObjectId) {
        self.cached = None;
        for p in probe_positions(self.bits.len() as u64, self.k, o.key()) {
            self.bump(p);
        }
        self.items += 1;
    }

    /// Remove one occurrence of `o` (`O(k)`); panics if `o` has no
    /// live occurrence — callers own the exact content/index state,
    /// so a miss is a bookkeeping bug, not a runtime condition.
    pub fn remove(&mut self, o: ObjectId) {
        assert!(self.items > 0, "removing from an empty summary");
        self.cached = None;
        for p in probe_positions(self.bits.len() as u64, self.k, o.key()) {
            self.drop_one(p);
        }
        self.items -= 1;
    }

    /// Probabilistic membership (same guarantees as the snapshot).
    pub fn might_contain(&self, o: ObjectId) -> bool {
        probe_positions(self.bits.len() as u64, self.k, o.key()).all(|p| self.bits.get(p))
    }

    /// Drop everything (§5.2 index reset / snapshot install).
    pub fn clear(&mut self) {
        self.cached = None;
        self.bits.clear();
        self.counts = Counts::Sparse(Vec::new());
        self.items = 0;
    }

    /// Whether the next [`MaintainedSummary::snapshot`] is a cached
    /// `Arc` bump (no mutation since the last snapshot) rather than a
    /// bit-projection rebuild.
    pub fn is_cached(&self) -> bool {
        self.cached.is_some()
    }

    /// The wire-ready summary of the current multiset: bit-identical
    /// (bits *and* insert count) to `ContentSummary::from_objects`
    /// over the same live multiset. Costs an `O(words)` clone of the
    /// bit projection after a mutation and an `Arc` bump thereafter.
    pub fn snapshot(&mut self) -> ContentSummary {
        if let Some(c) = &self.cached {
            return c.clone();
        }
        let s = ContentSummary::from_parts(
            BloomFilter::from_raw_parts(self.bits.clone(), self.k, self.items),
            self.capacity,
        );
        self.cached = Some(s.clone());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_from_scratch_exactly() {
        let objs: Vec<ObjectId> = (0..40).map(|i| ObjectId(i * 7919 + 3)).collect();
        let mut m = MaintainedSummary::empty(100);
        for o in &objs {
            m.insert(*o);
        }
        assert_eq!(m.snapshot(), ContentSummary::from_objects(100, &objs));
        assert_eq!(m.items(), 40);
    }

    #[test]
    fn remove_restores_the_exact_previous_filter() {
        let keep: Vec<ObjectId> = (0..10).map(|i| ObjectId(i * 31)).collect();
        let mut m = MaintainedSummary::empty(50);
        for o in &keep {
            m.insert(*o);
        }
        let before = m.snapshot();
        m.insert(ObjectId(999));
        assert!(m.might_contain(ObjectId(999)));
        m.remove(ObjectId(999));
        assert_eq!(m.snapshot(), before, "remove must undo insert bit-exactly");
        assert!(
            !m.might_contain(ObjectId(999))
                || ContentSummary::from_objects(50, &keep).might_contain(ObjectId(999)),
            "999 may only remain as a false positive of the survivors"
        );
    }

    #[test]
    fn multiset_semantics_need_matching_removes() {
        let mut m = MaintainedSummary::empty(20);
        m.insert(ObjectId(5));
        m.insert(ObjectId(5));
        m.remove(ObjectId(5));
        assert!(m.might_contain(ObjectId(5)), "one live occurrence left");
        m.remove(ObjectId(5));
        assert!(!m.might_contain(ObjectId(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn promotes_to_dense_and_stays_exact() {
        // capacity 8 → 64 slots → promotion after >16 touched slots,
        // i.e. after a handful of objects.
        let objs: Vec<ObjectId> = (0..30).map(|i| ObjectId(i * 101 + 7)).collect();
        let mut m = MaintainedSummary::empty(8);
        for o in &objs {
            m.insert(*o);
        }
        assert!(matches!(m.counts, Counts::Dense(_)), "should have promoted");
        assert_eq!(m.snapshot(), ContentSummary::from_objects(8, &objs));
        for o in &objs {
            m.remove(*o);
        }
        assert!(m.is_empty());
        assert_eq!(m.snapshot(), ContentSummary::empty(8));
    }

    #[test]
    fn clear_resets_to_empty_geometry() {
        let mut m = MaintainedSummary::empty(10);
        m.insert(ObjectId(1));
        m.clear();
        assert_eq!(m.snapshot(), ContentSummary::empty(10));
        assert_eq!(m.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "never inserted")]
    fn removing_an_absent_key_panics() {
        let mut m = MaintainedSummary::empty(10);
        m.insert(ObjectId(1));
        m.remove(ObjectId(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Set-discipline interleaving (the content-peer usage):
        /// inserts and removes tracked against a reference set; the
        /// snapshot after any interleaving equals the from-scratch
        /// filter over the survivors, bit for bit.
        #[test]
        fn interleaved_set_ops_snapshot_exactly(
            ops in proptest::collection::vec((0u64..48, any::<bool>()), 0..200),
            capacity in 1usize..40,
        ) {
            let mut m = MaintainedSummary::empty(capacity);
            let mut live = std::collections::BTreeSet::new();
            for (key, add) in ops {
                let o = ObjectId(key * 0x9E37 + 1);
                if add {
                    if live.insert(o) {
                        m.insert(o);
                    }
                } else if live.remove(&o) {
                    m.remove(o);
                }
            }
            let objs: Vec<ObjectId> = live.iter().copied().collect();
            prop_assert_eq!(m.snapshot(), ContentSummary::from_objects(capacity, &objs));
            prop_assert_eq!(m.items(), objs.len());
            for o in &objs {
                prop_assert!(m.might_contain(*o), "no false negatives");
            }
        }

        /// Multiset interleaving (the directory usage: one listing per
        /// holding member): duplicates count, and the snapshot equals
        /// the from-scratch filter over the surviving *multiset*,
        /// including its duplicate-counting insert tally.
        #[test]
        fn interleaved_multiset_ops_snapshot_exactly(
            ops in proptest::collection::vec((0u64..16, any::<bool>()), 0..200),
            capacity in 1usize..20,
        ) {
            let mut m = MaintainedSummary::empty(capacity);
            let mut live: Vec<ObjectId> = Vec::new();
            for (key, add) in ops {
                let o = ObjectId(key.wrapping_mul(0xABCD) ^ 7);
                if add {
                    live.push(o);
                    m.insert(o);
                } else if let Some(i) = live.iter().position(|x| *x == o) {
                    live.swap_remove(i);
                    m.remove(o);
                }
            }
            // from_objects is order-insensitive on counters, but keep
            // the reference deterministic anyway.
            live.sort_unstable();
            prop_assert_eq!(m.snapshot(), ContentSummary::from_objects(capacity, &live));
            prop_assert_eq!(m.items(), live.len());
        }
    }
}
