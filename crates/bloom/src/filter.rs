//! A classic Bloom filter with double hashing.
//!
//! Uses the Kirsch–Mitzenmacher construction: two independent 64-bit
//! hashes `h1`, `h2` of the key generate the `k` probe positions
//! `h1 + i·h2 (mod m)`, which preserves the asymptotic false-positive
//! behaviour of `k` independent hash functions. Hashing is a seeded
//! 64-bit mix (SplitMix64 finalizer) so the filter needs no external
//! dependencies and is fully deterministic.

use crate::bits::BitVec;

/// A Bloom filter over `u64` keys.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    k: u32,
    items: usize,
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Kirsch–Mitzenmacher probe sequence for `key` over `m_bits`
/// slots with `k` probes. Shared by [`BloomFilter`] and
/// [`crate::MaintainedSummary`] so the two can never disagree on
/// which bits a key touches — the maintained summary's snapshots are
/// bit-identical to from-scratch filters *because* this function is
/// the single probe authority.
pub(crate) fn probe_positions(m_bits: u64, k: u32, key: u64) -> impl Iterator<Item = usize> {
    let h1 = mix64(key);
    let h2 = mix64(key ^ 0xDEAD_BEEF_CAFE_F00D) | 1; // odd stride
    (0..k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m_bits) as usize)
}

/// The filter geometry [`BloomFilter::with_rate`] derives from an
/// expected item count: `(m_bits, k)`. Shared with
/// [`crate::MaintainedSummary`] so both size identically.
pub(crate) fn rate_geometry(expected_items: usize, bits_per_item: usize) -> (usize, u32) {
    let m = (expected_items.max(1)) * bits_per_item.max(1);
    let k = ((bits_per_item as f64) * std::f64::consts::LN_2)
        .round()
        .max(1.0) as u32;
    (m, k)
}

impl BloomFilter {
    /// A filter with `m_bits` bits and `k` probes per key.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(k > 0, "need at least one hash function");
        BloomFilter {
            bits: BitVec::new(m_bits),
            k,
            items: 0,
        }
    }

    /// A filter sized for `expected_items` with `bits_per_item` bits
    /// each and the optimal probe count `k = bits_per_item · ln 2`.
    ///
    /// The paper's Table 1 uses 8 bits per object (`summary size =
    /// 8·nb-ob bits`), for which the optimal `k` is 5 or 6 and the
    /// false-positive rate ≈ 2 %.
    pub fn with_rate(expected_items: usize, bits_per_item: usize) -> Self {
        let (m, k) = rate_geometry(expected_items, bits_per_item);
        BloomFilter::new(m, k)
    }

    /// Assemble a filter from an externally maintained bit projection
    /// (the [`crate::MaintainedSummary`] snapshot path). `items` is
    /// the live insert count the maintained state tracked.
    pub(crate) fn from_raw_parts(bits: BitVec, k: u32, items: usize) -> Self {
        assert!(k > 0, "need at least one hash function");
        BloomFilter { bits, k, items }
    }

    fn probes(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        probe_positions(self.bits.len() as u64, self.k, key)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let idxs: Vec<usize> = self.probes(key).collect();
        for i in idxs {
            self.bits.set(i);
        }
        self.items += 1;
    }

    /// Query a key. False positives are possible; false negatives are
    /// not.
    pub fn contains(&self, key: u64) -> bool {
        self.probes(key).all(|i| self.bits.get(i))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.items = 0;
    }

    /// Number of `insert` calls since the last clear (an upper bound
    /// on distinct items).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Merge another filter of identical geometry into this one; the
    /// result answers `contains` positively for the union of keys.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(self.k, other.k, "probe-count mismatch in union");
        self.bits.union_with(&other.bits);
        self.items += other.items;
    }

    /// Estimated false-positive probability at the current fill level:
    /// `(set_bits / m)^k`.
    pub fn estimated_fpr(&self) -> f64 {
        let fill = self.bits.count_ones() as f64 / self.bits.len() as f64;
        fill.powi(self.k as i32)
    }

    /// Size of the filter on the wire, in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.byte_size()
    }

    /// Number of bits `m`.
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of probes `k`.
    pub fn num_hashes(&self) -> u32 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(100, 8);
        for key in 0..100u64 {
            f.insert(key * 7919);
        }
        for key in 0..100u64 {
            assert!(f.contains(key * 7919), "false negative for {key}");
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_table1_sizing() {
        // Table 1: 8 bits per object. Insert 100 "held" objects,
        // probe 10_000 absent keys; expect roughly 2% positives.
        let mut f = BloomFilter::with_rate(100, 8);
        for key in 0..100u64 {
            f.insert(key);
        }
        let fp = (1_000_000..1_010_000u64).filter(|k| f.contains(*k)).count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.06, "false positive rate too high: {rate}");
    }

    #[test]
    fn estimated_fpr_tracks_fill() {
        let mut f = BloomFilter::with_rate(100, 8);
        let empty = f.estimated_fpr();
        assert_eq!(empty, 0.0);
        for key in 0..100u64 {
            f.insert(key);
        }
        let full = f.estimated_fpr();
        assert!(full > 0.0 && full < 0.1, "fpr estimate {full}");
    }

    #[test]
    fn clear_empties() {
        let mut f = BloomFilter::with_rate(10, 8);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn union_covers_both() {
        let mut a = BloomFilter::new(800, 5);
        let mut b = BloomFilter::new(800, 5);
        a.insert(1);
        b.insert(2);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(2));
    }

    #[test]
    fn geometry_accessors() {
        let f = BloomFilter::with_rate(100, 8);
        assert_eq!(f.num_bits(), 800);
        assert_eq!(f.byte_size(), 100);
        // optimal k for 8 bits/item = round(8 ln2) = 6
        assert_eq!(f.num_hashes(), 6);
    }

    #[test]
    fn with_rate_handles_zero_inputs() {
        let f = BloomFilter::with_rate(0, 0);
        assert!(f.num_bits() >= 1);
        assert!(f.num_hashes() >= 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Inserted keys are always found (no false negatives), for
        /// arbitrary keys and geometries.
        #[test]
        fn never_false_negative(keys in proptest::collection::vec(any::<u64>(), 1..100), bits_per in 2usize..16) {
            let mut f = BloomFilter::with_rate(keys.len(), bits_per);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                prop_assert!(f.contains(k));
            }
        }

        /// Union preserves membership of both operands.
        #[test]
        fn union_superset(xs in proptest::collection::vec(any::<u64>(), 0..50), ys in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut a = BloomFilter::new(1024, 5);
            let mut b = BloomFilter::new(1024, 5);
            for &k in &xs { a.insert(k); }
            for &k in &ys { b.insert(k); }
            a.union_with(&b);
            for &k in xs.iter().chain(&ys) {
                prop_assert!(a.contains(k));
            }
        }
    }
}
