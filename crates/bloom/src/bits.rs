//! A compact, fixed-size bit vector backed by `u64` words.

/// Fixed-capacity bit vector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitVec {
    words: Vec<u64>,
    len_bits: usize,
}

impl BitVec {
    /// A zeroed bit vector of `len_bits` bits.
    pub fn new(len_bits: usize) -> Self {
        assert!(len_bits > 0, "bit vector must have at least one bit");
        BitVec {
            words: vec![0; len_bits.div_ceil(64)],
            len_bits,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len_bits
    }

    /// Always false: a `BitVec` has at least one bit by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Set bit `i` to one.
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len_bits,
            "bit index {i} out of range {}",
            self.len_bits
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Set bit `i` to zero.
    pub fn unset(&mut self, i: usize) {
        assert!(
            i < self.len_bits,
            "bit index {i} out of range {}",
            self.len_bits
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len_bits,
            "bit index {i} out of range {}",
            self.len_bits
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise OR of another vector of the same length into `self`.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch in union");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        assert_eq!(
            self.len_bits, other.len_bits,
            "length mismatch in subset test"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Serialized size in bytes (what a summary costs on the wire).
    pub fn byte_size(&self) -> usize {
        self.len_bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitVec::new(130);
        assert_eq!(b.len(), 130);
        for i in [0, 1, 63, 64, 65, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn clear_resets() {
        let mut b = BitVec::new(64);
        b.set(5);
        b.set(63);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(3);
        b.set(97);
        assert!(!a.is_subset_of(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(u.count_ones(), 2);
    }

    #[test]
    fn byte_size_rounds_up() {
        assert_eq!(BitVec::new(8).byte_size(), 1);
        assert_eq!(BitVec::new(9).byte_size(), 2);
        assert_eq!(BitVec::new(800).byte_size(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitVec::new(10);
        let _ = b.get(10);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_len_rejected() {
        let _ = BitVec::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Bits set are exactly the bits read back.
        #[test]
        fn set_bits_are_readable(len in 1usize..300, idxs in proptest::collection::vec(0usize..300, 0..40)) {
            let mut b = BitVec::new(len);
            let valid: Vec<usize> = idxs.into_iter().filter(|i| *i < len).collect();
            for &i in &valid {
                b.set(i);
            }
            for i in 0..len {
                prop_assert_eq!(b.get(i), valid.contains(&i));
            }
        }

        /// Union is commutative on count and makes both operands subsets.
        #[test]
        fn union_laws(xs in proptest::collection::vec(0usize..200, 0..30), ys in proptest::collection::vec(0usize..200, 0..30)) {
            let mut a = BitVec::new(200);
            let mut b = BitVec::new(200);
            for &i in &xs { a.set(i); }
            for &i in &ys { b.set(i); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert!(a.is_subset_of(&ab));
            prop_assert!(b.is_subset_of(&ab));
        }
    }
}
