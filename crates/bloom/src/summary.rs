//! Content summaries: the paper-facing Bloom-filter wrapper.
//!
//! A *content summary* (§4.2) represents the set of objects a content
//! peer currently holds; a *directory summary* (§3.3) represents the
//! set of objects indexed by a whole directory peer. Both are Bloom
//! filters over object identifiers (`hash(url)`), sized per Table 1 at
//! `8 · nb-ob` bits where `nb-ob` is the number of objects a website
//! provides.

use crate::filter::BloomFilter;

/// Identifier of a web object: in the paper, `hash(url)`. The
/// identifier is global (website id is baked in by the workload
/// catalog), so summaries from different websites never collide
/// structurally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw key.
    pub fn key(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{:x}", self.0)
    }
}

/// A Bloom-filter summary of a set of objects, sized per Table 1 of
/// the paper (8 bits per potential object).
///
/// The filter is behind an `Arc`: a summary on the wire is an
/// immutable value that gets cloned into every gossip subset entry,
/// every view slot and every directory broadcast — at 100k nodes
/// those clones (one heap copy of the bit array each) dominated the
/// gossip profile. Cloning is now a reference bump; the rare mutation
/// of a shared summary copies on write.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContentSummary {
    filter: std::sync::Arc<BloomFilter>,
    capacity: usize,
}

/// Bits per object in a summary (Table 1: summary size = 8·nb-ob bits).
pub const BITS_PER_OBJECT: usize = 8;

impl ContentSummary {
    /// An empty summary able to represent up to `capacity` objects
    /// (the paper: "the maximum number of objects held by a content
    /// peer is limited by the total number of objects provided by its
    /// website").
    pub fn empty(capacity: usize) -> Self {
        ContentSummary {
            filter: std::sync::Arc::new(BloomFilter::with_rate(capacity, BITS_PER_OBJECT)),
            capacity,
        }
    }

    /// Assemble a summary around an already-built filter (the
    /// [`crate::MaintainedSummary`] snapshot path).
    pub(crate) fn from_parts(filter: BloomFilter, capacity: usize) -> Self {
        ContentSummary {
            filter: std::sync::Arc::new(filter),
            capacity,
        }
    }

    /// Build a summary from a set of object ids.
    pub fn from_objects<'a>(
        capacity: usize,
        objects: impl IntoIterator<Item = &'a ObjectId>,
    ) -> Self {
        let mut s = ContentSummary::empty(capacity);
        for o in objects {
            s.insert(*o);
        }
        s
    }

    /// Add one object (copies a shared filter on write).
    pub fn insert(&mut self, o: ObjectId) {
        std::sync::Arc::make_mut(&mut self.filter).insert(o.key());
    }

    /// Probabilistic membership test (false positives possible, false
    /// negatives impossible).
    pub fn might_contain(&self, o: ObjectId) -> bool {
        self.filter.contains(o.key())
    }

    /// Merge another summary of the same capacity.
    pub fn union_with(&mut self, other: &ContentSummary) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        std::sync::Arc::make_mut(&mut self.filter).union_with(&other.filter);
    }

    /// Drop all objects.
    pub fn clear(&mut self) {
        std::sync::Arc::make_mut(&mut self.filter).clear();
    }

    /// The design capacity (nb-ob).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Wire size in bytes: what sending this summary costs, per the
    /// paper's `8·nb-ob` bits rule.
    pub fn wire_size(&self) -> u32 {
        self.filter.byte_size() as u32
    }

    /// Estimated false-positive probability at current fill.
    pub fn estimated_fpr(&self) -> f64 {
        self.filter.estimated_fpr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing() {
        // nb-ob = 100 objects → 800 bits → 100 bytes on the wire.
        let s = ContentSummary::empty(100);
        assert_eq!(s.wire_size(), 100);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn membership_roundtrip() {
        let objs: Vec<ObjectId> = (0..50).map(|i| ObjectId(i * 31 + 7)).collect();
        let s = ContentSummary::from_objects(100, &objs);
        for o in &objs {
            assert!(s.might_contain(*o));
        }
    }

    #[test]
    fn union_merges() {
        let mut a = ContentSummary::from_objects(100, &[ObjectId(1)]);
        let b = ContentSummary::from_objects(100, &[ObjectId(2)]);
        a.union_with(&b);
        assert!(a.might_contain(ObjectId(1)));
        assert!(a.might_contain(ObjectId(2)));
    }

    #[test]
    fn clear_empties() {
        let mut s = ContentSummary::from_objects(10, &[ObjectId(9)]);
        s.clear();
        assert!(!s.might_contain(ObjectId(9)));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = ContentSummary::empty(10);
        let b = ContentSummary::empty(20);
        a.union_with(&b);
    }

    #[test]
    fn display_object_id() {
        assert_eq!(format!("{}", ObjectId(255)), "objff");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A summary never forgets an inserted object.
        #[test]
        fn no_false_negatives(ids in proptest::collection::vec(any::<u64>(), 1..80)) {
            let objs: Vec<ObjectId> = ids.iter().map(|&i| ObjectId(i)).collect();
            let s = ContentSummary::from_objects(objs.len(), &objs);
            for o in &objs {
                prop_assert!(s.might_contain(*o));
            }
        }
    }
}
