//! Deterministic query-stream generation (§6.1 of the paper).
//!
//! Queries form a Poisson process at `query_rate_per_sec` (Table 1:
//! 6 q/s), each query choosing:
//!
//! 1. a website uniformly among the active ones ("distributed between
//!    the 6 active websites");
//! 2. an object of that website by Zipf rank ("the queried object is
//!    selected, using zipf law, among ws objects").
//!
//! The paper's third choice — the originator ("a new client or a
//! content peer of ws chosen from a random locality") — depends on
//! protocol state (who is already a content peer, which overlays are
//! full), so it is carried out by the system harness at injection
//! time; the stream only fixes the time, website and object of each
//! query, which keeps Flower-CDN and Squirrel runs *trace-identical*.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bloom::ObjectId;

use crate::catalog::{Catalog, WebsiteId};
use crate::zipf::Zipf;

/// Workload shape (Table 1 defaults).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Mean query arrival rate (queries per second).
    pub query_rate_per_sec: f64,
    /// Length of the generated trace in milliseconds.
    pub duration_ms: u64,
    /// Zipf skew for object popularity.
    pub zipf_alpha: f64,
    /// Zipf skew for *website* popularity across the active websites
    /// (0 = the paper's uniform choice, bit-for-bit the historical
    /// trace). Positive values rank active websites by id — the
    /// workload the §5.3 PetalUp scale-up is designed for, where a
    /// few hot websites would overload their directory petals.
    pub website_zipf_alpha: f64,
    /// Scripted load surges overlaid on the base Poisson trace
    /// (flash crowds, diurnal cycles). Strictly *additive*: each
    /// surge's extra queries come from its own derived RNG stream, so
    /// the base trace — and every seed pin built on it — stays
    /// bit-identical whether the list is empty or not.
    pub surges: Vec<Surge>,
}

/// One scripted surge of extra load (see [`WorkloadConfig::surges`]).
#[derive(Clone, Debug)]
pub enum Surge {
    /// A flash crowd: `extra_rate_per_sec` additional queries, all
    /// aimed at one website, for the window `[start_ms, end_ms)` —
    /// the fCDN motivating case where a single site's demand spikes
    /// orders of magnitude above baseline.
    FlashCrowd {
        /// Window start, milliseconds from trace start.
        start_ms: u64,
        /// Window end (exclusive).
        end_ms: u64,
        /// Popularity rank of the targeted website among the active
        /// ones (0 = first active website); clamped to the active set.
        website_rank: usize,
        /// Additional mean arrival rate during the window.
        extra_rate_per_sec: f64,
    },
    /// A diurnal cycle: extra load rising and falling with a
    /// sinusoidal day profile — Poisson arrivals at
    /// `peak_extra_rate_per_sec`, thinned by `max(0, sin(2πt/period))`
    /// so load is only *added* during the daytime half-cycle (an
    /// additive overlay cannot model negative modulation).
    Diurnal {
        /// Full day length in trace milliseconds.
        period_ms: u64,
        /// Additional arrival rate at the daytime peak.
        peak_extra_rate_per_sec: f64,
    },
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            query_rate_per_sec: 6.0,
            duration_ms: 24 * 3600 * 1000,
            zipf_alpha: Zipf::DEFAULT_ALPHA,
            website_zipf_alpha: 0.0,
            surges: Vec::new(),
        }
    }
}

impl WorkloadConfig {
    /// A short trace for tests.
    pub fn short_test() -> Self {
        WorkloadConfig {
            duration_ms: 60_000,
            ..Default::default()
        }
    }
}

/// One query of the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryEvent {
    /// Submission time, milliseconds from simulation start.
    pub at_ms: u64,
    /// The targeted website.
    pub website: WebsiteId,
    /// The requested object.
    pub object: ObjectId,
    /// Popularity rank of the object within its website (0 = most
    /// popular) — kept for analysis.
    pub rank: u32,
}

/// A complete, precomputed query trace.
#[derive(Clone, Debug)]
pub struct QueryStream {
    events: Vec<QueryEvent>,
}

impl QueryStream {
    /// Generate the trace deterministically from `seed`.
    pub fn generate(cfg: &WorkloadConfig, catalog: &Catalog, seed: u64) -> Self {
        assert!(cfg.query_rate_per_sec > 0.0, "query rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0131_D000);
        let zipf = Zipf::new(catalog.objects_per_website(), cfg.zipf_alpha);
        let active: Vec<WebsiteId> = catalog.active_websites().collect();
        assert!(!active.is_empty(), "no active websites to query");
        // Skewed website choice is opt-in: with alpha 0 the historical
        // uniform draw runs unchanged (same RNG consumption), keeping
        // every pinned trace valid.
        let website_zipf =
            (cfg.website_zipf_alpha > 0.0).then(|| Zipf::new(active.len(), cfg.website_zipf_alpha));

        let mean_gap_ms = 1000.0 / cfg.query_rate_per_sec;
        let mut events = Vec::with_capacity((cfg.duration_ms as f64 / mean_gap_ms * 1.1) as usize);
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival (Poisson process).
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() * mean_gap_ms;
            let at_ms = t as u64;
            if at_ms >= cfg.duration_ms {
                break;
            }
            let website = match &website_zipf {
                Some(z) => active[z.sample(&mut rng)],
                None => active[rng.gen_range(0..active.len())],
            };
            let rank = zipf.sample(&mut rng);
            events.push(QueryEvent {
                at_ms,
                website,
                object: catalog.object_id(website, rank),
                rank: rank as u32,
            });
        }
        // Surges are generated *after* the base trace, each from its
        // own derived RNG stream, and merged by a stable sort — so
        // the base events (and their relative order at equal
        // timestamps) are untouched by any surge configuration.
        for (i, surge) in cfg.surges.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(seed ^ 0x5a26_e000 ^ ((i as u64) << 32));
            surge_events(surge, cfg, catalog, &zipf, &active, &mut srng, &mut events);
        }
        if !cfg.surges.is_empty() {
            events.sort_by_key(|e| e.at_ms);
        }
        QueryStream { events }
    }

    /// The trace, in non-decreasing time order.
    pub fn events(&self) -> &[QueryEvent] {
        &self.events
    }

    /// Queries per second in `[from_ms, to_ms)` — for sanity checks
    /// on surge shapes.
    pub fn rate_in(&self, from_ms: u64, to_ms: u64) -> f64 {
        assert!(from_ms < to_ms);
        let n = self
            .events
            .iter()
            .filter(|e| e.at_ms >= from_ms && e.at_ms < to_ms)
            .count();
        n as f64 * 1000.0 / (to_ms - from_ms) as f64
    }

    /// Number of queries in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Append one surge's extra queries to `events` (unsorted; the caller
/// merges). Object ranks follow the same Zipf law as the base trace.
fn surge_events(
    surge: &Surge,
    cfg: &WorkloadConfig,
    catalog: &Catalog,
    zipf: &Zipf,
    active: &[WebsiteId],
    rng: &mut StdRng,
    events: &mut Vec<QueryEvent>,
) {
    match *surge {
        Surge::FlashCrowd {
            start_ms,
            end_ms,
            website_rank,
            extra_rate_per_sec,
        } => {
            assert!(start_ms < end_ms, "flash crowd window must be non-empty");
            assert!(
                extra_rate_per_sec > 0.0,
                "flash crowd rate must be positive"
            );
            let website = active[website_rank.min(active.len() - 1)];
            let mean_gap_ms = 1000.0 / extra_rate_per_sec;
            let mut t = start_ms as f64;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() * mean_gap_ms;
                let at_ms = t as u64;
                if at_ms >= end_ms.min(cfg.duration_ms) {
                    break;
                }
                let rank = zipf.sample(rng);
                events.push(QueryEvent {
                    at_ms,
                    website,
                    object: catalog.object_id(website, rank),
                    rank: rank as u32,
                });
            }
        }
        Surge::Diurnal {
            period_ms,
            peak_extra_rate_per_sec,
        } => {
            assert!(period_ms > 0, "diurnal period must be positive");
            assert!(
                peak_extra_rate_per_sec > 0.0,
                "diurnal peak rate must be positive"
            );
            // Thinned Poisson process: candidates at the peak rate,
            // each kept with probability max(0, sin(2πt/period)).
            let mean_gap_ms = 1000.0 / peak_extra_rate_per_sec;
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() * mean_gap_ms;
                let at_ms = t as u64;
                if at_ms >= cfg.duration_ms {
                    break;
                }
                let phase = (t / period_ms as f64) * std::f64::consts::TAU;
                let keep: f64 = rng.gen_range(0.0..1.0);
                if keep >= phase.sin() {
                    continue;
                }
                let website = active[rng.gen_range(0..active.len())];
                let rank = zipf.sample(rng);
                events.push(QueryEvent {
                    at_ms,
                    website,
                    object: catalog.object_id(website, rank),
                    rank: rank as u32,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn catalog() -> Catalog {
        Catalog::new(CatalogConfig::default())
    }

    #[test]
    fn rate_is_respected() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            ..Default::default()
        };
        let s = QueryStream::generate(&cfg, &catalog(), 42);
        // 6 q/s for an hour ≈ 21600 queries; Poisson noise ±3σ ≈ ±450.
        let n = s.len() as f64;
        assert!((n - 21_600.0).abs() < 600.0, "unexpected query count {n}");
    }

    #[test]
    fn events_are_time_ordered_within_duration() {
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 1);
        let mut last = 0;
        for e in s.events() {
            assert!(e.at_ms >= last);
            assert!(e.at_ms < 60_000);
            last = e.at_ms;
        }
    }

    #[test]
    fn only_active_websites_queried() {
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 2);
        assert!(!s.is_empty());
        for e in s.events() {
            assert!(e.website.idx() < 6, "inactive website {}", e.website);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 3);
        let b = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 3);
        assert_eq!(a.events(), b.events());
        let c = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 4);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn objects_follow_zipf_head() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            ..Default::default()
        };
        let cat = catalog();
        let s = QueryStream::generate(&cfg, &cat, 5);
        let head = s.events().iter().filter(|e| e.rank < 10).count() as f64;
        let frac = head / s.len() as f64;
        // Compare against the analytic top-10 Zipf mass.
        let z = Zipf::new(cat.objects_per_website(), cfg.zipf_alpha);
        let expect: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!(
            (frac - expect).abs() < 0.05,
            "head fraction {frac:.3} vs analytic {expect:.3}"
        );
    }

    #[test]
    fn website_skew_concentrates_on_low_ranks() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            website_zipf_alpha: 1.2,
            ..Default::default()
        };
        let cat = catalog();
        let s = QueryStream::generate(&cfg, &cat, 7);
        let mut counts = [0usize; 6];
        for e in s.events() {
            counts[e.website.idx()] += 1;
        }
        assert!(
            counts[0] > counts[5] * 3,
            "rank-0 website must dominate: {counts:?}"
        );
        // Every active website still sees some traffic.
        assert!(counts.iter().all(|c| *c > 0), "{counts:?}");
        // And alpha = 0 stays bit-identical to the uniform draw.
        let base = WorkloadConfig {
            duration_ms: 600_000,
            ..Default::default()
        };
        let explicit_zero = WorkloadConfig {
            website_zipf_alpha: 0.0,
            ..base.clone()
        };
        assert_eq!(
            QueryStream::generate(&base, &cat, 3).events(),
            QueryStream::generate(&explicit_zero, &cat, 3).events(),
        );
    }

    #[test]
    fn flash_crowd_spikes_one_website_and_leaves_base_trace_intact() {
        let base = WorkloadConfig {
            duration_ms: 600_000,
            ..Default::default()
        };
        let surged = WorkloadConfig {
            surges: vec![Surge::FlashCrowd {
                start_ms: 200_000,
                end_ms: 400_000,
                website_rank: 2,
                extra_rate_per_sec: 30.0,
            }],
            ..base.clone()
        };
        let cat = catalog();
        let plain = QueryStream::generate(&base, &cat, 11);
        let s = QueryStream::generate(&surged, &cat, 11);
        // The surge multiplies load inside its window…
        assert!(
            s.rate_in(200_000, 400_000) > plain.rate_in(200_000, 400_000) * 4.0,
            "flash crowd must dominate the window"
        );
        // …leaves the rest of the trace at the base rate…
        assert!((s.rate_in(0, 200_000) - plain.rate_in(0, 200_000)).abs() < 1.0);
        // …aims at exactly one website…
        let ws2 = cat.active_websites().nth(2).unwrap();
        let in_window: Vec<_> = s
            .events()
            .iter()
            .filter(|e| e.at_ms >= 200_000 && e.at_ms < 400_000)
            .collect();
        let on_target = in_window.iter().filter(|e| e.website == ws2).count();
        assert!(
            on_target as f64 > in_window.len() as f64 * 0.7,
            "most window queries must hit the flash-crowd site"
        );
        // …and is purely additive: every base event survives verbatim.
        let as_set: Vec<_> = s.events().to_vec();
        for e in plain.events() {
            assert!(as_set.contains(e), "base event {e:?} lost");
        }
        // Time order is preserved through the merge.
        assert!(s.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn diurnal_cycle_peaks_in_daytime_half() {
        let cfg = WorkloadConfig {
            duration_ms: 1_200_000,
            query_rate_per_sec: 1.0,
            surges: vec![Surge::Diurnal {
                period_ms: 1_200_000,
                peak_extra_rate_per_sec: 20.0,
            }],
            ..Default::default()
        };
        let s = QueryStream::generate(&cfg, &catalog(), 13);
        // Daytime = first half-period (sin > 0); night adds nothing.
        let day = s.rate_in(0, 600_000);
        let night = s.rate_in(600_000, 1_200_000);
        assert!(
            day > night * 3.0,
            "daytime rate {day:.2} must dwarf night {night:.2}"
        );
        assert!(s.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn empty_surge_list_is_bit_identical_to_default() {
        let base = WorkloadConfig {
            duration_ms: 600_000,
            ..Default::default()
        };
        let explicit = WorkloadConfig {
            surges: Vec::new(),
            ..base.clone()
        };
        let cat = catalog();
        assert_eq!(
            QueryStream::generate(&base, &cat, 3).events(),
            QueryStream::generate(&explicit, &cat, 3).events(),
        );
    }

    #[test]
    fn object_ids_match_catalog() {
        let cat = catalog();
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &cat, 6);
        for e in s.events().iter().take(200) {
            assert_eq!(e.object, cat.object_id(e.website, e.rank as usize));
        }
    }
}
