//! Deterministic query-stream generation (§6.1 of the paper).
//!
//! Queries form a Poisson process at `query_rate_per_sec` (Table 1:
//! 6 q/s), each query choosing:
//!
//! 1. a website uniformly among the active ones ("distributed between
//!    the 6 active websites");
//! 2. an object of that website by Zipf rank ("the queried object is
//!    selected, using zipf law, among ws objects").
//!
//! The paper's third choice — the originator ("a new client or a
//! content peer of ws chosen from a random locality") — depends on
//! protocol state (who is already a content peer, which overlays are
//! full), so it is carried out by the system harness at injection
//! time; the stream only fixes the time, website and object of each
//! query, which keeps Flower-CDN and Squirrel runs *trace-identical*.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bloom::ObjectId;

use crate::catalog::{Catalog, WebsiteId};
use crate::zipf::Zipf;

/// Workload shape (Table 1 defaults).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Mean query arrival rate (queries per second).
    pub query_rate_per_sec: f64,
    /// Length of the generated trace in milliseconds.
    pub duration_ms: u64,
    /// Zipf skew for object popularity.
    pub zipf_alpha: f64,
    /// Zipf skew for *website* popularity across the active websites
    /// (0 = the paper's uniform choice, bit-for-bit the historical
    /// trace). Positive values rank active websites by id — the
    /// workload the §5.3 PetalUp scale-up is designed for, where a
    /// few hot websites would overload their directory petals.
    pub website_zipf_alpha: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            query_rate_per_sec: 6.0,
            duration_ms: 24 * 3600 * 1000,
            zipf_alpha: Zipf::DEFAULT_ALPHA,
            website_zipf_alpha: 0.0,
        }
    }
}

impl WorkloadConfig {
    /// A short trace for tests.
    pub fn short_test() -> Self {
        WorkloadConfig {
            duration_ms: 60_000,
            ..Default::default()
        }
    }
}

/// One query of the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryEvent {
    /// Submission time, milliseconds from simulation start.
    pub at_ms: u64,
    /// The targeted website.
    pub website: WebsiteId,
    /// The requested object.
    pub object: ObjectId,
    /// Popularity rank of the object within its website (0 = most
    /// popular) — kept for analysis.
    pub rank: u32,
}

/// A complete, precomputed query trace.
#[derive(Clone, Debug)]
pub struct QueryStream {
    events: Vec<QueryEvent>,
}

impl QueryStream {
    /// Generate the trace deterministically from `seed`.
    pub fn generate(cfg: &WorkloadConfig, catalog: &Catalog, seed: u64) -> Self {
        assert!(cfg.query_rate_per_sec > 0.0, "query rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0131_D000);
        let zipf = Zipf::new(catalog.objects_per_website(), cfg.zipf_alpha);
        let active: Vec<WebsiteId> = catalog.active_websites().collect();
        assert!(!active.is_empty(), "no active websites to query");
        // Skewed website choice is opt-in: with alpha 0 the historical
        // uniform draw runs unchanged (same RNG consumption), keeping
        // every pinned trace valid.
        let website_zipf =
            (cfg.website_zipf_alpha > 0.0).then(|| Zipf::new(active.len(), cfg.website_zipf_alpha));

        let mean_gap_ms = 1000.0 / cfg.query_rate_per_sec;
        let mut events = Vec::with_capacity((cfg.duration_ms as f64 / mean_gap_ms * 1.1) as usize);
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival (Poisson process).
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() * mean_gap_ms;
            let at_ms = t as u64;
            if at_ms >= cfg.duration_ms {
                break;
            }
            let website = match &website_zipf {
                Some(z) => active[z.sample(&mut rng)],
                None => active[rng.gen_range(0..active.len())],
            };
            let rank = zipf.sample(&mut rng);
            events.push(QueryEvent {
                at_ms,
                website,
                object: catalog.object_id(website, rank),
                rank: rank as u32,
            });
        }
        QueryStream { events }
    }

    /// The trace, in non-decreasing time order.
    pub fn events(&self) -> &[QueryEvent] {
        &self.events
    }

    /// Number of queries in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn catalog() -> Catalog {
        Catalog::new(CatalogConfig::default())
    }

    #[test]
    fn rate_is_respected() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            ..Default::default()
        };
        let s = QueryStream::generate(&cfg, &catalog(), 42);
        // 6 q/s for an hour ≈ 21600 queries; Poisson noise ±3σ ≈ ±450.
        let n = s.len() as f64;
        assert!((n - 21_600.0).abs() < 600.0, "unexpected query count {n}");
    }

    #[test]
    fn events_are_time_ordered_within_duration() {
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 1);
        let mut last = 0;
        for e in s.events() {
            assert!(e.at_ms >= last);
            assert!(e.at_ms < 60_000);
            last = e.at_ms;
        }
    }

    #[test]
    fn only_active_websites_queried() {
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 2);
        assert!(!s.is_empty());
        for e in s.events() {
            assert!(e.website.idx() < 6, "inactive website {}", e.website);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 3);
        let b = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 3);
        assert_eq!(a.events(), b.events());
        let c = QueryStream::generate(&WorkloadConfig::short_test(), &catalog(), 4);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn objects_follow_zipf_head() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            ..Default::default()
        };
        let cat = catalog();
        let s = QueryStream::generate(&cfg, &cat, 5);
        let head = s.events().iter().filter(|e| e.rank < 10).count() as f64;
        let frac = head / s.len() as f64;
        // Compare against the analytic top-10 Zipf mass.
        let z = Zipf::new(cat.objects_per_website(), cfg.zipf_alpha);
        let expect: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!(
            (frac - expect).abs() < 0.05,
            "head fraction {frac:.3} vs analytic {expect:.3}"
        );
    }

    #[test]
    fn website_skew_concentrates_on_low_ranks() {
        let cfg = WorkloadConfig {
            duration_ms: 3_600_000,
            website_zipf_alpha: 1.2,
            ..Default::default()
        };
        let cat = catalog();
        let s = QueryStream::generate(&cfg, &cat, 7);
        let mut counts = [0usize; 6];
        for e in s.events() {
            counts[e.website.idx()] += 1;
        }
        assert!(
            counts[0] > counts[5] * 3,
            "rank-0 website must dominate: {counts:?}"
        );
        // Every active website still sees some traffic.
        assert!(counts.iter().all(|c| *c > 0), "{counts:?}");
        // And alpha = 0 stays bit-identical to the uniform draw.
        let base = WorkloadConfig {
            duration_ms: 600_000,
            ..Default::default()
        };
        let explicit_zero = WorkloadConfig {
            website_zipf_alpha: 0.0,
            ..base.clone()
        };
        assert_eq!(
            QueryStream::generate(&base, &cat, 3).events(),
            QueryStream::generate(&explicit_zero, &cat, 3).events(),
        );
    }

    #[test]
    fn object_ids_match_catalog() {
        let cat = catalog();
        let s = QueryStream::generate(&WorkloadConfig::short_test(), &cat, 6);
        for e in s.events().iter().take(200) {
            assert_eq!(e.object, cat.object_id(e.website, e.rank as usize));
        }
    }
}
