//! Zipf-distributed sampling over object ranks.
//!
//! Web object popularity is Zipf-like: the probability of a request
//! hitting the object of rank `r` is proportional to `1 / r^alpha`
//! (Breslau et al., INFOCOM 1999, measured `alpha` between 0.64 and
//! 0.83 across traces). The paper applies a Zipf distribution to the
//! requests of each website (§6.1); we default to `alpha = 0.8`.
//!
//! Sampling uses a precomputed CDF and binary search: O(n) setup,
//! O(log n) per sample, exact (no rejection), deterministic under a
//! seeded RNG.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Default skew measured for web traffic.
    pub const DEFAULT_ALPHA: f64 = 0.8;

    /// A sampler over `n` items with skew `alpha` (`alpha = 0`
    /// degenerates to uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (`new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of drawing rank `r` (0-based; rank 0 is the most
    /// popular item).
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draw one rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 0.8);
        for r in 1..50 {
            assert!(z.pmf(0) >= z.pmf(r), "rank 0 must dominate rank {r}");
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 200_000;
        let mut counts = [0u32; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            let expect = z.pmf(r);
            assert!(
                (freq - expect).abs() < 0.01,
                "rank {r}: freq {freq:.4} vs pmf {expect:.4}"
            );
        }
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Samples are always valid ranks and the pmf is a
        /// non-increasing probability vector.
        #[test]
        fn sampler_laws(n in 1usize..200, alpha in 0.0f64..2.5, seed in any::<u64>()) {
            let z = Zipf::new(n, alpha);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let r = z.sample(&mut rng);
                prop_assert!(r < n);
            }
            let mut prev = f64::INFINITY;
            let mut total = 0.0;
            for r in 0..n {
                let p = z.pmf(r);
                prop_assert!(p >= 0.0 && p <= prev + 1e-12);
                prev = p;
                total += p;
            }
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }
}
