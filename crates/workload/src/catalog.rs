//! The website/object catalog.
//!
//! Flower-CDN supports a set `W` of websites, each providing a set of
//! requestable, cacheable objects (web pages, documents): `|W| = 100`
//! websites, `nb-ob = 500` objects per website (§6.1: "each website
//! provides 500 objects"; Table 1's `nb-ob = 100` contradicts the
//! text — 500 reproduces both the paper's bandwidth figures and its
//! convergence speed, see EXPERIMENTS.md), of which 6 websites are
//! *active* (receive queries) — the other 94 exist only as D-ring
//! entries, exactly as in the paper's setup.
//!
//! Object identifiers are global 64-bit keys derived by hashing
//! `(website, object index)`, standing in for the paper's
//! `hash(url)`. Object sizes (10–100 KB per the paper's description)
//! are derived deterministically from the object id; the paper does
//! not model transfer sizes, and neither do our metrics, but the
//! sizes feed the `Transfer` traffic class for completeness.

use bloom::ObjectId;

/// Identifier of a website in `W`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WebsiteId(pub u16);

impl WebsiteId {
    /// The website as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WebsiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ws{}", self.0)
    }
}

/// Catalog shape parameters (Table 1 defaults).
#[derive(Clone, Debug)]
pub struct CatalogConfig {
    /// Total number of websites `|W|`.
    pub num_websites: usize,
    /// Number of websites receiving queries.
    pub active_websites: usize,
    /// Objects per website (`nb-ob`).
    pub objects_per_website: usize,
    /// Smallest object size in bytes.
    pub min_object_bytes: u32,
    /// Largest object size in bytes.
    pub max_object_bytes: u32,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            num_websites: 100,
            active_websites: 6,
            objects_per_website: 500,
            min_object_bytes: 10 * 1024,
            max_object_bytes: 100 * 1024,
        }
    }
}

impl CatalogConfig {
    /// A small catalog for fast tests.
    pub fn small_test() -> Self {
        CatalogConfig {
            num_websites: 8,
            active_websites: 2,
            objects_per_website: 20,
            ..Default::default()
        }
    }
}

/// The immutable website/object universe of a simulation.
#[derive(Clone, Debug)]
pub struct Catalog {
    cfg: CatalogConfig,
}

/// SplitMix64 finalizer (local copy to keep this crate dependency-free
/// beyond `bloom`).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Catalog {
    /// Build a catalog.
    pub fn new(cfg: CatalogConfig) -> Self {
        assert!(cfg.num_websites > 0, "need at least one website");
        assert!(
            cfg.active_websites <= cfg.num_websites,
            "cannot activate more websites than exist"
        );
        assert!(cfg.objects_per_website > 0, "websites must provide objects");
        assert!(
            cfg.min_object_bytes <= cfg.max_object_bytes,
            "object size range inverted"
        );
        Catalog { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &CatalogConfig {
        &self.cfg
    }

    /// All websites in `W`.
    pub fn websites(&self) -> impl Iterator<Item = WebsiteId> {
        (0..self.cfg.num_websites as u16).map(WebsiteId)
    }

    /// The active (queried) websites: the first `active_websites`
    /// entries of `W`.
    pub fn active_websites(&self) -> impl Iterator<Item = WebsiteId> {
        (0..self.cfg.active_websites as u16).map(WebsiteId)
    }

    /// True if `ws` receives queries.
    pub fn is_active(&self, ws: WebsiteId) -> bool {
        ws.idx() < self.cfg.active_websites
    }

    /// Number of objects per website (`nb-ob`).
    pub fn objects_per_website(&self) -> usize {
        self.cfg.objects_per_website
    }

    /// The global object id of the `rank`-th most popular object of
    /// `ws` (the paper's `hash(url)`).
    pub fn object_id(&self, ws: WebsiteId, rank: usize) -> ObjectId {
        assert!(
            rank < self.cfg.objects_per_website,
            "object rank out of range"
        );
        ObjectId(mix64(
            ((ws.0 as u64) << 32) | rank as u64 | 0x0B1E_C700_0000_0000,
        ))
    }

    /// All object ids of a website, in popularity-rank order.
    pub fn objects_of(&self, ws: WebsiteId) -> Vec<ObjectId> {
        (0..self.cfg.objects_per_website)
            .map(|r| self.object_id(ws, r))
            .collect()
    }

    /// Deterministic object size in bytes within the configured range.
    pub fn object_size(&self, o: ObjectId) -> u32 {
        let span = (self.cfg.max_object_bytes - self.cfg.min_object_bytes) as u64;
        if span == 0 {
            return self.cfg.min_object_bytes;
        }
        self.cfg.min_object_bytes + (mix64(o.key()) % (span + 1)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = Catalog::new(CatalogConfig::default());
        assert_eq!(c.websites().count(), 100);
        assert_eq!(c.active_websites().count(), 6);
        assert_eq!(c.objects_per_website(), 500);
        assert!(c.is_active(WebsiteId(5)));
        assert!(!c.is_active(WebsiteId(6)));
    }

    #[test]
    fn object_ids_unique_across_catalog() {
        let c = Catalog::new(CatalogConfig::default());
        let mut all = std::collections::HashSet::new();
        for ws in c.websites() {
            for o in c.objects_of(ws) {
                assert!(all.insert(o), "duplicate object id {o}");
            }
        }
        assert_eq!(all.len(), 100 * 500);
    }

    #[test]
    fn object_ids_deterministic() {
        let c1 = Catalog::new(CatalogConfig::default());
        let c2 = Catalog::new(CatalogConfig::default());
        assert_eq!(c1.object_id(WebsiteId(3), 7), c2.object_id(WebsiteId(3), 7));
    }

    #[test]
    fn object_sizes_in_range() {
        let c = Catalog::new(CatalogConfig::default());
        for ws in c.active_websites() {
            for o in c.objects_of(ws) {
                let s = c.object_size(o);
                assert!(
                    (10 * 1024..=100 * 1024).contains(&s),
                    "size {s} out of range"
                );
            }
        }
    }

    #[test]
    fn fixed_size_when_range_collapsed() {
        let cfg = CatalogConfig {
            min_object_bytes: 500,
            max_object_bytes: 500,
            ..Default::default()
        };
        let c = Catalog::new(cfg);
        assert_eq!(c.object_size(c.object_id(WebsiteId(0), 0)), 500);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn rank_bounds_checked() {
        let c = Catalog::new(CatalogConfig::small_test());
        let _ = c.object_id(WebsiteId(0), 20);
    }

    #[test]
    #[should_panic(expected = "more websites")]
    fn active_exceeding_total_rejected() {
        let _ = Catalog::new(CatalogConfig {
            num_websites: 3,
            active_websites: 4,
            ..Default::default()
        });
    }
}
