//! # workload — synthetic web-query workloads
//!
//! The paper's evaluation (§6.1) generates a synthetic workload
//! because "available web traces reflect object accesses while we are
//! interested in website accesses":
//!
//! * `|W| = 100` websites, of which **6 are active** (queried);
//! * each website provides `nb-ob` requestable, cacheable objects
//!   (Table 1: 100);
//! * queries arrive at **6 per second** for 24 hours, are assigned to
//!   one of the active websites, and request an object drawn from a
//!   **Zipf** distribution over that website's objects (Breslau et
//!   al., INFOCOM 1999), with no correlation between websites;
//! * the originator is "a new client or a content peer of ws, chosen
//!   from a random locality".
//!
//! This crate provides the [`zipf::Zipf`] sampler, the website/object
//! [`catalog`], and the deterministic [`generator::QueryStream`].

pub mod catalog;
pub mod generator;
pub mod zipf;

pub use catalog::{Catalog, CatalogConfig, WebsiteId};
pub use generator::{QueryEvent, QueryStream, Surge, WorkloadConfig};
pub use zipf::Zipf;
