//! The paper's portability claim (§3.1): "D-Ring can be integrated
//! into any existing structured overlay based on a standard DHT
//! (e.g., Chord, Pastry)."
//!
//! Promoted from a raw-routing demo into an exercise of the real
//! integration surface: D-ring keys travel through
//! `flower_core::substrate::PastrySubstrate` — the same
//! `DhtSubstrate` implementation `FlowerNode`'s directory role runs
//! on — and the last test drives a complete Flower-CDN system over
//! Pastry through `FlowerNode` itself, selected purely via
//! `SystemConfig`.
//!
//! The routing properties verified:
//!
//! 1. when `d_{ws,loc}` is alive, the key `key(ws, loc)` is delivered
//!    exactly there;
//! 2. when it is absent, Pastry's numerically-closest delivery lands
//!    the query on a *ring-adjacent* directory — with the D-ring id
//!    layout (website prefix ‖ locality) that is a same-website
//!    directory whenever the website has another one, i.e. Algorithm
//!    2's goal falls out of Pastry's delivery rule;
//! 3. hop counts stay logarithmic at the paper's D-ring scale;
//! 4. Chord and Pastry agree on ownership (exactly for present keys,
//!    same-website for absent ones) — through the same trait.

use chord::PeerRef;
use flower_core::id::KeyScheme;
use flower_core::msg::Query;
use flower_core::substrate::{test_support, DhtSubstrate, SubstrateKind};
use simnet::{Locality, NodeId, SimTime};
use workload::WebsiteId;

struct DringFixture {
    roles: Vec<Box<dyn DhtSubstrate>>,
    members: Vec<PeerRef>,
    scheme: KeyScheme,
}

fn build_dring(
    kind: SubstrateKind,
    websites: u16,
    localities: u16,
    skip: Option<(u16, u16)>,
) -> DringFixture {
    let scheme = KeyScheme::new(8, 0);
    let mut members = Vec::new();
    let mut idx = 0u32;
    for ws in 0..websites {
        for l in 0..localities {
            if skip == Some((ws, l)) {
                continue;
            }
            members.push(PeerRef {
                id: scheme.key(WebsiteId(ws), Locality(l)),
                node: NodeId(idx),
            });
            idx += 1;
        }
    }
    let roles = kind.stable_network(scheme, &members);
    DringFixture {
        roles,
        members,
        scheme,
    }
}

fn query(ws: u16, loc: u16) -> Query {
    Query {
        id: (ws as u64) << 16 | loc as u64,
        origin: NodeId(9_999),
        origin_locality: Locality(loc),
        website: WebsiteId(ws),
        object: bloom::ObjectId(1),
        submitted_at: SimTime::ZERO,
        dir_hops: 0,
        holder_retries: 0,
    }
}

/// Route through the substrate roles until the outcome stream yields
/// the delivery; returns (member index, hops).
fn route_to_delivery(
    fx: &mut DringFixture,
    start: usize,
    key: flower_core::substrate::DhtKey,
    q: Query,
) -> (usize, u8) {
    test_support::route_to_delivery(&mut fx.roles, &fx.members, start, key, q)
}

#[test]
fn present_directories_are_hit_exactly() {
    let mut fx = build_dring(SubstrateKind::Pastry, 20, 6, None);
    for ws in 0..20u16 {
        for l in 0..6u16 {
            let key = fx.scheme.key(WebsiteId(ws), Locality(l));
            let expect = fx
                .members
                .iter()
                .position(|m| m.id == key)
                .expect("dir exists");
            let n = fx.members.len();
            for start in [0usize, 7, 63, 100] {
                let (got, _) = route_to_delivery(&mut fx, start % n, key, query(ws, l));
                assert_eq!(got, expect, "d(ws{ws},loc{l}) missed");
            }
        }
    }
}

#[test]
fn absent_directory_falls_to_a_same_website_neighbour() {
    // Remove d(ws=5, loc=3); queries for it must land on another
    // directory of website 5 (locality 2 or 4 — its ring neighbours).
    let mut fx = build_dring(SubstrateKind::Pastry, 20, 6, Some((5, 3)));
    let key = fx.scheme.key(WebsiteId(5), Locality(3));
    for start in (0..fx.members.len()).step_by(7) {
        let (got, _) = route_to_delivery(&mut fx, start, key, query(5, 3));
        let owner = fx.members[got];
        assert!(
            fx.scheme.same_website(owner.id, key),
            "query for the absent directory landed on another website: {:?}",
            owner.id
        );
        let landed_loc = fx.scheme.locality_of(owner.id);
        assert!(
            landed_loc == Locality(2) || landed_loc == Locality(4),
            "expected a ring-adjacent locality, got {landed_loc}"
        );
    }
}

#[test]
fn hop_counts_stay_logarithmic_at_dring_scale() {
    // The paper's D-ring: 100 websites × 6 localities = 600 members.
    let mut fx = build_dring(SubstrateKind::Pastry, 100, 6, None);
    assert_eq!(fx.members.len(), 600);
    let mut total = 0usize;
    let mut probes = 0usize;
    for ws in (0..100u16).step_by(9) {
        for l in 0..6u16 {
            let key = fx.scheme.key(WebsiteId(ws), Locality(l));
            let start = (ws as usize * 31 + l as usize) % fx.members.len();
            total += route_to_delivery(&mut fx, start, key, query(ws, l)).1 as usize;
            probes += 1;
        }
    }
    let avg = total as f64 / probes as f64;
    assert!(avg <= 5.0, "average hops {avg} too high for 600 members");
}

#[test]
fn chord_and_pastry_agree_on_dring_ownership() {
    // Same members, same keys, same trait: both substrates must
    // deliver a key to the same directory (the numerically closest
    // one) when it is present, and to a same-website directory when
    // it is absent.
    let mut pastry_fx = build_dring(SubstrateKind::Pastry, 12, 4, Some((3, 1)));
    let mut chord_fx = build_dring(SubstrateKind::Chord, 12, 4, Some((3, 1)));
    for ws in 0..12u16 {
        for l in 0..4u16 {
            let key = pastry_fx.scheme.key(WebsiteId(ws), Locality(l));
            let (p_owner, _) = route_to_delivery(&mut pastry_fx, 0, key, query(ws, l));
            let (c_owner, _) = route_to_delivery(&mut chord_fx, 0, key, query(ws, l));
            if pastry_fx.members.iter().any(|m| m.id == key) {
                assert_eq!(p_owner, c_owner, "substrates disagree on ws{ws} loc{l}");
            } else {
                // Chord assigns an absent key to its clockwise
                // successor, Pastry to the numerically closest node;
                // they may name the two different ring neighbours —
                // both of the same website thanks to the id layout.
                let p = pastry_fx.members[p_owner];
                let c = chord_fx.members[c_owner];
                assert!(pastry_fx.scheme.same_website(p.id, key));
                assert!(chord_fx.scheme.same_website(c.id, key));
            }
        }
    }
}

/// The full integration: a complete Flower-CDN system over the Pastry
/// substrate, driven through `FlowerNode` — clients route queries
/// into the D-ring, directories admit them, overlays form, gossip
/// runs — with the substrate selected purely via `SystemConfig`.
#[test]
fn flower_node_runs_the_dring_over_pastry() {
    use flower_core::system::{FlowerSystem, SystemConfig};

    let mut cfg = SystemConfig::small_test();
    cfg.flower.substrate = SubstrateKind::Pastry;
    let (sys, report) = FlowerSystem::run(&cfg);

    assert!(
        report.submitted > 1000,
        "expected thousands of queries, got {}",
        report.submitted
    );
    assert!(
        report.resolved as f64 >= report.submitted as f64 * 0.99,
        "resolved {} of {}",
        report.resolved,
        report.submitted
    );
    assert!(
        report.hit_ratio > 0.5,
        "hit ratio {} too low over Pastry",
        report.hit_ratio
    );

    // Directory peers of active websites processed D-ring queries:
    // their indexes hold admitted community members, which can only
    // happen when Pastry delivered the keys to the right directories.
    for ws in 0..cfg.catalog.active_websites as u16 {
        for l in 0..cfg.topology.localities as u16 {
            let d = sys
                .initial_directory(WebsiteId(ws), Locality(l))
                .expect("directory exists");
            let node = sys.engine().node(d);
            let role = node.dir_role().expect("directory role intact");
            assert_eq!(
                role.substrate.key(),
                KeyScheme::new(8, 0).key(WebsiteId(ws), Locality(l))
            );
            assert!(
                role.dir.overlay_size() > 0,
                "d(ws{ws},loc{l}) indexed nobody — D-ring routing over Pastry broken?"
            );
            assert!(!role.substrate.known_peers().is_empty());
        }
    }
}
