//! The paper's portability claim (§3.1): "D-Ring can be integrated
//! into any existing structured overlay based on a standard DHT
//! (e.g., Chord, Pastry)."
//!
//! This test runs the D-ring key scheme over the Pastry substrate and
//! verifies the two properties query routing needs:
//!
//! 1. when `d_{ws,loc}` is alive, the key `key(ws, loc)` is delivered
//!    exactly there;
//! 2. when it is absent, Pastry's numerically-closest delivery lands
//!    the query on a *ring-adjacent* directory — with the D-ring id
//!    layout (website prefix ‖ locality) that is a same-website
//!    directory whenever the website has another one, i.e. Algorithm
//!    2's goal falls out of Pastry's delivery rule.

use std::collections::HashMap;

use chord::PeerRef;
use flower_core::id::KeyScheme;
use pastry::{route_synchronously, stable_mesh, PastryConfig, PastryState};
use simnet::{Locality, NodeId};
use workload::WebsiteId;

fn build_dring(
    websites: u16,
    localities: u16,
    skip: Option<(u16, u16)>,
) -> (HashMap<NodeId, PastryState>, Vec<PeerRef>, KeyScheme) {
    let scheme = KeyScheme::new(8, 0);
    let mut members = Vec::new();
    let mut idx = 0u32;
    for ws in 0..websites {
        for l in 0..localities {
            if skip == Some((ws, l)) {
                continue;
            }
            members.push(PeerRef {
                id: scheme.key(WebsiteId(ws), Locality(l)),
                node: NodeId(idx),
            });
            idx += 1;
        }
    }
    let states = stable_mesh(&members, &PastryConfig::default());
    (members.iter().map(|m| m.node).zip(states).collect(), members, scheme)
}

#[test]
fn present_directories_are_hit_exactly() {
    let (states, members, scheme) = build_dring(20, 6, None);
    for ws in 0..20u16 {
        for l in 0..6u16 {
            let key = scheme.key(WebsiteId(ws), Locality(l));
            let expect = members.iter().find(|m| m.id == key).expect("dir exists").node;
            // From several different start points.
            for start in [0u32, 7, 63, 100] {
                let got = route_synchronously(&states, NodeId(start % members.len() as u32), key);
                assert_eq!(got.owner, expect, "d(ws{ws},loc{l}) missed");
            }
        }
    }
}

#[test]
fn absent_directory_falls_to_a_same_website_neighbour() {
    // Remove d(ws=5, loc=3); queries for it must land on another
    // directory of website 5 (locality 2 or 4 — its ring neighbours).
    let (states, members, scheme) = build_dring(20, 6, Some((5, 3)));
    let key = scheme.key(WebsiteId(5), Locality(3));
    for m in members.iter().step_by(7) {
        let got = route_synchronously(&states, m.node, key);
        let owner = members.iter().find(|p| p.node == got.owner).unwrap();
        assert!(
            scheme.same_website(owner.id, key),
            "query for the absent directory landed on another website: {:?}",
            owner.id
        );
        let landed_loc = scheme.locality_of(owner.id);
        assert!(
            landed_loc == Locality(2) || landed_loc == Locality(4),
            "expected a ring-adjacent locality, got {landed_loc}"
        );
    }
}

#[test]
fn hop_counts_stay_logarithmic_at_dring_scale() {
    // The paper's D-ring: 100 websites × 6 localities = 600 members.
    let (states, members, scheme) = build_dring(100, 6, None);
    assert_eq!(members.len(), 600);
    let mut total = 0usize;
    let mut probes = 0usize;
    for ws in (0..100u16).step_by(9) {
        for l in 0..6u16 {
            let key = scheme.key(WebsiteId(ws), Locality(l));
            let start = members[(ws as usize * 31 + l as usize) % members.len()].node;
            total += route_synchronously(&states, start, key).hops;
            probes += 1;
        }
    }
    let avg = total as f64 / probes as f64;
    assert!(avg <= 5.0, "average hops {avg} too high for 600 members");
}

#[test]
fn chord_and_pastry_agree_on_dring_ownership() {
    // Same members, same keys: both substrates must deliver a key to
    // the same directory (the numerically closest one).
    let (pastry_states, members, scheme) = build_dring(12, 4, Some((3, 1)));
    let chord_states = chord::stable_ring(&members, &chord::ChordConfig::default());
    let by_node: HashMap<NodeId, &chord::ChordState> =
        members.iter().map(|m| m.node).zip(chord_states.iter()).collect();

    for ws in 0..12u16 {
        for l in 0..4u16 {
            let key = scheme.key(WebsiteId(ws), Locality(l));
            let pastry_owner = route_synchronously(&pastry_states, members[0].node, key).owner;
            // Chord's owner: the member whose is_responsible holds.
            let chord_owner = members
                .iter()
                .find(|m| by_node[&m.node].is_responsible(key))
                .expect("some owner")
                .node;
            // Chord assigns a key to its clockwise successor, Pastry
            // to the numerically closest node; for *present* keys both
            // are the exact directory. For the absent key they may
            // name the two different ring neighbours — both of the
            // same website thanks to the id layout.
            if members.iter().any(|m| m.id == key) {
                assert_eq!(pastry_owner, chord_owner, "substrates disagree on ws{ws} loc{l}");
            } else {
                let p = members.iter().find(|m| m.node == pastry_owner).unwrap();
                let c = members.iter().find(|m| m.node == chord_owner).unwrap();
                assert!(scheme.same_website(p.id, key));
                assert!(scheme.same_website(c.id, key));
            }
        }
    }
}
