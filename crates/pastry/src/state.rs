//! Pure Pastry node state: leaf sets and prefix routing tables.

use chord::{ChordId as PastryId, PeerRef};

/// Hex digits in a 64-bit identifier.
pub const DIGITS: usize = 16;
/// Radix (b = 4 bits per digit).
pub const RADIX: usize = 16;

/// Tunables of the Pastry instance.
#[derive(Clone, Debug)]
pub struct PastryConfig {
    /// Leaf-set half size (`L/2` peers on each side; Pastry typically
    /// uses 8 or 16 total).
    pub leaf_half: usize,
    /// Routed messages are delivered where they stand once they have
    /// taken this many hops (loop protection while the mesh heals).
    pub max_hops: u8,
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig {
            leaf_half: 8,
            max_hops: 32,
        }
    }
}

/// The `row`-th hex digit (most significant first) of `id`.
pub fn digit(id: PastryId, row: usize) -> usize {
    debug_assert!(row < DIGITS);
    ((id.0 >> (60 - 4 * row)) & 0xF) as usize
}

/// Number of leading hex digits two ids share.
pub fn shared_prefix_len(a: PastryId, b: PastryId) -> usize {
    if a == b {
        return DIGITS;
    }
    ((a.0 ^ b.0).leading_zeros() / 4) as usize
}

/// The local state of one Pastry peer.
#[derive(Clone, Debug)]
pub struct PastryState {
    cfg: PastryConfig,
    me: PeerRef,
    /// `L/2` closest peers counter-clockwise (decreasing ids,
    /// wrapping), nearest first.
    leaf_smaller: Vec<PeerRef>,
    /// `L/2` closest peers clockwise (increasing ids, wrapping),
    /// nearest first.
    leaf_larger: Vec<PeerRef>,
    /// `table[row][col]`: a peer sharing `row` digits of prefix with
    /// `me` whose next digit is `col`.
    table: Vec<[Option<PeerRef>; RADIX]>,
}

impl PastryState {
    /// An isolated node (leaf sets and table filled by
    /// [`stable_mesh`] or, in a full deployment, by the join
    /// protocol).
    pub fn new(me: PeerRef, cfg: PastryConfig) -> Self {
        PastryState {
            cfg,
            me,
            leaf_smaller: Vec::new(),
            leaf_larger: Vec::new(),
            table: vec![[None; RADIX]; DIGITS],
        }
    }

    /// This peer.
    pub fn me(&self) -> PeerRef {
        self.me
    }

    /// The configuration.
    pub fn config(&self) -> &PastryConfig {
        &self.cfg
    }

    /// Both halves of the leaf set, nearest first.
    pub fn leaves(&self) -> impl Iterator<Item = PeerRef> + '_ {
        self.leaf_smaller
            .iter()
            .chain(self.leaf_larger.iter())
            .copied()
    }

    /// All peers this node knows (leaf set + routing table).
    pub fn known_peers(&self) -> Vec<PeerRef> {
        let mut out: Vec<PeerRef> = self.leaves().collect();
        out.extend(self.table.iter().flatten().flatten().copied());
        out.sort_by_key(|p| p.id.0);
        out.dedup_by_key(|p| p.node);
        out
    }

    /// Install state directly (simulation bootstrap / tests).
    pub fn install(
        &mut self,
        leaf_smaller: Vec<PeerRef>,
        leaf_larger: Vec<PeerRef>,
        table: Vec<[Option<PeerRef>; RADIX]>,
    ) {
        assert_eq!(table.len(), DIGITS, "routing table must have {DIGITS} rows");
        self.leaf_smaller = leaf_smaller;
        self.leaf_smaller.truncate(self.cfg.leaf_half);
        self.leaf_larger = leaf_larger;
        self.leaf_larger.truncate(self.cfg.leaf_half);
        self.table = table;
    }

    /// Numerically closest candidate to `key` among this node and its
    /// leaf set (Pastry's delivery rule: the message is delivered at
    /// the live node numerically closest to the key).
    pub fn closest_leaf(&self, key: PastryId) -> PeerRef {
        let mut best = self.me;
        let mut best_d = self.me.id.ring_distance(key);
        for p in self.leaves() {
            let d = p.id.ring_distance(key);
            if d < best_d || (d == best_d && p.id.0 < best.id.0) {
                best = p;
                best_d = d;
            }
        }
        best
    }

    /// Is `key` within this node's leaf-set span (so the closest leaf
    /// is the true owner)?
    pub fn key_in_leaf_range(&self, key: PastryId) -> bool {
        // The span runs from the furthest counter-clockwise leaf to
        // the furthest clockwise leaf. With fewer leaves than L/2 the
        // node knows the whole (tiny) network and the span is total.
        if self.leaf_smaller.len() < self.cfg.leaf_half
            || self.leaf_larger.len() < self.cfg.leaf_half
        {
            return true;
        }
        let low = self.leaf_smaller.last().expect("non-empty").id;
        let high = self.leaf_larger.last().expect("non-empty").id;
        // key ∈ [low, high] going clockwise from low.
        key == low || PastryId::in_open_closed(low, high, key)
    }

    /// Pastry's next-hop decision for `key`: `None` means "deliver
    /// here".
    pub fn next_hop(&self, key: PastryId) -> Option<PeerRef> {
        if key == self.me.id {
            return None;
        }
        // 1. Leaf set: if the key is in range, the numerically closest
        //    leaf (possibly us) is the destination.
        if self.key_in_leaf_range(key) {
            let c = self.closest_leaf(key);
            return if c.node == self.me.node {
                None
            } else {
                Some(c)
            };
        }
        // 2. Prefix routing: a peer sharing one more digit.
        let l = shared_prefix_len(key, self.me.id);
        if l < DIGITS {
            if let Some(p) = self.table[l][digit(key, l)] {
                return Some(p);
            }
        }
        // 3. Rare case: any known peer with at least as long a shared
        //    prefix and numerically closer to the key.
        let my_d = self.me.id.ring_distance(key);

        self.known_peers()
            .into_iter()
            .filter(|p| p.node != self.me.node)
            .filter(|p| shared_prefix_len(p.id, key) >= l)
            .filter(|p| p.id.ring_distance(key) < my_d)
            .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
    }

    /// The nearest live leaf on each side — the targets of the
    /// periodic leaf-set maintenance probe.
    pub fn nearest_leaves(&self) -> Vec<PeerRef> {
        let mut out = Vec::with_capacity(2);
        if let Some(p) = self.leaf_larger.first() {
            out.push(*p);
        }
        if let Some(p) = self.leaf_smaller.first() {
            if out.iter().all(|q| q.node != p.node) {
                out.push(*p);
            }
        }
        out
    }

    /// Learn about `p`: slot it into the leaf sets (if it is among the
    /// `L/2` numerically closest on either side) and the routing
    /// table. Returns true if any structure changed.
    ///
    /// This is the state-absorption step of the join and maintenance
    /// protocols; [`stable_mesh`] remains the bulk bootstrap path.
    pub fn absorb_peer(&mut self, p: PeerRef) -> bool {
        if p.node == self.me.node {
            return false;
        }
        let mut changed = false;

        // Leaf sets: recompute both halves from the union of current
        // leaves and the newcomer. Clockwise distance me→p ranks the
        // larger side, p→me the smaller side; each peer sits on the
        // side it is nearer to, larger winning ties (mirroring the
        // bootstrap assignment).
        let mut candidates: Vec<PeerRef> = self.leaves().collect();
        if candidates.iter().all(|q| q.node != p.node) {
            candidates.push(p);
        }
        candidates.sort_by_key(|q| q.id.0);
        candidates.dedup_by_key(|q| q.node);
        let me = self.me.id;
        let mut larger: Vec<PeerRef> = candidates
            .iter()
            .copied()
            .filter(|q| me.clockwise_distance(q.id) <= q.id.clockwise_distance(me))
            .collect();
        let mut smaller: Vec<PeerRef> = candidates
            .iter()
            .copied()
            .filter(|q| me.clockwise_distance(q.id) > q.id.clockwise_distance(me))
            .collect();
        larger.sort_by_key(|q| me.clockwise_distance(q.id));
        smaller.sort_by_key(|q| q.id.clockwise_distance(me));
        larger.truncate(self.cfg.leaf_half);
        smaller.truncate(self.cfg.leaf_half);
        if larger != self.leaf_larger || smaller != self.leaf_smaller {
            self.leaf_larger = larger;
            self.leaf_smaller = smaller;
            changed = true;
        }

        // Routing table: fill (or improve) the prefix slot.
        let l = shared_prefix_len(self.me.id, p.id);
        if l < DIGITS {
            let c = digit(p.id, l);
            let slot = &mut self.table[l][c];
            let better = match slot {
                None => true,
                Some(cur) if cur.node == p.node => false,
                Some(cur) => {
                    (p.id.ring_distance(self.me.id), p.id.0)
                        < (cur.id.ring_distance(self.me.id), cur.id.0)
                }
            };
            if better {
                *slot = Some(p);
                changed = true;
            }
        }
        changed
    }

    /// Remove a dead peer from all structures. Returns true if it was
    /// referenced.
    pub fn on_peer_dead(&mut self, node: simnet::NodeId) -> bool {
        let mut touched = false;
        for v in [&mut self.leaf_smaller, &mut self.leaf_larger] {
            let before = v.len();
            v.retain(|p| p.node != node);
            touched |= v.len() != before;
        }
        for row in &mut self.table {
            for e in row.iter_mut() {
                if e.map(|p| p.node) == Some(node) {
                    *e = None;
                    touched = true;
                }
            }
        }
        touched
    }
}

/// Build globally consistent Pastry state for all `members` — the
/// converged mesh a long-running deployment reaches, used (like
/// `chord::stable_ring`) to start simulations from the paper's stable
/// condition.
pub fn stable_mesh(members: &[PeerRef], cfg: &PastryConfig) -> Vec<PastryState> {
    assert!(!members.is_empty(), "mesh needs at least one member");
    let mut sorted: Vec<PeerRef> = members.to_vec();
    sorted.sort_by_key(|p| p.id.0);
    for w in sorted.windows(2) {
        assert!(w[0].id != w[1].id, "duplicate id {:?}", w[0].id);
    }
    let n = sorted.len();

    members
        .iter()
        .map(|me| {
            let pos = sorted
                .iter()
                .position(|p| p.node == me.node)
                .expect("member");
            let mut st = PastryState::new(*me, cfg.clone());
            // Use min(leaf_half, n-1) entries split around the ring;
            // avoid double-counting when the ring is small.
            let take = cfg.leaf_half.min(n.saturating_sub(1));
            let mut smaller = Vec::with_capacity(take);
            let mut larger = Vec::with_capacity(take);
            for d in 1..=take {
                larger.push(sorted[(pos + d) % n]);
                smaller.push(sorted[(pos + n - d) % n]);
            }
            // Trim overlap in tiny networks: a peer should appear on
            // one side only.
            let mut seen: Vec<simnet::NodeId> = vec![me.node];
            larger.retain(|p| {
                if seen.contains(&p.node) {
                    false
                } else {
                    seen.push(p.node);
                    true
                }
            });
            smaller.retain(|p| {
                if seen.contains(&p.node) {
                    false
                } else {
                    seen.push(p.node);
                    true
                }
            });

            let mut table: Vec<[Option<PeerRef>; RADIX]> = vec![[None; RADIX]; DIGITS];
            for other in &sorted {
                if other.node == me.node {
                    continue;
                }
                let l = shared_prefix_len(me.id, other.id);
                if l >= DIGITS {
                    continue;
                }
                let c = digit(other.id, l);
                let slot = &mut table[l][c];
                // Prefer the numerically closest representative
                // (deterministic; real Pastry prefers network
                // proximity).
                let better = match slot {
                    None => true,
                    Some(cur) => {
                        (other.id.ring_distance(me.id), other.id.0)
                            < (cur.id.ring_distance(me.id), cur.id.0)
                    }
                };
                if better {
                    *slot = Some(*other);
                }
            }
            st.install(smaller, larger, table);
            st
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn peer(id: u64, node: u32) -> PeerRef {
        PeerRef {
            id: PastryId(id),
            node: NodeId(node),
        }
    }

    #[test]
    fn digits_and_prefixes() {
        let a = PastryId(0x1234_5678_9ABC_DEF0);
        assert_eq!(digit(a, 0), 0x1);
        assert_eq!(digit(a, 1), 0x2);
        assert_eq!(digit(a, 15), 0x0);
        let b = PastryId(0x1234_5000_0000_0000);
        assert_eq!(shared_prefix_len(a, b), 5);
        assert_eq!(shared_prefix_len(a, a), DIGITS);
        assert_eq!(shared_prefix_len(PastryId(0), PastryId(u64::MAX)), 0);
    }

    #[test]
    fn single_node_delivers_everything() {
        let st = stable_mesh(&[peer(42, 0)], &PastryConfig::default());
        assert!(st[0].next_hop(PastryId(7)).is_none());
        assert!(st[0].next_hop(PastryId(u64::MAX)).is_none());
    }

    #[test]
    fn leaf_sets_are_ring_neighbours() {
        let members: Vec<PeerRef> = (0..20u64)
            .map(|i| peer(chord::hash64(i), i as u32))
            .collect();
        let states = stable_mesh(&members, &PastryConfig::default());
        let mut sorted = members.clone();
        sorted.sort_by_key(|p| p.id.0);
        for st in &states {
            let pos = sorted.iter().position(|p| p.node == st.me().node).unwrap();
            // Nearest clockwise leaf is the ring successor.
            let succ = sorted[(pos + 1) % sorted.len()];
            assert_eq!(st.leaf_larger[0].node, succ.node);
            let pred = sorted[(pos + sorted.len() - 1) % sorted.len()];
            assert_eq!(st.leaf_smaller[0].node, pred.node);
        }
    }

    #[test]
    fn routing_table_entries_share_prefix() {
        let members: Vec<PeerRef> = (0..64u64)
            .map(|i| peer(chord::hash64(i * 31), i as u32))
            .collect();
        let states = stable_mesh(&members, &PastryConfig::default());
        for st in &states {
            for (row, cols) in st.table.iter().enumerate() {
                for (col, e) in cols.iter().enumerate() {
                    if let Some(p) = e {
                        assert_eq!(shared_prefix_len(p.id, st.me().id), row);
                        assert_eq!(digit(p.id, row), col);
                    }
                }
            }
        }
    }

    #[test]
    fn dead_peers_are_purged() {
        let members: Vec<PeerRef> = (0..10u64)
            .map(|i| peer(chord::hash64(i), i as u32))
            .collect();
        let mut st = stable_mesh(&members, &PastryConfig::default())[0].clone();
        let victim = st.leaf_larger[0].node;
        assert!(st.on_peer_dead(victim));
        assert!(st.known_peers().iter().all(|p| p.node != victim));
        assert!(!st.on_peer_dead(victim));
    }
}
