//! # pastry — a Pastry DHT substrate
//!
//! The Flower-CDN paper names two structured overlays its D-ring can
//! run on: "any existing structured overlay based on a standard DHT
//! (e.g., Chord, Pastry)" (§3.1). The evaluation simulates Chord (our
//! [`chord`] crate); this crate implements **Pastry** (Rowstron &
//! Druschel, Middleware 2001) to back that portability claim with
//! code:
//!
//! * 64-bit identifiers interpreted as 16 hexadecimal digits
//!   (`b = 4`);
//! * a **leaf set** of the `L/2` numerically closest peers on each
//!   side, which both defines responsibility (the numerically closest
//!   leaf owns a key — Pastry's rule, and exactly the "numerically
//!   closest" redirection the paper describes in §3.2) and provides
//!   the final routing step;
//! * a **routing table** of `16 × 16` prefix-matched entries, giving
//!   `O(log₁₆ n)` hops;
//! * [`state::stable_mesh`] building a converged network (leaf sets +
//!   routing tables) for simulation bootstrap, mirroring
//!   `chord::stable_ring`.
//!
//! The integration test `dring_over_pastry` routes D-ring keys over a
//! Pastry mesh and shows the property the paper relies on: an absent
//! directory's key is delivered to a ring-adjacent directory — with
//! the D-ring id layout, almost always one of the same website.

pub mod proto;
pub mod routing;
pub mod state;

pub use proto::{PastryMsg, PastryOutcome};
pub use routing::{route_synchronously, RouteOutcome};
pub use state::{stable_mesh, PastryConfig, PastryState};

/// Re-export the shared id/peer types (Pastry and Chord share the
/// 64-bit identifier space in this workspace).
pub use chord::{ChordId as PastryId, PeerRef};
