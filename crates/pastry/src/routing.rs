//! Synchronous multi-hop routing over a set of Pastry states — the
//! test/verification harness mirroring how the simulator would drive
//! per-hop forwarding.

use std::collections::HashMap;

use chord::ChordId as PastryId;
use simnet::NodeId;

use crate::state::PastryState;

/// Result of routing a key to its owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The node that delivered (the owner per Pastry's rule).
    pub owner: NodeId,
    /// Hops taken (0 = delivered at the start node).
    pub hops: usize,
}

/// Route `key` starting at `start` across `states`, following each
/// node's `next_hop` decision. Panics on a routing loop (more hops
/// than nodes), which would indicate a broken mesh.
pub fn route_synchronously(
    states: &HashMap<NodeId, PastryState>,
    start: NodeId,
    key: PastryId,
) -> RouteOutcome {
    let mut at = start;
    let mut hops = 0usize;
    loop {
        let st = states.get(&at).expect("route reached unknown node");
        match st.next_hop(key) {
            None => return RouteOutcome { owner: at, hops },
            Some(next) => {
                hops += 1;
                assert!(
                    hops <= states.len(),
                    "routing loop: key {key:?} from {start:?} stuck at {at:?}"
                );
                at = next.node;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{stable_mesh, PastryConfig};
    use chord::PeerRef;

    fn mesh(n: u64) -> (HashMap<NodeId, PastryState>, Vec<PeerRef>) {
        let members: Vec<PeerRef> = (0..n)
            .map(|i| PeerRef {
                id: PastryId(chord::hash64(i)),
                node: NodeId(i as u32),
            })
            .collect();
        let states = stable_mesh(&members, &PastryConfig::default());
        (
            members.iter().map(|m| m.node).zip(states).collect(),
            members,
        )
    }

    fn owner_of(members: &[PeerRef], key: PastryId) -> NodeId {
        members
            .iter()
            .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
            .expect("non-empty")
            .node
    }

    #[test]
    fn every_start_reaches_the_numerically_closest_owner() {
        let (states, members) = mesh(48);
        for probe in 0..64u64 {
            let key = PastryId(chord::hash64(10_000 + probe));
            let expect = owner_of(&members, key);
            for m in &members {
                let got = route_synchronously(&states, m.node, key);
                assert_eq!(got.owner, expect, "key {key:?} from {:?}", m.node);
            }
        }
    }

    #[test]
    fn exact_ids_deliver_at_their_nodes() {
        let (states, members) = mesh(32);
        for m in &members {
            let got = route_synchronously(&states, members[0].node, m.id);
            assert_eq!(got.owner, m.node);
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let (states, members) = mesh(256);
        let mut total = 0usize;
        let probes = 128u64;
        for probe in 0..probes {
            let key = PastryId(chord::hash64(99_000 + probe));
            let start = members[(probe % 256) as usize].node;
            total += route_synchronously(&states, start, key).hops;
        }
        let avg = total as f64 / probes as f64;
        // log16(256) = 2; leaf-set shortcuts keep it low. Anything
        // beyond ~5 would mean prefix routing is broken.
        assert!(avg <= 5.0, "average hops {avg} too high for 256 nodes");
        assert!(avg >= 0.5, "suspiciously low average {avg}");
    }

    #[test]
    fn mesh_survives_isolated_failures() {
        let (mut states, members) = mesh(64);
        // Kill 4 nodes; purge them from everyone and re-route.
        let dead: Vec<NodeId> = members.iter().take(4).map(|m| m.node).collect();
        for d in &dead {
            states.remove(d);
        }
        for st in states.values_mut() {
            for d in &dead {
                st.on_peer_dead(*d);
            }
        }
        let alive: Vec<&PeerRef> = members.iter().filter(|m| !dead.contains(&m.node)).collect();
        for probe in 0..32u64 {
            let key = PastryId(chord::hash64(55_000 + probe));
            let expect = alive
                .iter()
                .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
                .unwrap()
                .node;
            let start = alive[(probe % alive.len() as u64) as usize].node;
            let got = route_synchronously(&states, start, key);
            assert_eq!(got.owner, expect, "key {key:?} after failures");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::state::{stable_mesh, PastryConfig};
    use chord::PeerRef;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Routing terminates at the unique numerically-closest member
        /// from any start, for arbitrary meshes and keys.
        #[test]
        fn convergent_ownership(
            ids in proptest::collection::btree_set(any::<u64>(), 2..40),
            key in any::<u64>(),
        ) {
            let members: Vec<PeerRef> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| PeerRef { id: PastryId(*id), node: NodeId(i as u32) })
                .collect();
            let states: HashMap<NodeId, PastryState> = members
                .iter()
                .map(|m| m.node)
                .zip(stable_mesh(&members, &PastryConfig::default()))
                .collect();
            let key = PastryId(key);
            let expect = members
                .iter()
                .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
                .unwrap()
                .node;
            for m in &members {
                let got = route_synchronously(&states, m.node, key);
                prop_assert_eq!(got.owner, expect);
            }
        }
    }
}
