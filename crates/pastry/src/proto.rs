//! The Pastry message protocol: recursive prefix routing, join, and
//! leaf-set maintenance.
//!
//! Mirrors [`chord::proto`] in shape so that higher-level protocols
//! (Flower-CDN's D-ring) can embed [`PastryMsg`] inside their own
//! message enums and drive this module from their event handlers — the
//! form the paper's §3.1 portability claim ("any existing structured
//! overlay based on a standard DHT, e.g., Chord, Pastry") requires.
//!
//! Routing is *recursive*: each hop runs [`PastryState::next_hop`] and
//! forwards; Pastry's delivery rule (the live node numerically closest
//! to the key) terminates the route. Joining routes a `Join` payload
//! toward the joiner's own id; the owner answers with its leaf set and
//! routing-table peers, from which the joiner assembles its state.
//! Maintenance is a periodic leaf-set exchange with the nearest leaf
//! on each side, healing the mesh after failures.

use chord::Wire;
use simnet::NodeId;

use crate::state::PastryState;
use crate::{PastryId, PeerRef};

/// Bytes of the fixed routing header we model for every Pastry message
/// (key + hop counter + addressing), matching the Chord model so the
/// substrate comparison measures protocol structure, not header
/// accounting.
pub const HEADER_BYTES: u32 = 24;

/// Messages exchanged by Pastry peers. `A` is the application payload
/// type routed through the mesh.
#[derive(Clone, Debug)]
pub enum PastryMsg<A> {
    /// A routed message: forwarded toward the owner of `key`.
    Route {
        /// Destination key.
        key: PastryId,
        /// Hops taken so far.
        hops: u8,
        /// What is being routed.
        payload: RoutePayload<A>,
    },
    /// Answer to a routed `Join`: the owner's neighbourhood, from
    /// which the joiner assembles leaf sets and routing table.
    JoinResp {
        /// The owner itself plus its leaf set.
        leaves: Vec<PeerRef>,
        /// The owner's routing-table peers.
        table_peers: Vec<PeerRef>,
    },
    /// Leaf-set maintenance probe.
    LeafProbe {
        /// The probing peer (receiver absorbs it).
        from: PeerRef,
    },
    /// Leaf-set maintenance answer.
    LeafResp {
        /// The answering peer plus its leaf set.
        leaves: Vec<PeerRef>,
    },
}

/// Payloads routed through the mesh.
#[derive(Clone, Debug)]
pub enum RoutePayload<A> {
    /// An application message.
    App(A),
    /// A join request travelling toward `joiner`'s own id.
    Join {
        /// The joining peer.
        joiner: PeerRef,
    },
}

/// Why a routed message was handed to the application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryReason {
    /// This node is the numerically closest to the key (normal case).
    Responsible,
    /// The hop limit was exceeded; the application decides how to
    /// recover (Flower-CDN falls back to the origin server).
    HopLimit,
}

/// Outcome of handling a Pastry message, surfaced to the embedding
/// protocol.
#[derive(Debug)]
pub enum PastryOutcome<A> {
    /// A routed application payload terminated here.
    Deliver {
        /// The routed key.
        key: PastryId,
        /// The application payload.
        payload: A,
        /// Hops taken from the first routing step.
        hops: u8,
        /// Why it was delivered here.
        reason: DeliveryReason,
    },
    /// This node's join completed; the state has absorbed the owner's
    /// neighbourhood.
    JoinComplete,
}

impl<A: Wire> PastryMsg<A> {
    /// Modelled wire size of this message.
    pub fn wire_size(&self) -> u32 {
        match self {
            PastryMsg::Route { payload, .. } => {
                HEADER_BYTES
                    + match payload {
                        RoutePayload::App(a) => a.wire_size(),
                        RoutePayload::Join { .. } => 16,
                    }
            }
            PastryMsg::JoinResp {
                leaves,
                table_peers,
            } => HEADER_BYTES + 16 * (leaves.len() + table_peers.len()) as u32,
            PastryMsg::LeafProbe { .. } => HEADER_BYTES + 16,
            PastryMsg::LeafResp { leaves } => HEADER_BYTES + 16 * leaves.len() as u32,
        }
    }

    /// Whether this message is routing traffic (`Route`) as opposed to
    /// mesh maintenance.
    pub fn is_routing(&self) -> bool {
        matches!(self, PastryMsg::Route { .. })
    }
}

/// Message-sending abstraction the embedding protocol provides.
pub trait Transport<A> {
    /// Send a Pastry message to an underlay node.
    fn send_pastry(&mut self, to: NodeId, msg: PastryMsg<A>);
}

/// Start routing `payload` toward `key` from this node (the first
/// routing step runs locally). May deliver immediately.
pub fn start_route<A: Wire, T: Transport<A>>(
    st: &mut PastryState,
    t: &mut T,
    key: PastryId,
    payload: A,
) -> Option<PastryOutcome<A>> {
    step_route(st, t, key, 0, RoutePayload::App(payload))
}

/// Join the mesh through `bootstrap`: route a join request for our own
/// id. The [`PastryOutcome::JoinComplete`] outcome arrives via the
/// `JoinResp` reply.
pub fn start_join<A: Wire, T: Transport<A>>(st: &mut PastryState, t: &mut T, bootstrap: NodeId) {
    let me = st.me();
    t.send_pastry(
        bootstrap,
        PastryMsg::Route {
            key: me.id,
            hops: 0,
            payload: RoutePayload::Join { joiner: me },
        },
    );
}

/// Periodic leaf-set maintenance: probe the nearest live leaf on each
/// side so failures heal and new neighbours propagate.
pub fn start_probe<A: Wire, T: Transport<A>>(st: &mut PastryState, t: &mut T) {
    let me = st.me();
    for target in st.nearest_leaves() {
        t.send_pastry(target.node, PastryMsg::LeafProbe { from: me });
    }
}

/// Handle an incoming Pastry message. Returns an outcome if something
/// terminated at this node.
pub fn handle<A: Wire, T: Transport<A>>(
    st: &mut PastryState,
    t: &mut T,
    from: NodeId,
    msg: PastryMsg<A>,
) -> Option<PastryOutcome<A>> {
    let _ = from;
    match msg {
        PastryMsg::Route { key, hops, payload } => step_route(st, t, key, hops, payload),
        PastryMsg::JoinResp {
            leaves,
            table_peers,
        } => {
            for p in leaves.into_iter().chain(table_peers) {
                st.absorb_peer(p);
            }
            Some(PastryOutcome::JoinComplete)
        }
        PastryMsg::LeafProbe { from: probe } => {
            st.absorb_peer(probe);
            let mut leaves: Vec<PeerRef> = vec![st.me()];
            leaves.extend(st.leaves());
            t.send_pastry(probe.node, PastryMsg::LeafResp { leaves });
            None
        }
        PastryMsg::LeafResp { leaves } => {
            for p in leaves {
                st.absorb_peer(p);
            }
            None
        }
    }
}

/// One recursive routing step at this node.
fn step_route<A: Wire, T: Transport<A>>(
    st: &mut PastryState,
    t: &mut T,
    key: PastryId,
    hops: u8,
    payload: RoutePayload<A>,
) -> Option<PastryOutcome<A>> {
    let next = st.next_hop(key);
    let (deliver, reason) = match next {
        None => (true, DeliveryReason::Responsible),
        Some(_) if hops >= st.config().max_hops => (true, DeliveryReason::HopLimit),
        Some(_) => (false, DeliveryReason::Responsible),
    };
    if deliver {
        return terminate(st, t, key, hops, payload, reason);
    }
    let next = next.expect("checked");
    // Every hop that sees a join learns the joiner — the state
    // transfer Pastry performs along the join route.
    if let RoutePayload::Join { joiner } = &payload {
        st.absorb_peer(*joiner);
    }
    t.send_pastry(
        next.node,
        PastryMsg::Route {
            key,
            hops: hops + 1,
            payload,
        },
    );
    None
}

fn terminate<A: Wire, T: Transport<A>>(
    st: &mut PastryState,
    t: &mut T,
    key: PastryId,
    hops: u8,
    payload: RoutePayload<A>,
    reason: DeliveryReason,
) -> Option<PastryOutcome<A>> {
    match payload {
        RoutePayload::App(payload) => Some(PastryOutcome::Deliver {
            key,
            payload,
            hops,
            reason,
        }),
        RoutePayload::Join { joiner } => {
            // We are the numerically closest existing node: hand the
            // joiner our neighbourhood and adopt it as a leaf.
            let mut leaves: Vec<PeerRef> = vec![st.me()];
            leaves.extend(st.leaves());
            let table_peers = st.known_peers();
            st.absorb_peer(joiner);
            t.send_pastry(
                joiner.node,
                PastryMsg::JoinResp {
                    leaves,
                    table_peers,
                },
            );
            None
        }
    }
}

/// A previously sent message bounced (destination down): purge the
/// dead peer from the routing state. Returns true if the state
/// referenced it.
pub fn on_undeliverable<A>(st: &mut PastryState, dead: NodeId, _msg: &PastryMsg<A>) -> bool {
    st.on_peer_dead(dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{stable_mesh, PastryConfig};
    use std::collections::HashMap;

    #[derive(Clone, Debug, PartialEq)]
    struct Payload(u64);
    impl Wire for Payload {
        fn wire_size(&self) -> u32 {
            8
        }
    }

    #[derive(Default)]
    struct VecTransport {
        out: Vec<(NodeId, PastryMsg<Payload>)>,
    }
    impl Transport<Payload> for VecTransport {
        fn send_pastry(&mut self, to: NodeId, msg: PastryMsg<Payload>) {
            self.out.push((to, msg));
        }
    }

    fn mesh(n: u64) -> (HashMap<NodeId, PastryState>, Vec<PeerRef>) {
        let members: Vec<PeerRef> = (0..n)
            .map(|i| PeerRef {
                id: PastryId(chord::hash64(i)),
                node: NodeId(i as u32),
            })
            .collect();
        let states = stable_mesh(&members, &PastryConfig::default());
        (
            members.iter().map(|m| m.node).zip(states).collect(),
            members,
        )
    }

    fn drive(
        states: &mut HashMap<NodeId, PastryState>,
        t: &mut VecTransport,
    ) -> Vec<(NodeId, PastryOutcome<Payload>)> {
        let mut outcomes = Vec::new();
        let mut guard = 0;
        while let Some((to, msg)) = t.out.pop() {
            guard += 1;
            assert!(guard < 10_000, "message storm");
            let st = states.get_mut(&to).expect("known node");
            if let Some(o) = handle(st, t, NodeId(u32::MAX), msg) {
                outcomes.push((to, o));
            }
        }
        outcomes
    }

    #[test]
    fn routed_payloads_reach_the_owner() {
        let (mut states, members) = mesh(40);
        for probe in 0..32u64 {
            let key = PastryId(chord::hash64(5_000 + probe));
            let expect = members
                .iter()
                .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
                .unwrap()
                .node;
            let start = members[(probe % 40) as usize].node;
            let mut t = VecTransport::default();
            let mut outcomes = Vec::new();
            if let Some(o) =
                start_route(states.get_mut(&start).unwrap(), &mut t, key, Payload(probe))
            {
                outcomes.push((start, o));
            }
            outcomes.extend(drive(&mut states, &mut t));
            assert_eq!(outcomes.len(), 1, "exactly one delivery for {key:?}");
            let (at, o) = &outcomes[0];
            assert_eq!(*at, expect);
            match o {
                PastryOutcome::Deliver {
                    payload, reason, ..
                } => {
                    assert_eq!(*payload, Payload(probe));
                    assert_eq!(*reason, DeliveryReason::Responsible);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn join_completes_and_wires_the_newcomer_in() {
        let (mut states, members) = mesh(24);
        let newbie = PeerRef {
            id: PastryId(chord::hash64(999_999)),
            node: NodeId(24),
        };
        let mut st = PastryState::new(newbie, PastryConfig::default());
        let mut t = VecTransport::default();
        start_join(&mut st, &mut t, members[0].node);
        states.insert(newbie.node, st);
        let outcomes = drive(&mut states, &mut t);
        assert!(
            outcomes
                .iter()
                .any(|(at, o)| *at == newbie.node && matches!(o, PastryOutcome::JoinComplete)),
            "join must complete: {outcomes:?}"
        );
        // The newcomer now owns its own id from anywhere.
        let start = members[7].node;
        let mut t = VecTransport::default();
        let mut outcomes = Vec::new();
        if let Some(o) = start_route(
            states.get_mut(&start).unwrap(),
            &mut t,
            newbie.id,
            Payload(1),
        ) {
            outcomes.push((start, o));
        }
        outcomes.extend(drive(&mut states, &mut t));
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].0, newbie.node,
            "route to the joined id must land on it"
        );
    }

    #[test]
    fn leaf_probe_heals_after_failure() {
        let (mut states, members) = mesh(16);
        // Kill one node; purge it only at its ring neighbour, then let
        // probes re-spread the neighbour's knowledge.
        let victim = members[3].node;
        states.remove(&victim);
        for st in states.values_mut() {
            st.on_peer_dead(victim);
        }
        let prober = members[5].node;
        let mut t = VecTransport::default();
        start_probe(states.get_mut(&prober).unwrap(), &mut t);
        let outcomes = drive(&mut states, &mut t);
        assert!(outcomes.is_empty(), "maintenance produces no app outcomes");
        // Every remaining node still routes every key to the live
        // numerically-closest owner.
        let alive: Vec<&PeerRef> = members.iter().filter(|m| m.node != victim).collect();
        for probe in 0..16u64 {
            let key = PastryId(chord::hash64(31_000 + probe));
            let expect = alive
                .iter()
                .min_by_key(|p| (p.id.ring_distance(key), p.id.0))
                .unwrap()
                .node;
            let start = alive[(probe % alive.len() as u64) as usize].node;
            let mut t = VecTransport::default();
            let mut outcomes = Vec::new();
            if let Some(o) =
                start_route(states.get_mut(&start).unwrap(), &mut t, key, Payload(probe))
            {
                outcomes.push((start, o));
            }
            outcomes.extend(drive(&mut states, &mut t));
            assert_eq!(outcomes.len(), 1);
            assert_eq!(outcomes[0].0, expect, "key {key:?} misrouted after failure");
        }
    }

    #[test]
    fn undeliverable_purges_and_wire_sizes_hold() {
        let (mut states, members) = mesh(8);
        let st = states.get_mut(&members[0].node).unwrap();
        let dead = st.leaves().next().unwrap().node;
        let bounced: PastryMsg<Payload> = PastryMsg::LeafProbe { from: members[0] };
        assert!(on_undeliverable(st, dead, &bounced));
        assert!(st.known_peers().iter().all(|p| p.node != dead));

        let m: PastryMsg<Payload> = PastryMsg::Route {
            key: PastryId(1),
            hops: 0,
            payload: RoutePayload::App(Payload(9)),
        };
        assert_eq!(m.wire_size(), HEADER_BYTES + 8);
        assert!(m.is_routing());
        let r: PastryMsg<Payload> = PastryMsg::LeafResp {
            leaves: vec![members[0]; 3],
        };
        assert_eq!(r.wire_size(), HEADER_BYTES + 48);
        assert!(!r.is_routing());
    }
}
