//! Hot-path overhead micro-bench for the metric registry.
//!
//! Run with `cargo test -p metrics --release -- --ignored --nocapture`
//! to print ns/op for the three hot-path operations. The numbers back
//! the "within the bench gate" claim in the README: a counter
//! increment is an unsynchronized array add (~1 ns), a histogram
//! record adds a leading-zeros bucket index on top, and the end-of-run
//! merge touches every cell once per shard — all far below the 20%
//! events/s regression gate, and in practice invisible next to the
//! engine's per-event work.
//!
//! Kept as an `#[ignore]`d test rather than a criterion bench so it
//! rides the existing test harness (the vendored criterion shim has no
//! measurement loop) and never slows `cargo test -q` down.

use metrics::{Counter, Hist, MetricSet};
use std::hint::black_box;
use std::time::Instant;

fn ns_per_op(label: &str, iters: u64, f: impl FnOnce() -> u64) {
    let start = Instant::now();
    let sink = f();
    let elapsed = start.elapsed();
    println!(
        "{label}: {:.2} ns/op over {iters} iters (sink {sink})",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

#[test]
#[ignore = "micro-bench: run with --ignored --nocapture in release mode"]
fn hot_path_ns_per_op() {
    const N: u64 = 50_000_000;
    let mut s = MetricSet::new();
    ns_per_op("counter incr     ", N, || {
        for _ in 0..N {
            s.incr(black_box(Counter::EngineEvents));
        }
        s.counter(Counter::EngineEvents)
    });
    let mut s = MetricSet::new();
    ns_per_op("histogram record ", N, || {
        for i in 0..N {
            s.record(black_box(Hist::GossipPayloadBytes), i % 4096);
        }
        s.hist(Hist::GossipPayloadBytes).count()
    });
    // The merge runs once per shard per read, never per event; measure
    // it per whole-set merge rather than per cell.
    let mut a = MetricSet::new();
    let mut b = MetricSet::new();
    for i in 0..1000 {
        b.incr(Counter::DirProcess);
        b.record(Hist::DirViewSeedLen, i % 64);
    }
    const M: u64 = 1_000_000;
    ns_per_op("whole-set merge  ", M, || {
        for _ in 0..M {
            a.merge_from(&b);
        }
        a.counter(Counter::DirProcess)
    });
}
