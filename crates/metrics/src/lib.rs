//! # metrics — static metric registry for the simulator
//!
//! A rezolus-style observability plane, hand-rolled for this offline
//! workspace (no `linkme`/`ctor` distributed registration, no serde):
//! every metric the system can emit is **declared once** in a static
//! table ([`defs`]) with name, description, unit, owning subsystem and
//! determinism scope, and addressed by a dense enum
//! ([`Counter`], [`Gauge`], [`Hist`]). Recording is an array index and
//! an integer add on plain `u64` cells — no atomics, no locks, no
//! allocation — because each engine shard owns a private
//! [`MetricSet`], exactly like the per-shard `Traffic` accumulators,
//! and the sets are merged **deterministically in shard order** at
//! read time ([`MetricSet::merge_from`]).
//!
//! ## Determinism scopes
//!
//! Metrics carry a [`Scope`]:
//!
//! * [`Scope::Sim`] — a fact about the *simulation* (events delivered
//!   per traffic class, Algorithm 3 draws, gossip exchanges). The
//!   merged value is **bit-identical for every shard count and queue
//!   backend**, and the shard-parity suite pins that.
//! * [`Scope::Exec`] — a fact about the *execution* (epoch rounds,
//!   fused solo rounds, barrier idle time, peak queue depth). These
//!   legitimately vary with the shard layout and are excluded from
//!   parity checks.
//!
//! [`MetricSet::sim_fingerprint`] flattens every `Sim`-scope cell into
//! one comparable vector for exactly that purpose.
//!
//! ## Histograms
//!
//! Value distributions use a log-linear layout ([`LogLinearHist`]):
//! each power of two is split into `2^GROUP_BITS` linear sub-buckets,
//! giving a bounded relative error over the full `u64` range in a
//! fixed 252-slot array. Buckets are integers, so merging is a
//! bucket-wise add and stays exact.

pub mod defs;
pub mod hist;
pub mod set;

pub use defs::{
    Counter, Gauge, Hist, MetricDef, MetricKind, Scope, Subsystem, METRICS_SCHEMA_NAME,
};
pub use hist::{bucket_bounds, bucket_index, LogLinearHist, BUCKETS, GROUP_BITS};
pub use set::{MetricSet, MetricSink};
