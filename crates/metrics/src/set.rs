//! Per-shard metric cells and their deterministic merge.

use crate::defs::{Counter, Gauge, Hist, Scope};
use crate::hist::LogLinearHist;

/// One owner's worth of metric cells: every registered counter, gauge
/// and histogram, as plain dense arrays.
///
/// Each engine shard owns a private `MetricSet`, so recording on the
/// hot path is an unsynchronized array index + integer add — the same
/// discipline as the per-shard `Traffic` accumulators. At read time
/// the engine merges shard sets **in shard order** with
/// [`MetricSet::merge_from`]; since counters merge by addition,
/// gauges by maximum and histograms bucket-wise, the merged
/// [`Scope::Sim`] cells are bit-identical for every shard layout.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSet {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    hists: [LogLinearHist; Hist::COUNT],
}

impl MetricSet {
    /// All-zero cells.
    pub fn new() -> Self {
        MetricSet {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: std::array::from_fn(|_| LogLinearHist::new()),
        }
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn incr(&mut self, c: Counter) {
        self.counters[c.index()] += 1;
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Raise a gauge to `v` if `v` is a new high-water mark.
    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        let cell = &mut self.gauges[g.index()];
        *cell = (*cell).max(v);
    }

    /// Record a value into a histogram.
    #[inline]
    pub fn record(&mut self, h: Hist, v: u64) {
        self.hists[h.index()].record(v);
    }

    /// Current counter value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Current gauge value.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// A histogram's cells.
    pub fn hist(&self, h: Hist) -> &LogLinearHist {
        &self.hists[h.index()]
    }

    /// Merge another set into this one: counters add, gauges take the
    /// maximum, histograms add bucket-wise. Commutative and
    /// associative, but callers merge in shard order anyway so the
    /// discipline matches the rest of the stats plane.
    pub fn merge_from(&mut self, other: &MetricSet) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge_from(b);
        }
    }

    /// Every [`Scope::Sim`] cell flattened into one vector (counters,
    /// then per-histogram count/sum/buckets), for shard-parity
    /// assertions: two runs of the same simulation must produce equal
    /// fingerprints regardless of shard count, queue backend or
    /// lookahead mode.
    pub fn sim_fingerprint(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for c in Counter::ALL {
            if c.def().scope == Scope::Sim {
                out.push(self.counter(*c));
            }
        }
        for g in Gauge::ALL {
            if g.def().scope == Scope::Sim {
                out.push(self.gauge(*g));
            }
        }
        for h in Hist::ALL {
            if h.def().scope == Scope::Sim {
                let hist = self.hist(*h);
                out.push(hist.count());
                out.push(hist.sum());
                for (i, c) in hist.nonzero() {
                    out.push(i as u64);
                    out.push(c);
                }
            }
        }
        out
    }

    /// True if every cell is zero (the registry never recorded).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(|h| h.count() == 0)
    }
}

impl Default for MetricSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Record-only view of a [`MetricSet`], handed to protocol code via
/// `Ctx::metrics()` — the same facade discipline as the engine's
/// `QuerySink`: node handlers can record but never read or merge, so
/// mid-run metric state cannot leak back into protocol decisions and
/// break shard-count invariance.
pub struct MetricSink<'a> {
    set: &'a mut MetricSet,
}

impl<'a> MetricSink<'a> {
    /// Wrap a set.
    pub fn new(set: &'a mut MetricSet) -> Self {
        MetricSink { set }
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn incr(&mut self, c: Counter) {
        self.set.incr(c);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.set.add(c, n);
    }

    /// Raise a gauge high-water mark.
    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        self.set.gauge_max(g, v);
    }

    /// Record a histogram value.
    #[inline]
    pub fn record(&mut self, h: Hist, v: u64) {
        self.set.record(h, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty_and_zero() {
        let s = MetricSet::new();
        assert!(s.is_empty());
        assert_eq!(s.counter(Counter::EngineEvents), 0);
        assert_eq!(s.gauge(Gauge::PeakQueueDepth), 0);
        assert_eq!(s.hist(Hist::GossipPayloadBytes).count(), 0);
    }

    #[test]
    fn record_and_read() {
        let mut s = MetricSet::new();
        s.incr(Counter::EngineEvents);
        s.add(Counter::EngineEvents, 4);
        s.gauge_max(Gauge::PeakQueueDepth, 10);
        s.gauge_max(Gauge::PeakQueueDepth, 3);
        s.record(Hist::DirViewSeedLen, 8);
        assert_eq!(s.counter(Counter::EngineEvents), 5);
        assert_eq!(s.gauge(Gauge::PeakQueueDepth), 10);
        assert_eq!(s.hist(Hist::DirViewSeedLen).count(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn sink_is_record_only_and_writes_through() {
        let mut s = MetricSet::new();
        {
            let mut sink = MetricSink::new(&mut s);
            sink.incr(Counter::DirProcess);
            sink.add(Counter::GossipExchanges, 2);
            sink.gauge_max(Gauge::BarrierIdleMaxNs, 7);
            sink.record(Hist::GossipPayloadBytes, 100);
        }
        assert_eq!(s.counter(Counter::DirProcess), 1);
        assert_eq!(s.counter(Counter::GossipExchanges), 2);
        assert_eq!(s.gauge(Gauge::BarrierIdleMaxNs), 7);
        assert_eq!(s.hist(Hist::GossipPayloadBytes).sum(), 100);
    }

    #[test]
    fn merge_semantics_per_kind() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        a.add(Counter::EngineEvents, 3);
        b.add(Counter::EngineEvents, 4);
        a.gauge_max(Gauge::PeakQueueDepth, 9);
        b.gauge_max(Gauge::PeakQueueDepth, 5);
        a.record(Hist::GossipPayloadBytes, 32);
        b.record(Hist::GossipPayloadBytes, 32);
        b.record(Hist::GossipPayloadBytes, 1000);
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.counter(Counter::EngineEvents), 7);
        assert_eq!(merged.gauge(Gauge::PeakQueueDepth), 9);
        let h = merged.hist(Hist::GossipPayloadBytes);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 32 + 32 + 1000);
    }

    #[test]
    fn shard_split_merges_to_the_same_fingerprint() {
        // One owner recording everything vs. the same records split
        // across three owners and merged: identical Sim fingerprints.
        let record = |s: &mut MetricSet, vals: &[u64]| {
            for &v in vals {
                s.incr(Counter::EngineEvents);
                s.add(Counter::DirProcess, v % 3);
                s.record(Hist::DirViewSeedLen, v);
            }
        };
        let vals: Vec<u64> = (0..100).map(|i| i * 37 % 1024).collect();
        let mut whole = MetricSet::new();
        record(&mut whole, &vals);
        let mut parts: Vec<MetricSet> = (0..3).map(|_| MetricSet::new()).collect();
        for (i, chunk) in vals.chunks(34).enumerate() {
            record(&mut parts[i], chunk);
        }
        let mut merged = MetricSet::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(whole.sim_fingerprint(), merged.sim_fingerprint());
        assert_eq!(whole, merged);
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary recording streams partitioned across 1, 2 or
            /// 4 per-shard cells and merged in shard order always
            /// reproduce the single-owner set — the property the
            /// engine relies on for `--shards`-invariant metrics.
            #[test]
            fn shard_partition_never_changes_the_merged_set(
                vals in proptest::collection::vec(any::<u64>(), 1..200),
                shards in 1usize..5,
            ) {
                let mut whole = MetricSet::new();
                let mut parts: Vec<MetricSet> =
                    (0..shards).map(|_| MetricSet::new()).collect();
                for (i, &v) in vals.iter().enumerate() {
                    for s in [&mut whole, &mut parts[i % shards]] {
                        s.incr(Counter::EngineEvents);
                        s.add(Counter::GossipExchanges, v % 7);
                        s.gauge_max(Gauge::PeakQueueDepth, v % 1024);
                        s.record(Hist::GossipPayloadBytes, v);
                    }
                }
                let mut merged = MetricSet::new();
                for p in &parts {
                    merged.merge_from(p);
                }
                prop_assert_eq!(&merged, &whole);
                prop_assert_eq!(merged.sim_fingerprint(), whole.sim_fingerprint());
            }
        }
    }

    #[test]
    fn exec_cells_do_not_enter_the_sim_fingerprint() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        a.incr(Counter::EngineEvents);
        b.incr(Counter::EngineEvents);
        // Exec-scope cells differ wildly…
        a.add(Counter::EngineEpochs, 500);
        a.gauge_max(Gauge::PeakQueueDepth, 123_456);
        // …but the Sim fingerprint is unaffected.
        assert_eq!(a.sim_fingerprint(), b.sim_fingerprint());
        assert_ne!(a, b);
    }
}
