//! Log-linear histogram over the full `u64` range.
//!
//! Layout (the rezolus / h2histogram shape): values below
//! `2^(GROUP_BITS + 1)` get one bucket each (exact); above that, every
//! power of two is split into `2^GROUP_BITS` linear sub-buckets, so
//! the relative width of any bucket is at most `2^-GROUP_BITS`. With
//! `GROUP_BITS = 2` that is 252 buckets and ≤ 25% relative error —
//! plenty for attribution, and small enough to keep a per-shard array
//! in cache.
//!
//! Everything is integer arithmetic: recording is a leading-zeros
//! count plus shifts, merging is a bucket-wise add, so histograms are
//! exactly as deterministic as the counters.

/// Linear sub-buckets per power of two, as a bit count.
pub const GROUP_BITS: u32 = 2;

const GROUPS: usize = 1 << GROUP_BITS;

/// Total bucket count for the full `u64` range.
pub const BUCKETS: usize = (64 - GROUP_BITS as usize + 1) * GROUPS;

/// Bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << (GROUP_BITS + 1)) {
        v as usize
    } else {
        let p = 63 - v.leading_zeros();
        let shift = p - GROUP_BITS;
        ((shift as usize) << GROUP_BITS) + (v >> shift) as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i < (1 << (GROUP_BITS + 1)) {
        (i as u64, i as u64)
    } else {
        let q = i >> GROUP_BITS;
        let shift = (q - 1) as u32;
        let s = (i - ((shift as usize) << GROUP_BITS)) as u64;
        let lower = s << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// A fixed-size log-linear histogram: per-bucket counts plus the
/// exact count and sum of recorded values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogLinearHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl LogLinearHist {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogLinearHist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Bucket-wise merge of another histogram into this one.
    pub fn merge_from(&mut self, other: &LogLinearHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for LogLinearHist {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..(1u64 << (GROUP_BITS + 1)) {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_range() {
        // Consecutive buckets touch: upper(i) + 1 == lower(i + 1).
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_and_bounds_agree() {
        let probes = [
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1023,
            1024,
            u64::MAX / 2,
            u64::MAX,
        ];
        for v in probes {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = LogLinearHist::new();
        let mut b = LogLinearHist::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
        }
        for v in [2u64, 9, 1000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), 1 + 5 + 9 + 100 + 2 + 9 + 1000);
        assert_eq!(merged.bucket(bucket_index(9)), 2);
        let total: u64 = merged.nonzero().map(|(_, c)| c).sum();
        assert_eq!(total, merged.count());
        assert!(merged.mean() > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_value_lands_inside_its_bucket(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi);
        }
    }
}
