//! The static registry: every metric, declared once with metadata.
//!
//! The declaration style follows rezolus/metriken — a flat table of
//! `name / description / unit` entries — but registration is a const
//! array indexed by a dense enum instead of linker-section magic,
//! which keeps the whole registry visible in one file and free of
//! build-time dependencies.

/// Schema tag of the versioned `METRICS.json` export read by the CI
/// gate. Bump the suffix when the document layout changes.
pub const METRICS_SCHEMA_NAME: &str = "flower-cdn/metrics/v1";

/// The subsystem a metric attributes its cost to. The CI attribution
/// table groups by this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The simnet event engine: dispatch, timers, epoch barrier.
    Engine,
    /// The D-ring directory: Algorithm 3, view seeding, §5.3 petals.
    Directory,
    /// The content overlays: gossip exchanges and Bloom summaries.
    Gossip,
}

impl Subsystem {
    /// Stable lower-case name used in `METRICS.json`.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Directory => "directory",
            Subsystem::Gossip => "gossip",
        }
    }
}

/// Determinism scope of a metric (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scope {
    /// A fact about the simulation — bit-identical across shard
    /// counts, queue backends and lookahead modes; parity-pinned.
    Sim,
    /// A fact about the execution — legitimately varies with the
    /// shard layout (epochs, barrier idle, queue depth).
    Exec,
}

impl Scope {
    /// Stable lower-case name used in `METRICS.json`.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Sim => "sim",
            Scope::Exec => "exec",
        }
    }
}

/// What kind of cell backs a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Monotone `u64` accumulator; shards merge by addition.
    Counter,
    /// High-water mark; shards merge by maximum.
    Gauge,
    /// Log-linear value distribution; shards merge bucket-wise.
    Histogram,
}

impl MetricKind {
    /// Stable lower-case name used in `METRICS.json`.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Metadata of one registered metric.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Stable snake-case identifier (`<subsystem>_<what>`).
    pub name: &'static str,
    /// One-line human description, shown in the CI table.
    pub description: &'static str,
    /// Unit of the recorded values (`events`, `bytes`, `ns`, …).
    pub unit: &'static str,
    /// Owning subsystem for attribution.
    pub subsystem: Subsystem,
    /// Determinism scope.
    pub scope: Scope,
    /// Cell kind.
    pub kind: MetricKind,
}

macro_rules! registry {
    ($enumdoc:literal, $enum_:ident, $defs:ident, $kind:expr;
     $( $(#[$vmeta:meta])* $variant:ident => $name:literal, $unit:literal, $subsystem:ident, $scope:ident, $desc:literal; )+ ) => {
        #[doc = $enumdoc]
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $enum_ {
            $( $(#[$vmeta])* #[doc = $desc] $variant, )+
        }

        impl $enum_ {
            /// Every variant, in declaration (= cell) order.
            pub const ALL: &'static [$enum_] = &[ $( $enum_::$variant, )+ ];

            /// Number of registered cells of this kind.
            pub const COUNT: usize = $enum_::ALL.len();

            /// Dense cell index.
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            /// The static registration record.
            #[inline]
            pub fn def(self) -> &'static MetricDef {
                &$defs[self as usize]
            }
        }

        /// Static registration records, in cell order.
        pub static $defs: [MetricDef; $enum_::COUNT] = [
            $( MetricDef {
                name: $name,
                description: $desc,
                unit: $unit,
                subsystem: Subsystem::$subsystem,
                scope: Scope::$scope,
                kind: $kind,
            }, )+
        ];
    };
}

registry! {
    "Registered counters: monotone `u64` accumulators merged by addition.",
    Counter, COUNTER_DEFS, MetricKind::Counter;

    EngineEvents => "engine_events_total", "events", Engine, Sim,
        "Events the engine dispatched to node handlers (receives and timers).";
    EngineTimers => "engine_timer_events", "events", Engine, Sim,
        "Of the dispatched events, timer firings.";
    EngineBounces => "engine_bounced_sends", "messages", Engine, Sim,
        "Sends to dead nodes turned into bounce notifications.";
    EngineFaultDrops => "engine_fault_dropped", "messages", Engine, Sim,
        "Messages silently dropped by the fault plane (partition cuts and link loss).";
    SentGossip => "engine_sent_gossip", "messages", Engine, Sim,
        "Messages emitted in the Gossip traffic class.";
    SentPush => "engine_sent_push", "messages", Engine, Sim,
        "Messages emitted in the Push traffic class.";
    SentKeepAlive => "engine_sent_keepalive", "messages", Engine, Sim,
        "Messages emitted in the KeepAlive traffic class.";
    SentDhtRouting => "engine_sent_dht_routing", "messages", Engine, Sim,
        "Messages emitted in the DhtRouting traffic class.";
    SentDhtMaintenance => "engine_sent_dht_maintenance", "messages", Engine, Sim,
        "Messages emitted in the DhtMaintenance traffic class.";
    SentQueryControl => "engine_sent_query_control", "messages", Engine, Sim,
        "Messages emitted in the QueryControl traffic class.";
    SentTransfer => "engine_sent_transfer", "messages", Engine, Sim,
        "Messages emitted in the Transfer traffic class.";
    RecvGossip => "engine_recv_gossip", "messages", Engine, Sim,
        "Messages delivered in the Gossip traffic class.";
    RecvPush => "engine_recv_push", "messages", Engine, Sim,
        "Messages delivered in the Push traffic class.";
    RecvKeepAlive => "engine_recv_keepalive", "messages", Engine, Sim,
        "Messages delivered in the KeepAlive traffic class.";
    RecvDhtRouting => "engine_recv_dht_routing", "messages", Engine, Sim,
        "Messages delivered in the DhtRouting traffic class.";
    RecvDhtMaintenance => "engine_recv_dht_maintenance", "messages", Engine, Sim,
        "Messages delivered in the DhtMaintenance traffic class.";
    RecvQueryControl => "engine_recv_query_control", "messages", Engine, Sim,
        "Messages delivered in the QueryControl traffic class.";
    RecvTransfer => "engine_recv_transfer", "messages", Engine, Sim,
        "Messages delivered in the Transfer traffic class.";
    DropGossip => "engine_drop_gossip", "messages", Engine, Sim,
        "Gossip-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropPush => "engine_drop_push", "messages", Engine, Sim,
        "Push-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropKeepAlive => "engine_drop_keepalive", "messages", Engine, Sim,
        "KeepAlive-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropDhtRouting => "engine_drop_dht_routing", "messages", Engine, Sim,
        "DhtRouting-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropDhtMaintenance => "engine_drop_dht_maintenance", "messages", Engine, Sim,
        "DhtMaintenance-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropQueryControl => "engine_drop_query_control", "messages", Engine, Sim,
        "QueryControl-class messages dropped undelivered (fault cuts, loss, dead senders).";
    DropTransfer => "engine_drop_transfer", "messages", Engine, Sim,
        "Transfer-class messages dropped undelivered (fault cuts, loss, dead senders).";
    BounceGossip => "engine_bounce_gossip", "messages", Engine, Sim,
        "Gossip-class sends bounced off dead destinations.";
    BouncePush => "engine_bounce_push", "messages", Engine, Sim,
        "Push-class sends bounced off dead destinations.";
    BounceKeepAlive => "engine_bounce_keepalive", "messages", Engine, Sim,
        "KeepAlive-class sends bounced off dead destinations.";
    BounceDhtRouting => "engine_bounce_dht_routing", "messages", Engine, Sim,
        "DhtRouting-class sends bounced off dead destinations.";
    BounceDhtMaintenance => "engine_bounce_dht_maintenance", "messages", Engine, Sim,
        "DhtMaintenance-class sends bounced off dead destinations.";
    BounceQueryControl => "engine_bounce_query_control", "messages", Engine, Sim,
        "QueryControl-class sends bounced off dead destinations.";
    BounceTransfer => "engine_bounce_transfer", "messages", Engine, Sim,
        "Transfer-class sends bounced off dead destinations.";
    EngineEpochs => "engine_epochs", "rounds", Engine, Exec,
        "Conservative-barrier epoch rounds the sharded engine ran.";
    EngineFusedRounds => "engine_fused_rounds", "rounds", Engine, Exec,
        "Of the epoch rounds, fused solo rounds (one working shard ran ahead).";
    EngineBarrierIdleNs => "engine_barrier_idle_ns", "ns", Engine, Exec,
        "Wall-clock nanoseconds shard threads spent waiting at the epoch barrier, summed over shards.";
    DirProcess => "dir_process_calls", "queries", Directory, Sim,
        "Algorithm 3 invocations (directory query-routing decisions).";
    DirToHolder => "dir_decision_to_holder", "queries", Directory, Sim,
        "Algorithm 3 decisions that drew a content holder.";
    DirToDirectory => "dir_decision_to_directory", "queries", Directory, Sim,
        "Algorithm 3 decisions that forwarded to another directory.";
    DirToServer => "dir_decision_to_server", "queries", Directory, Sim,
        "Algorithm 3 decisions that fell back to the origin server.";
    DirViewSeeds => "dir_view_seed_calls", "calls", Directory, Sim,
        "Admission view seedings served from the recency-ordered member set.";
    DirPetalSplits => "dir_petal_splits", "splits", Directory, Sim,
        "§5.3 PetalUp petal splits (live instance count doubled).";
    DirPetalMerges => "dir_petal_merges", "merges", Directory, Sim,
        "§5.3 PetalUp petal merges (live instance count halved).";
    DirQueryTimeouts => "dir_query_timeouts", "queries", Directory, Sim,
        "Pending queries whose timeout fired before any response arrived.";
    DirQueryRetries => "dir_query_retries", "queries", Directory, Sim,
        "Timed-out queries re-routed within the retry budget (sibling petal or fresh bootstrap).";
    DirQueryOriginFallbacks => "dir_query_degraded_origin", "queries", Directory, Sim,
        "Queries that exhausted the retry budget and degraded straight to the origin server.";
    GossipExchanges => "gossip_exchanges", "exchanges", Gossip, Sim,
        "Periodic gossip exchanges initiated by content peers.";
    BloomCowClones => "bloom_snapshot_cow_clones", "snapshots", Gossip, Sim,
        "Bloom summary snapshots served as copy-on-write clones of the cached filter.";
    BloomRebuilds => "bloom_snapshot_rebuilds", "snapshots", Gossip, Sim,
        "Bloom summary snapshots that had to rebuild the filter from counters.";
}

registry! {
    "Registered gauges: high-water marks merged by maximum.",
    Gauge, GAUGE_DEFS, MetricKind::Gauge;

    PeakQueueDepth => "engine_peak_queue_depth", "events", Engine, Exec,
        "High-water mark of any shard's event-queue length.";
    BarrierIdleMaxNs => "engine_barrier_idle_max_ns", "ns", Engine, Exec,
        "Barrier-wait nanoseconds of the worst-placed shard.";
}

registry! {
    "Registered histograms: log-linear value distributions merged bucket-wise.",
    Hist, HIST_DEFS, MetricKind::Histogram;

    GossipPayloadBytes => "gossip_payload_bytes", "bytes", Gossip, Sim,
        "Wire size of initiated gossip exchange payloads.";
    DirViewSeedLen => "dir_view_seed_members", "members", Directory, Sim,
        "Members returned per admission view seeding.";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_prefixed_by_subsystem() {
        let mut seen = HashSet::new();
        let all = Counter::ALL
            .iter()
            .map(|c| c.def())
            .chain(Gauge::ALL.iter().map(|g| g.def()))
            .chain(Hist::ALL.iter().map(|h| h.def()));
        for def in all {
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
            let prefix = match def.subsystem {
                Subsystem::Engine => "engine_",
                Subsystem::Directory => "dir_",
                Subsystem::Gossip if def.name.starts_with("bloom_") => "bloom_",
                Subsystem::Gossip => "gossip_",
            };
            assert!(
                def.name.starts_with(prefix),
                "{} not prefixed {prefix}",
                def.name
            );
            assert!(!def.description.is_empty());
            assert!(!def.unit.is_empty());
        }
    }

    #[test]
    fn enum_indices_match_def_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(c.def().name, COUNTER_DEFS[i].name);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        assert_eq!(Counter::COUNT, COUNTER_DEFS.len());
    }

    #[test]
    fn kinds_match_tables() {
        assert!(COUNTER_DEFS.iter().all(|d| d.kind == MetricKind::Counter));
        assert!(GAUGE_DEFS.iter().all(|d| d.kind == MetricKind::Gauge));
        assert!(HIST_DEFS.iter().all(|d| d.kind == MetricKind::Histogram));
    }
}
