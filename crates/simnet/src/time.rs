//! Simulated time.
//!
//! The simulator uses a single monotonically increasing clock with
//! millisecond resolution, matching the paper's latency model (link
//! latencies of 10–500 ms, gossip periods of minutes, experiments of
//! 24 simulated hours). `u64` milliseconds gives more than 500 million
//! years of headroom, so arithmetic never overflows in practice; we
//! still use saturating operations so a buggy caller cannot panic the
//! simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in milliseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `ms` milliseconds after the simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms)
    }

    /// An instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// An instant `mins` minutes after the simulation start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60 * 1000)
    }

    /// An instant `hours` hours after the simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 60 * 60 * 1000)
    }

    /// Milliseconds since the simulation start.
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional hours since the simulation start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// A duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1000)
    }

    /// A duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 60 * 60 * 1000)
    }

    /// The duration in milliseconds.
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the duration by an integer factor (saturating).
    pub const fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Integer division of the duration.
    pub const fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1000;
        let s = (self.0 / 1000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = self.0 / 3_600_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_ms(2000));
        assert_eq!(SimTime::from_mins(3), SimTime::from_secs(180));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_hours(24).as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(100) + SimDuration::from_ms(50);
        assert_eq!(t.as_ms(), 150);
        assert_eq!((t - SimTime::from_ms(40)).as_ms(), 110);
        // Saturating subtraction: earlier - later == 0.
        assert_eq!((SimTime::from_ms(10) - SimTime::from_ms(20)).as_ms(), 0);
        assert_eq!(
            SimTime::from_ms(10).since(SimTime::from_ms(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_ms(30).mul(3).as_ms(), 90);
        assert_eq!(SimDuration::from_ms(90).div(3).as_ms(), 30);
        assert_eq!(SimDuration::from_ms(u64::MAX).mul(2).as_ms(), u64::MAX);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_hours(2) + SimDuration::from_mins(3) + SimDuration::from_ms(4005);
        assert_eq!(format!("{t}"), "02:03:04.005");
        assert_eq!(format!("{:?}", SimDuration::from_ms(7)), "7ms");
    }

    #[test]
    fn fractional_accessors() {
        assert!((SimTime::from_hours(3).as_hours_f64() - 3.0).abs() < 1e-12);
        assert!((SimDuration::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
