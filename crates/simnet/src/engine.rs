//! The protocol engine: message delivery with link latency, timers,
//! failure signalling, traffic accounting, churn — and locality-based
//! sharding for deterministic parallel execution.
//!
//! Protocols are written as message-driven state machines: a node type
//! implements [`Node`] for a protocol-specific message enum `M`
//! implementing [`Message`]. All interaction with the outside world
//! goes through [`Ctx`] — sending messages, arming timers, reading the
//! clock/topology, drawing from the node's private RNG stream, and
//! recording metrics — which keeps the protocol logic purely
//! deterministic and unit-testable.
//!
//! ## Sharded execution model
//!
//! The engine partitions nodes by network locality into `K` shards
//! ([`Topology::shard_map`]). Each shard owns its nodes, an event
//! queue, a clock, per-node RNG streams and a private copy of every
//! statistics accumulator, and runs on its own thread. Shards
//! synchronize with a *conservative epoch barrier*: the epoch length
//! is the topology's lookahead ([`Topology::cross_locality_lookahead`]
//! — a guaranteed lower bound on every cross-locality link latency),
//! so a message sent during one epoch can only be due in a *later*
//! epoch and can safely be handed to its destination shard at the
//! barrier in between.
//!
//! Determinism does not come from the barrier alone but from the event
//! ordering: every event carries an [`EventKey`] `(time, source
//! stream, per-stream seq)` that is independent of the shard layout
//! (see [`crate::event`]). Each shard processes its events in key
//! order; since shards share no mutable state within an epoch and all
//! cross-shard effects are exchanged at barriers under the lookahead
//! guarantee, a run is equivalent to the sequential execution in
//! global key order — **bit-identical for any shard count, including
//! `K = 1`** (which skips threads and barriers entirely).
//!
//! Liveness (`up`) flags are replicated per shard and updated by
//! broadcasting the externally scheduled churn events to every shard,
//! so the bounce decision for a wire message never reads another
//! shard's state.
//!
//! ## Randomness
//!
//! There is no engine-global RNG: node `n` draws from its own
//! `StdRng` seeded with `hash(seed, n)` ([`node_stream_seed`]), so the
//! stream a node observes does not depend on what other nodes —
//! possibly on other shards — consumed.
//!
//! ## Failure model
//!
//! Messages to a node that is *down* are dropped, and the sender
//! receives an [`Event::Undeliverable`] notification one round trip
//! later (modelling a connection-refused error). This is what drives
//! the paper's redirection-failure handling (§5.1) and
//! directory-failure detection (§5.2) without a global liveness
//! oracle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use metrics::{Counter, Gauge, MetricSet, MetricSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{EventKey, EventQueue};
use crate::stats::{QueryStats, ShardTraffic, TimeSeries, Traffic, TrafficClass};
use crate::sync::{MailboxGrid, SenseBarrier};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Locality, LookaheadKind, NodeId, Topology};

/// A simulated wire message: every protocol message reports its size
/// in bytes (for the paper's bandwidth metric) and its traffic class.
/// Messages cross shard threads, hence the `Send` bound.
pub trait Message: std::fmt::Debug + Send {
    /// Modelled serialized size in bytes.
    fn wire_size(&self) -> u32;
    /// Classification for traffic accounting.
    fn class(&self) -> TrafficClass;
}

/// What a node can observe.
#[derive(Debug)]
pub enum Event<M> {
    /// A message arrived from `from`.
    Recv {
        /// Sender of the message.
        from: NodeId,
        /// The message payload.
        msg: M,
    },
    /// A timer armed with [`Ctx::set_timer`] fired.
    Timer {
        /// Application-defined timer kind.
        kind: u16,
        /// Application-defined payload for the timer.
        tag: u64,
    },
    /// A message previously sent to `to` could not be delivered
    /// because `to` is down. Arrives one round-trip after the send.
    Undeliverable {
        /// The unreachable destination.
        to: NodeId,
        /// The original message.
        msg: M,
    },
    /// This node was revived after a churn-induced failure. State was
    /// NOT cleared automatically; the protocol decides what survives a
    /// restart (the paper: a revived peer rejoins as a new client).
    NodeUp,
}

/// A protocol state machine bound to one simulated node. Nodes are
/// owned by exactly one shard but shards run on worker threads, hence
/// the `Send` bound.
pub trait Node<M: Message>: Send {
    /// Handle one event. Use `ctx` to send messages, arm timers and
    /// record metrics.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>);
}

/// Output actions buffered during an event handler.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to` (arrives after one link latency).
    Send {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Deliver `Event::Timer { kind, tag }` to self after `delay`.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Application-defined timer kind.
        kind: u16,
        /// Application-defined payload.
        tag: u64,
    },
}

/// The per-event execution context handed to [`Node::on_event`].
///
/// The action buffer is a persistent per-shard scratch vector lent to
/// the context for the duration of the handler — after warm-up no
/// event allocates on the delivery path, however many actions it
/// emits.
pub struct Ctx<'a, M> {
    now: SimTime,
    id: NodeId,
    topo: &'a Topology,
    rng: &'a mut StdRng,
    query_stats: &'a mut QueryStats,
    gauges: &'a mut GaugeSet,
    metrics: &'a mut MetricSet,
    out: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this event is executing on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the underlay.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Network locality of `n` (landmark measurement; §6.1).
    pub fn locality(&self, n: NodeId) -> Locality {
        self.topo.locality(n)
    }

    /// Number of localities `k`.
    pub fn num_localities(&self) -> usize {
        self.topo.num_localities()
    }

    /// Measured one-way latency between two nodes in milliseconds.
    /// Protocols use this for the transfer-distance metric and for
    /// latency-aware choices, mirroring the landmark-style probing the
    /// paper assumes peers can perform.
    pub fn latency_ms(&self, a: NodeId, b: NodeId) -> u64 {
        self.topo.latency_ms(a, b)
    }

    /// This node's private deterministic RNG stream, seeded from
    /// `(seed, node_id)` — independent of every other node's draws and
    /// of the shard layout.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send a message (delivered after one link latency).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(Action::Send { to, msg });
    }

    /// Arm a timer on this node.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u16, tag: u64) {
        self.out.push(Action::Timer { delay, kind, tag });
    }

    /// The paper's query metrics sink. Record-only by construction
    /// ([`QuerySink`]): the engine keeps one accumulator per shard and
    /// merges them at read time, so letting a protocol read partial
    /// metrics back would make behaviour depend on the shard layout —
    /// the facade makes that a compile error rather than a doc rule.
    pub fn query_stats(&mut self) -> QuerySink<'_> {
        QuerySink {
            stats: self.query_stats,
        }
    }

    /// The static metric registry's recording facade. Like
    /// [`Ctx::query_stats`], record-only by construction
    /// ([`MetricSink`]): each shard owns private metric cells merged
    /// at read time, so reading partial values back from a handler
    /// would make behaviour depend on the shard layout.
    pub fn metrics(&mut self) -> MetricSink<'_> {
        MetricSink::new(self.metrics)
    }

    /// Record an application gauge sample (e.g. participant count,
    /// server load) into a named windowed series.
    ///
    /// Values must be integer-valued: per-shard window sums are merged
    /// at read time, and only exactly-representable additions keep the
    /// merged totals bit-identical across shard layouts.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        debug_assert!(
            value == value.trunc() && value.abs() <= 9_007_199_254_740_992.0,
            "gauge values must be integer-valued (≤2^53) so per-shard window \
             sums merge exactly across shard layouts; got {value}"
        );
        self.gauges.record(self.now, name, value);
    }
}

/// Record-only facade over a shard's [`QueryStats`], handed out by
/// [`Ctx::query_stats`]. Exposes exactly the recording entry points —
/// no read access, so protocol behaviour cannot depend on a shard's
/// partial view of the merged metrics.
pub struct QuerySink<'a> {
    stats: &'a mut QueryStats,
}

impl QuerySink<'_> {
    /// Note a query submission.
    pub fn on_submit(&mut self) {
        self.stats.on_submit();
    }

    /// Record a resolved query (see [`QueryStats::on_resolved`]).
    pub fn on_resolved(
        &mut self,
        at: SimTime,
        node: NodeId,
        lookup_ms: u64,
        transfer_ms: u64,
        served_by: crate::stats::ServedBy,
    ) {
        self.stats
            .on_resolved(at, node, lookup_ms, transfer_ms, served_by);
    }

    /// Note a redirection failure (stale directory entry; Sec. 5.1).
    pub fn on_redirection_failure(&mut self) {
        self.stats.on_redirection_failure();
    }
}

/// Named application-level time series (gauges).
#[derive(Clone, Debug, Default)]
pub struct GaugeSet {
    window: SimDuration,
    series: std::collections::HashMap<&'static str, TimeSeries>,
}

impl GaugeSet {
    fn new(window: SimDuration) -> Self {
        GaugeSet {
            window,
            series: Default::default(),
        }
    }

    fn record(&mut self, at: SimTime, name: &'static str, value: f64) {
        let window = self.window;
        self.series
            .entry(name)
            .or_insert_with(|| TimeSeries::new(window))
            .record(at, value);
    }

    /// Fetch a gauge series by name.
    pub fn get(&self, name: &'static str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Fold another shard's gauges into this one (per-name series
    /// merge; commutative, so the shard iteration order is
    /// irrelevant).
    pub fn merge_from(&mut self, other: &GaugeSet) {
        for (name, series) in &other.series {
            match self.series.entry(name) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_from(series)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(series.clone());
                }
            }
        }
    }
}

/// The per-node RNG stream id: a SplitMix64-style mix of the master
/// seed and the node id. Every node draws from an independent
/// deterministic stream, so its randomness does not depend on the
/// event interleaving with other nodes (or on the shard layout).
pub fn node_stream_seed(seed: u64, node: NodeId) -> u64 {
    let mut z = seed ^ (node.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// External injections use source stream 0 of the [`EventKey`] space;
/// node `n` emits on stream `n + 1`.
const EXTERNAL_STREAM: u64 = 0;

/// The matrix mode's per-round bound coefficients, from the raw
/// pair-lookahead matrix `l` (row-major `k × k`, `u64::MAX` diagonal).
///
/// `reach[m][i]` lower-bounds how long after shard `m`'s earliest
/// pending event *anything* could become due at shard `i` that is not
/// already in `i`'s queue: an event of `m` at time `t` can trigger an
/// emission chain `m → … → j → i` whose hops each cost at least the
/// pair lookahead (handlers emit at the instant of receipt, so relay
/// delay lower-bounds at zero). Formally
/// `reach[m][i] = min over j ≠ i of (dist(m, j) + l[j][i])` with
/// `dist` the min-plus shortest path over `l` (`dist(m, m) = 0`).
///
/// The `j ≠ i` exclusion makes the diagonal the *round-trip* term
/// `reach[i][i] = min_j (dist(i, j) + l[j][i])`: shard `i`'s own
/// events can reflect off a peer and come back, so `i` may never
/// outrun its own emissions by more than a round trip — the
/// self-reflection a naive `min over peers of (next_j + l[j][i])`
/// bound misses (an idle peer would then constrain nobody, yet a
/// message sent to it this round can wake it and draw a reply).
fn reachability_bounds(l: &[u64], k: usize) -> Vec<u64> {
    // Progress guarantee: every off-diagonal pair lookahead is ≥ 1 ms
    // (shard pairs are cross-locality by construction, and the
    // topology's cross floor clamps to at least 1 ms), so every reach
    // entry is ≥ 1 ms and a matrix-mode bound always lies strictly
    // beyond the global minimum — no barrier round can spin without
    // processing anything.
    debug_assert!(
        (0..k).all(|a| (0..k).all(|b| a == b || l[a * k + b] >= 1)),
        "pair lookaheads must be positive for the barrier to progress"
    );
    // Min-plus all-pairs shortest path over the pair lookaheads.
    let mut dist = vec![u64::MAX; k * k];
    for m in 0..k {
        dist[m * k + m] = 0;
        for j in 0..k {
            if m != j {
                dist[m * k + j] = l[m * k + j];
            }
        }
    }
    for via in 0..k {
        for a in 0..k {
            for b in 0..k {
                let d = dist[a * k + via].saturating_add(dist[via * k + b]);
                if d < dist[a * k + b] {
                    dist[a * k + b] = d;
                }
            }
        }
    }
    let mut reach = vec![u64::MAX; k * k];
    for m in 0..k {
        for i in 0..k {
            for j in 0..k {
                if j == i {
                    continue;
                }
                let r = dist[m * k + j].saturating_add(l[j * k + i]);
                if r < reach[m * k + i] {
                    reach[m * k + i] = r;
                }
            }
        }
    }
    reach
}

/// Global node id → `(owning shard, dense local index)`, packed into
/// one `u64` per node (shard in the high half, local index in the
/// low). The engine's hot path resolves both halves for nearly every
/// event — `route` needs the shard, `deliver`/`emit_key` the local
/// index — so packing them touches one cache line per node instead of
/// two parallel tables.
struct Placement {
    packed: Vec<u64>,
}

impl Placement {
    fn new(n: usize) -> Self {
        Placement { packed: vec![0; n] }
    }

    fn set(&mut self, node: NodeId, shard: usize, local: u32) {
        self.packed[node.idx()] = ((shard as u64) << 32) | local as u64;
    }

    #[inline]
    fn shard(&self, node: NodeId) -> usize {
        (self.packed[node.idx()] >> 32) as usize
    }

    #[inline]
    fn local(&self, node: NodeId) -> usize {
        (self.packed[node.idx()] & 0xFFFF_FFFF) as usize
    }
}

/// Full-population liveness map, one bit per node. Replicated on every
/// shard (kept in sync by the broadcast churn events), so at 100k+
/// nodes the packed form keeps each replica at ~12 KB of cache
/// footprint instead of 100 KB for a `Vec<bool>`.
#[derive(Clone)]
struct Liveness {
    words: Vec<u64>,
}

impl Liveness {
    fn all_up(n: usize) -> Self {
        Liveness {
            words: vec![u64::MAX; n.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, node: NodeId) -> bool {
        let i = node.idx();
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    fn set(&mut self, node: NodeId, up: bool) {
        let i = node.idx();
        if up {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }
}

/// Struct-of-arrays slab of a shard's hot per-node state, indexed by
/// the dense local index ([`Placement::local`]). Keeping each field in
/// its own contiguous array means an event touches only the arrays it
/// needs — an emission counter bump does not pull the node's RNG
/// state into cache alongside it.
struct NodeSlab {
    /// Per-node deterministic RNG streams
    /// (`StdRng::seed_from_u64(node_stream_seed(seed, node))`).
    rngs: Vec<StdRng>,
    /// Per-node emission counters — sequence numbers of the node's
    /// [`EventKey`] stream.
    emit_seq: Vec<u64>,
}

impl NodeSlab {
    fn with_capacity(c: usize) -> Self {
        NodeSlab {
            rngs: Vec::with_capacity(c),
            emit_seq: Vec::with_capacity(c),
        }
    }

    fn push(&mut self, rng: StdRng) {
        self.rngs.push(rng);
        self.emit_seq.push(0);
    }

    /// The next sequence number on local node `li`'s emission stream.
    #[inline]
    fn next_seq(&mut self, li: usize) -> u64 {
        let seq = self.emit_seq[li];
        self.emit_seq[li] += 1;
        seq
    }
}

/// A keyed event staged for another shard (one entry of an
/// outbox/inbox batch exchanged at the epoch barrier).
type Staged<M> = (EventKey, Pending<M>);

/// How a shard's epoch loop hands events to [`Node::on_event`].
///
/// Both modes process events in exactly the same [`EventKey`] order —
/// batching only changes how much per-event engine overhead
/// (placement resolution, liveness check, dispatch match) is paid —
/// so results are bit-identical; `tests/batch_parity.rs` holds the
/// engine to that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Deliver consecutive same-destination queue heads as one batch:
    /// the destination's placement and liveness are resolved once and
    /// the dispatch loop stays in the node's state until the head
    /// changes destination. Simulation workloads are bursty per node
    /// (a gossip round, a query fan-in), so batches are common. The
    /// continuation check peeks at the *live* queue head each step —
    /// an event emitted by the batch itself that sorts before the
    /// remaining entries is picked up (or ends the batch) exactly as
    /// the one-at-a-time loop would.
    #[default]
    Batched,
    /// Pop and fully dispatch one event at a time — the reference
    /// path, kept for A/B parity tests and the dispatch micro bench.
    Single,
}

/// Internal queue payload.
#[derive(Debug)]
enum Pending<M> {
    App {
        dst: NodeId,
        ev: Event<M>,
    },
    /// Traffic-accounted message in flight (recorded at send time;
    /// this wrapper only exists to detect dead destinations at
    /// delivery time).
    Wire {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    ChurnDown(NodeId),
    ChurnUp(NodeId),
}

/// One locality shard: a slice of the node population with its own
/// queue, clock, RNG streams and statistics.
struct Shard<M: Message, N: Node<M>> {
    /// Index of this shard.
    id: usize,
    /// Protocol nodes owned by this shard, densely packed; the
    /// engine's [`Placement`] maps global node ids into this vector.
    nodes: Vec<N>,
    /// Hot per-node engine state (RNG streams, emission counters),
    /// parallel to `nodes` as struct-of-arrays.
    slab: NodeSlab,
    /// Full-population liveness bitmap, replicated on every shard and
    /// kept in sync by the broadcast churn events.
    up: Liveness,
    queue: EventQueue<Pending<M>>,
    now: SimTime,
    /// Dense per-owned-node traffic rows; folded into a global
    /// [`Traffic`] view at read time ([`Traffic::absorb_shard`]).
    traffic: ShardTraffic,
    query_stats: QueryStats,
    gauges: GaugeSet,
    /// Reusable action buffer lent to [`Ctx`] for each handler call;
    /// drained (capacity kept) after every event.
    scratch: Vec<Action<M>>,
    delivery: DeliveryMode,
    /// This shard's private cells of the static metric registry:
    /// engine counters (events dispatched, per-class receives,
    /// timers, bounces, epoch/fused rounds, barrier idle) plus
    /// whatever the protocol records through [`Ctx::metrics`]. What
    /// used to be loose `u64` fields here (`events_processed`,
    /// `epochs`, `fused`, `barrier_idle`) now lives in these cells;
    /// the engine accessors read them back out of the merge.
    metrics: MetricSet,
    /// The installed fault script, replicated on every shard (like the
    /// liveness map) so cut/loss decisions never read another shard's
    /// state. `None` (the default) short-circuits every check.
    fault: Option<std::sync::Arc<crate::fault::FaultPlane>>,
}

/// Per-traffic-class receive counters, indexed by
/// [`TrafficClass::index`] — declaration order of both sides is
/// pinned by a test below.
const RECV_COUNTER: [Counter; 7] = [
    Counter::RecvGossip,
    Counter::RecvPush,
    Counter::RecvKeepAlive,
    Counter::RecvDhtRouting,
    Counter::RecvDhtMaintenance,
    Counter::RecvQueryControl,
    Counter::RecvTransfer,
];

/// Per-traffic-class send counters, mirror of [`RECV_COUNTER`].
const SENT_COUNTER: [Counter; 7] = [
    Counter::SentGossip,
    Counter::SentPush,
    Counter::SentKeepAlive,
    Counter::SentDhtRouting,
    Counter::SentDhtMaintenance,
    Counter::SentQueryControl,
    Counter::SentTransfer,
];

/// Per-traffic-class undelivered-drop counters (fault cuts, link
/// loss, dead senders), mirror of [`RECV_COUNTER`]. Together with
/// [`BOUNCE_COUNTER`] these close the per-class message ledger the CI
/// gate checks: `recv + bounce + drop ≤ sent` (strict equality is
/// impossible — messages still in flight at the horizon are neither).
const DROP_COUNTER: [Counter; 7] = [
    Counter::DropGossip,
    Counter::DropPush,
    Counter::DropKeepAlive,
    Counter::DropDhtRouting,
    Counter::DropDhtMaintenance,
    Counter::DropQueryControl,
    Counter::DropTransfer,
];

/// Per-traffic-class bounce counters, mirror of [`RECV_COUNTER`].
/// Sums to [`Counter::EngineBounces`] exactly.
const BOUNCE_COUNTER: [Counter; 7] = [
    Counter::BounceGossip,
    Counter::BouncePush,
    Counter::BounceKeepAlive,
    Counter::BounceDhtRouting,
    Counter::BounceDhtMaintenance,
    Counter::BounceQueryControl,
    Counter::BounceTransfer,
];

impl<M: Message, N: Node<M>> Shard<M, N> {
    /// Does the installed fault plane cut a wire message from `from`
    /// to `to` delivered at `at`? A pure function of `(at, sender
    /// locality, destination locality, static script)` — evaluated
    /// identically on every shard layout.
    #[inline]
    fn fault_cut(&self, at: SimTime, from: NodeId, to: NodeId, topo: &Topology) -> bool {
        match &self.fault {
            Some(f) => f.cuts(at, topo.locality(from), topo.locality(to)),
            None => false,
        }
    }

    /// The next key on this node's emission stream, at time `at`.
    fn emit_key(&mut self, at: SimTime, emitter: NodeId, place: &Placement) -> EventKey {
        let seq = self.slab.next_seq(place.local(emitter));
        EventKey {
            at,
            src: emitter.0 as u64 + 1,
            seq,
        }
    }

    /// Enqueue locally or stage for the barrier exchange.
    fn route(
        &mut self,
        target: usize,
        key: EventKey,
        p: Pending<M>,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        if target == self.id {
            self.queue.push(key, p);
        } else {
            outbox[target].push((key, p));
        }
    }

    /// Process every queued event with `key.at < limit`, in key order.
    ///
    /// In [`DeliveryMode::Batched`] the loop peels deliverable events
    /// off into per-destination batches ([`Shard::deliver_batch`]);
    /// everything else — churn, drops, bounces — takes the one-event
    /// [`Shard::dispatch`] path. The pop order is identical in both
    /// modes.
    fn run_epoch(
        &mut self,
        limit: SimTime,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        let batched = self.delivery == DeliveryMode::Batched;
        while let Some((key, payload)) = self.queue.pop_if_before(limit) {
            debug_assert!(key.at >= self.now, "time went backwards");
            self.now = key.at;
            if batched {
                match payload {
                    Pending::App { dst, ev } if self.up.get(dst) => {
                        self.deliver_batch(dst, ev, limit, topo, place, outbox);
                        continue;
                    }
                    // A fault-cut message fails the guard and falls
                    // through to `dispatch`, which counts the drop —
                    // the only place that does, in both modes.
                    Pending::Wire { from, to, msg }
                        if self.up.get(to) && !self.fault_cut(self.now, from, to, topo) =>
                    {
                        let class = msg.class();
                        self.traffic
                            .record_recv(place.local(to), class, msg.wire_size());
                        self.metrics.incr(RECV_COUNTER[class.index()]);
                        self.deliver_batch(
                            to,
                            Event::Recv { from, msg },
                            limit,
                            topo,
                            place,
                            outbox,
                        );
                        continue;
                    }
                    other => self.dispatch(other, topo, place, outbox),
                }
            } else {
                self.dispatch(payload, topo, place, outbox);
            }
        }
    }

    /// As [`Shard::run_epoch`], but stop right after the first event
    /// that stages cross-shard mail. This is the *fused solo round*
    /// of the sharded engine: when every other shard is idle up to
    /// its bound, the one working shard may run far past its normal
    /// conservative bound — all the way to the earliest instant the
    /// *others'* queued events could reach it — because the only
    /// remaining causality hazard is a reply drawn out by this
    /// shard's own emissions, and stopping at the first emission
    /// closes exactly that hole (a reply to mail emitted at `t`
    /// arrives at `t + round-trip`, and nothing after `t` has been
    /// processed).
    fn run_epoch_until_cross(
        &mut self,
        limit: SimTime,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        while let Some((key, payload)) = self.queue.pop_if_before(limit) {
            debug_assert!(key.at >= self.now, "time went backwards");
            self.now = key.at;
            self.dispatch(payload, topo, place, outbox);
            if outbox.iter().any(|b| !b.is_empty()) {
                break;
            }
        }
    }

    fn dispatch(
        &mut self,
        p: Pending<M>,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        match p {
            Pending::ChurnDown(n) => {
                self.up.set(n, false);
            }
            Pending::ChurnUp(n) => {
                self.up.set(n, true);
                // Churn events are broadcast to keep every shard's
                // liveness map current; only the owner delivers.
                if place.shard(n) == self.id {
                    self.deliver(n, Event::NodeUp, topo, place, outbox);
                }
            }
            Pending::App { dst, ev } => {
                if self.up.get(dst) {
                    self.deliver(dst, ev, topo, place, outbox);
                }
                // Events to down nodes are dropped: timers die with the
                // node; externally injected events are lost, like a user
                // whose machine is off.
            }
            Pending::Wire { from, to, msg } => {
                if self.fault_cut(self.now, from, to, topo) {
                    // Partition cut: dropped *silently* — a severed
                    // network gives the sender no connection-refused
                    // signal, unlike a dead destination. This is what
                    // forces the protocol's query timeouts.
                    self.metrics.incr(Counter::EngineFaultDrops);
                    self.metrics.incr(DROP_COUNTER[msg.class().index()]);
                } else if self.up.get(to) {
                    let class = msg.class();
                    self.traffic
                        .record_recv(place.local(to), class, msg.wire_size());
                    self.metrics.incr(RECV_COUNTER[class.index()]);
                    self.deliver(to, Event::Recv { from, msg }, topo, place, outbox);
                } else if self.up.get(from) {
                    // Bounce: the sender learns after one more one-way
                    // latency (connection refused round trip). The
                    // bounce is emitted on the dead destination's
                    // stream — its shard processes the wire event, so
                    // the counter stays deterministic.
                    self.metrics.incr(Counter::EngineBounces);
                    self.metrics.incr(BOUNCE_COUNTER[msg.class().index()]);
                    let back = topo.latency(to, from);
                    let key = self.emit_key(self.now + back, to, place);
                    self.route(
                        place.shard(from),
                        key,
                        Pending::App {
                            dst: from,
                            ev: Event::Undeliverable { to, msg },
                        },
                        outbox,
                    );
                } else {
                    // Dead sender, dead destination: nobody to notify.
                    self.metrics.incr(DROP_COUNTER[msg.class().index()]);
                }
            }
        }
    }

    /// Deliver one event to `dst` (known up): run the handler against
    /// the shard's scratch action buffer, then flush the actions.
    fn deliver(
        &mut self,
        dst: NodeId,
        ev: Event<M>,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        self.metrics.incr(Counter::EngineEvents);
        if matches!(ev, Event::Timer { .. }) {
            self.metrics.incr(Counter::EngineTimers);
        }
        let li = place.local(dst);
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.is_empty());
        let mut ctx = Ctx {
            now: self.now,
            id: dst,
            topo,
            rng: &mut self.slab.rngs[li],
            query_stats: &mut self.query_stats,
            gauges: &mut self.gauges,
            metrics: &mut self.metrics,
            out: &mut scratch,
        };
        self.nodes[li].on_event(&mut ctx, ev);
        self.flush_actions(dst, li, &mut scratch, topo, place, outbox);
        self.scratch = scratch;
    }

    /// Deliver `first_ev` to `dst` (known up) and keep going while the
    /// live queue head is another deliverable event for the same
    /// destination within `limit`. Placement and liveness are resolved
    /// once for the whole batch: nothing a handler can do
    /// ([`Action::Send`]/[`Action::Timer`]) changes liveness, and the
    /// churn events that do are broadcast through the queue, where
    /// they end the batch like any other head for a different target.
    fn deliver_batch(
        &mut self,
        dst: NodeId,
        first_ev: Event<M>,
        limit: SimTime,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        let li = place.local(dst);
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.is_empty());
        let mut ev = first_ev;
        loop {
            self.metrics.incr(Counter::EngineEvents);
            if matches!(ev, Event::Timer { .. }) {
                self.metrics.incr(Counter::EngineTimers);
            }
            let mut ctx = Ctx {
                now: self.now,
                id: dst,
                topo,
                rng: &mut self.slab.rngs[li],
                query_stats: &mut self.query_stats,
                gauges: &mut self.gauges,
                metrics: &mut self.metrics,
                out: &mut scratch,
            };
            self.nodes[li].on_event(&mut ctx, ev);
            self.flush_actions(dst, li, &mut scratch, topo, place, outbox);
            // Continue only on the *current* head — it may be an event
            // this very batch just emitted (same-instant self-sends
            // sort by seq), which is exactly what the one-at-a-time
            // loop would pop next.
            match self.queue.peek() {
                Some((at, p)) if at < limit => match p {
                    Pending::App { dst: d, .. } if *d == dst => {}
                    // A fault-cut head ends the batch so the one-event
                    // dispatch path pops it and counts the drop.
                    Pending::Wire { from, to, .. }
                        if *to == dst && !self.fault_cut(at, *from, *to, topo) => {}
                    _ => break,
                },
                _ => break,
            }
            let (key, payload) = self.queue.pop().expect("head just peeked");
            debug_assert!(key.at >= self.now, "time went backwards");
            self.now = key.at;
            ev = match payload {
                Pending::App { ev, .. } => ev,
                Pending::Wire { from, msg, .. } => {
                    let class = msg.class();
                    self.traffic.record_recv(li, class, msg.wire_size());
                    self.metrics.incr(RECV_COUNTER[class.index()]);
                    Event::Recv { from, msg }
                }
                _ => unreachable!("continuation is App/Wire by the peek above"),
            };
        }
        self.scratch = scratch;
    }

    /// Turn the actions a handler buffered into queued/staged events
    /// and traffic records. `dst`/`li` identify the emitting node.
    #[inline]
    fn flush_actions(
        &mut self,
        dst: NodeId,
        li: usize,
        scratch: &mut Vec<Action<M>>,
        topo: &Topology,
        place: &Placement,
        outbox: &mut [Vec<Staged<M>>],
    ) {
        for a in scratch.drain(..) {
            match a {
                Action::Send { to, msg } => {
                    let class = msg.class();
                    self.traffic
                        .record_sent(self.now, li, class, msg.wire_size());
                    self.metrics.incr(SENT_COUNTER[class.index()]);
                    // Link loss: the coin is flipped at send time from
                    // the *emitter's* RNG stream — the same stream on
                    // every shard layout — and only when a loss window
                    // actually applies, so an inactive plane consumes
                    // no randomness and perturbs nothing.
                    if let Some(f) = &self.fault {
                        let crosses = topo.locality(dst) != topo.locality(to);
                        if let Some(p) = f.loss_probability(self.now, crosses) {
                            let u: f64 = self.slab.rngs[li].gen_range(0.0..1.0);
                            if u < p {
                                self.metrics.incr(Counter::EngineFaultDrops);
                                self.metrics.incr(DROP_COUNTER[class.index()]);
                                continue;
                            }
                        }
                    }
                    let lat = topo.latency(dst, to);
                    let key = self.emit_key(self.now + lat, dst, place);
                    self.route(
                        place.shard(to),
                        key,
                        Pending::Wire { from: dst, to, msg },
                        outbox,
                    );
                }
                Action::Timer { delay, kind, tag } => {
                    let key = self.emit_key(self.now + delay, dst, place);
                    self.queue.push(
                        key,
                        Pending::App {
                            dst,
                            ev: Event::Timer { kind, tag },
                        },
                    );
                }
            }
        }
    }
}

/// Statistics accumulators merged across shards, cached between runs.
struct Merged {
    traffic: Traffic,
    query_stats: QueryStats,
    gauges: GaugeSet,
    metrics: MetricSet,
}

/// The simulation driver.
///
/// Owns the topology, all protocol nodes (partitioned into locality
/// shards), the event queues, the clocks, the per-node RNG streams and
/// all statistics. See the crate docs for an end-to-end example and
/// the module docs for the sharded execution model.
pub struct Engine<M: Message, N: Node<M>> {
    topo: std::sync::Arc<Topology>,
    shards: Vec<Shard<M, N>>,
    /// Global node id → (owning shard, local index), packed.
    place: Placement,
    /// Epoch length for the conservative barrier (the global floor).
    lookahead: SimDuration,
    /// How epoch bounds are derived ([`TopologyConfig::lookahead`]).
    ///
    /// [`TopologyConfig::lookahead`]: crate::topology::TopologyConfig::lookahead
    lookahead_kind: LookaheadKind,
    /// Per-shard-pair lookahead matrix (ms), row-major `K × K`: entry
    /// `[from · K + to]` lower-bounds the latency of any message from
    /// shard `from` to shard `to` ([`Topology::shard_lookahead_ms`]);
    /// `u64::MAX` on the diagonal.
    pair_lookahead_ms: Vec<u64>,
    /// Matrix-mode bound coefficients derived from the pair
    /// lookaheads ([`reachability_bounds`]): `[m · K + i]` is how long
    /// after shard `m`'s earliest event anything new could become due
    /// at shard `i`, through any emission chain.
    reach_ms: Vec<u64>,
    now: SimTime,
    /// Counter of the external injection stream (stream 0).
    ext_seq: u64,
    /// Whether shard worker threads pin themselves to the cores in
    /// `core_map` ([`TopologyConfig::pin`]); a wall-clock knob with
    /// no effect on results.
    ///
    /// [`TopologyConfig::pin`]: crate::topology::TopologyConfig::pin
    pin: bool,
    /// Latency-aware shard → logical-core map
    /// ([`crate::affinity::place_shards`] over the pair-lookahead
    /// matrix): chattiest shard pairs on adjacent cores, round-robin
    /// when the host has fewer cores than shards. Applied only when
    /// `pin` is set.
    core_map: Vec<usize>,
    /// Lazily merged statistics, invalidated by every run/schedule.
    merged: std::cell::OnceCell<Merged>,
}

impl<M: Message, N: Node<M>> Engine<M, N> {
    /// Build a single-shard engine over `topo` with one protocol node
    /// per underlay node and a 30-minute metric window (the paper's
    /// plots).
    pub fn new(topo: Topology, nodes: Vec<N>, seed: u64) -> Self {
        Self::with_shards(topo, nodes, seed, SimDuration::from_mins(30), 1)
    }

    /// As [`Engine::new`] with an explicit series window.
    pub fn with_window(topo: Topology, nodes: Vec<N>, seed: u64, window: SimDuration) -> Self {
        Self::with_shards(topo, nodes, seed, window, 1)
    }

    /// Build an engine partitioned into (up to) `shards` locality
    /// shards. Results are bit-identical for every value of `shards`;
    /// values above the number of localities are clamped. Each shard's
    /// event queue runs on the backend the topology selects
    /// ([`crate::topology::TopologyConfig::event_queue`]) — also
    /// result-neutral, see [`crate::event`].
    pub fn with_shards(
        topo: Topology,
        nodes: Vec<N>,
        seed: u64,
        window: SimDuration,
        shards: usize,
    ) -> Self {
        assert_eq!(
            topo.num_nodes(),
            nodes.len(),
            "one protocol node per underlay node"
        );
        assert!(shards >= 1, "need at least one shard");
        let n = nodes.len();
        let k = shards.min(topo.num_localities());
        let loc_shard = topo.shard_map(k);
        let lookahead = topo.cross_locality_lookahead();
        let pair_lookahead_ms = topo.shard_lookahead_ms(&loc_shard, k);
        let reach_ms = reachability_bounds(&pair_lookahead_ms, k);

        let mut place = Placement::new(n);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for node in topo.node_ids() {
            let s = loc_shard[topo.locality(node).idx()];
            place.set(node, s, members[s].len() as u32);
            members[s].push(node);
        }
        let member_count: Vec<usize> = members.iter().map(Vec::len).collect();

        // Distribute node state and RNG streams, in global id order so
        // the local indices assigned above line up.
        let mut slots: Vec<Vec<N>> = member_count
            .iter()
            .map(|c| Vec::with_capacity(*c))
            .collect();
        let mut slabs: Vec<NodeSlab> = member_count
            .iter()
            .map(|c| NodeSlab::with_capacity(*c))
            .collect();
        for (i, state) in nodes.into_iter().enumerate() {
            let node = NodeId(i as u32);
            let s = place.shard(node);
            slots[s].push(state);
            slabs[s].push(StdRng::seed_from_u64(node_stream_seed(seed, node)));
        }

        let queue_kind = topo.event_queue();
        let shards_vec = slots
            .into_iter()
            .zip(slabs)
            .zip(members)
            .enumerate()
            .map(|(id, ((nodes, slab), members))| Shard {
                id,
                nodes,
                slab,
                up: Liveness::all_up(n),
                queue: EventQueue::with_kind(queue_kind),
                now: SimTime::ZERO,
                traffic: ShardTraffic::new(members, window),
                query_stats: QueryStats::new(window),
                gauges: GaugeSet::new(window),
                scratch: Vec::new(),
                delivery: DeliveryMode::default(),
                metrics: MetricSet::new(),
                fault: None,
            })
            .collect();

        let core_map = crate::affinity::place_shards(
            &pair_lookahead_ms,
            k,
            crate::affinity::available_cores(),
        );
        Engine {
            lookahead_kind: topo.lookahead_kind(),
            pin: topo.pin_threads(),
            topo: std::sync::Arc::new(topo),
            shards: shards_vec,
            place,
            lookahead,
            pair_lookahead_ms,
            reach_ms,
            now: SimTime::ZERO,
            ext_seq: 0,
            core_map,
            merged: std::cell::OnceCell::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of shards the engine actually runs (the requested count
    /// clamped to the number of localities).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The epoch length of the conservative barrier — the global
    /// cross-locality floor. In [`LookaheadKind::Matrix`] mode this is
    /// the worst-case bound; the per-pair matrix entries are at least
    /// this large.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// How epoch bounds are derived (matrix or global floor).
    pub fn lookahead_kind(&self) -> LookaheadKind {
        self.lookahead_kind
    }

    /// The per-shard-pair lookahead (ms) from shard `from` to shard
    /// `to` (`u64::MAX` when `from == to`).
    pub fn pair_lookahead_ms(&self, from: usize, to: usize) -> u64 {
        self.pair_lookahead_ms[from * self.shards.len() + to]
    }

    /// Barrier rounds (epochs) executed so far. 0 on single-shard
    /// runs, which have no barrier. The adaptive lookahead matrix
    /// exists to shrink this number — fewer, longer epochs mean less
    /// synchronization per simulated second — and fused solo rounds
    /// ([`Engine::fused_rounds`]) shrink it further by letting a lone
    /// working shard cover many windows in one round.
    pub fn epochs(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.metrics.counter(Counter::EngineEpochs))
            .max()
            .unwrap_or(0)
    }

    /// How many of the [`Engine::epochs`] were *fused solo rounds*:
    /// rounds in which exactly one shard had any event below its
    /// conservative bound, so it alone ran ahead — to the earliest
    /// instant the other shards' queued events could reach it,
    /// stopping at its first cross-shard emission — while the rest
    /// skipped the round entirely. Identical across shards, like the
    /// epoch count itself.
    pub fn fused_rounds(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.metrics.counter(Counter::EngineFusedRounds))
            .max()
            .unwrap_or(0)
    }

    /// Per-shard wall-clock seconds spent waiting at the epoch
    /// barrier (load imbalance + synchronization overhead), indexed
    /// by shard id. All zeros on single-shard runs and before the
    /// first sharded run.
    pub fn barrier_idle_secs(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| s.metrics.counter(Counter::EngineBarrierIdleNs) as f64 / 1e9)
            .collect()
    }

    /// Whether sharded runs pin worker threads to
    /// [`Engine::core_map`] (from
    /// [`TopologyConfig::pin`](crate::topology::TopologyConfig::pin);
    /// single-shard runs never pin — they execute on the caller's
    /// thread, whose affinity is not the engine's to change).
    pub fn pin_threads(&self) -> bool {
        self.pin
    }

    /// The latency-aware shard → logical-core map (chattiest pairs
    /// adjacent, round-robin beyond the core count); applied by
    /// sharded runs when [`Engine::pin_threads`] is set.
    pub fn core_map(&self) -> &[usize] {
        &self.core_map
    }

    /// Override the shard → core map (and optionally the pin flag)
    /// before a run — placement is a wall-clock knob, so any map must
    /// produce bit-identical results; the placement-invariance test
    /// in `tests/shard_parity.rs` holds the engine to that.
    pub fn set_placement(&mut self, core_map: Vec<usize>, pin: bool) {
        assert_eq!(core_map.len(), self.shards.len(), "one core per shard");
        self.core_map = core_map;
        self.pin = pin;
    }

    /// The event-queue backend the shards run on.
    pub fn queue_kind(&self) -> crate::event::EventQueueKind {
        self.shards[0].queue.kind()
    }

    /// How events are handed to `Node::on_event` (default
    /// [`DeliveryMode::Batched`]). Result-neutral by design — the
    /// parity suite drives both modes against each other.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.shards[0].delivery
    }

    /// Switch the delivery mode (see [`DeliveryMode`]); takes effect
    /// from the next `run_until`.
    pub fn set_delivery_mode(&mut self, mode: DeliveryMode) {
        for s in &mut self.shards {
            s.delivery = mode;
        }
    }

    /// Immutable access to a protocol node (inspection in tests and
    /// harnesses).
    pub fn node(&self, n: NodeId) -> &N {
        &self.shards[self.place.shard(n)].nodes[self.place.local(n)]
    }

    /// Mutable access to a protocol node (setup in harnesses).
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.shards[self.place.shard(n)].nodes[self.place.local(n)]
    }

    /// Whether `n` is currently up.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.shards[self.place.shard(n)].up.get(n)
    }

    /// Traffic accounting (merged across shards).
    pub fn traffic(&self) -> &Traffic {
        &self.merged().traffic
    }

    /// Query metrics (merged across shards).
    pub fn query_stats(&self) -> &QueryStats {
        &self.merged().query_stats
    }

    /// Application gauges (merged across shards).
    pub fn gauges(&self) -> &GaugeSet {
        &self.merged().gauges
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.metrics.counter(Counter::EngineEvents))
            .sum()
    }

    /// The static metric registry, merged across shards in shard
    /// order, with the engine-level execution gauges (peak queue
    /// depth, worst-shard barrier idle) written in. `Scope::Sim`
    /// cells are bit-identical for every shard layout; `Scope::Exec`
    /// cells describe this run's execution.
    pub fn metrics(&self) -> &MetricSet {
        &self.merged().metrics
    }

    /// High-water mark of any shard's event-queue length (the "peak
    /// queue depth" benchmark metric).
    pub fn peak_queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queue.peak_len())
            .max()
            .unwrap_or(0)
    }

    fn merged(&self) -> &Merged {
        self.merged.get_or_init(|| {
            let first = &self.shards[0];
            let mut merged = Merged {
                traffic: Traffic::new(self.topo.num_nodes(), first.traffic.window()),
                query_stats: first.query_stats.clone(),
                gauges: first.gauges.clone(),
                metrics: first.metrics.clone(),
            };
            for s in &self.shards {
                merged.traffic.absorb_shard(&s.traffic);
            }
            for s in &self.shards[1..] {
                merged.query_stats.merge_from(&s.query_stats);
                merged.gauges.merge_from(&s.gauges);
                merged.metrics.merge_from(&s.metrics);
            }
            // Engine-level execution gauges, written at merge time:
            // high-water marks the shard loops track elsewhere.
            merged
                .metrics
                .gauge_max(Gauge::PeakQueueDepth, self.peak_queue_depth() as u64);
            let idle_max = self
                .shards
                .iter()
                .map(|s| s.metrics.counter(Counter::EngineBarrierIdleNs))
                .max()
                .unwrap_or(0);
            merged.metrics.gauge_max(Gauge::BarrierIdleMaxNs, idle_max);
            merged
        })
    }

    /// The next key on the external injection stream.
    fn ext_key(&mut self, at: SimTime) -> EventKey {
        let seq = self.ext_seq;
        self.ext_seq += 1;
        EventKey {
            at,
            src: EXTERNAL_STREAM,
            seq,
        }
    }

    /// Schedule an event for `node` at absolute time `at` (external
    /// injection: workload queries, test fixtures).
    pub fn schedule_at(&mut self, at: SimTime, node: NodeId, ev: Event<M>) {
        assert!(at >= self.now, "cannot schedule in the past");
        let key = self.ext_key(at);
        let s = self.place.shard(node);
        self.shards[s]
            .queue
            .push(key, Pending::App { dst: node, ev });
    }

    /// Schedule an event `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, node: NodeId, ev: Event<M>) {
        self.schedule_at(self.now + delay, node, ev);
    }

    /// Take `node` down at time `at` (messages to it bounce, its
    /// timers are swallowed). Broadcast to every shard so all liveness
    /// maps agree.
    pub fn schedule_down(&mut self, at: SimTime, node: NodeId) {
        let key = self.ext_key(at);
        for s in &mut self.shards {
            s.queue.push(key, Pending::ChurnDown(node));
        }
    }

    /// Bring `node` back up at time `at`; it receives
    /// [`Event::NodeUp`].
    pub fn schedule_up(&mut self, at: SimTime, node: NodeId) {
        let key = self.ext_key(at);
        for s in &mut self.shards {
            s.queue.push(key, Pending::ChurnUp(node));
        }
    }

    /// Install a [`FaultPlane`](crate::fault::FaultPlane): compile its
    /// regional failures into broadcast churn events (one `ext_key`
    /// per node transition, exactly like
    /// [`ChurnScript::install`](crate::churn::ChurnScript::install))
    /// and replicate the script onto every shard so the delivery path
    /// can consult it. Partitions and loss windows entirely in the
    /// past are harmless; regional failures must still be ahead of
    /// the clock (asserted by [`Engine::schedule_down`]'s key
    /// invariant).
    pub fn set_fault_plane(&mut self, plane: crate::fault::FaultPlane) {
        for r in plane.regional_failures() {
            let nodes = self.topo.nodes_in(r.locality);
            for (i, n) in nodes.into_iter().enumerate() {
                self.schedule_down(r.at, n);
                let back = r.recover_start + SimDuration::from_ms(r.stagger.as_ms() * i as u64);
                self.schedule_up(back, n);
            }
        }
        let plane = std::sync::Arc::new(plane);
        for s in &mut self.shards {
            s.fault = Some(std::sync::Arc::clone(&plane));
        }
        self.merged.take();
    }

    /// Run until the queues are exhausted or `deadline` is reached
    /// (events scheduled exactly at `deadline` are processed).
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start: u64 = self.events_processed();
        self.merged.take();
        // Exclusive bound: `at <= deadline` ⇔ `at < deadline + 1 ms`.
        let limit = deadline + SimDuration::from_ms(1);
        if self.shards.len() == 1 {
            let topo = &*self.topo;
            let place = &self.place;
            let shard = &mut self.shards[0];
            // Single shard: no epochs, no threads; every emission is
            // local, so the outbox stays empty.
            let mut outbox: Vec<Vec<Staged<M>>> = vec![Vec::new()];
            shard.run_epoch(limit, topo, place, &mut outbox);
            debug_assert!(outbox[0].is_empty());
            shard.now = shard.now.max(deadline);
        } else {
            self.run_sharded(deadline, limit);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed() - start
    }

    /// The parallel path: one worker thread per shard (pinned to
    /// [`Engine::core_map`] when [`Engine::pin_threads`] is set),
    /// cross-shard messages exchanged through a lock-free
    /// double-buffered [`MailboxGrid`] at a single sense-reversing
    /// barrier per round. Idle stretches are skipped by starting each
    /// epoch at the globally earliest pending event.
    ///
    /// Each round, every shard *publishes* — its earliest pending
    /// event time, plus the staged batches from the previous epoch
    /// and their earliest arrival time per receiver — then crosses
    /// the one barrier, drains its incoming mail, and derives the
    /// *effective next* of every shard:
    ///
    /// ```text
    /// eff[m] = min(published next of m,
    ///              min over senders i of i's min arrival into m)
    /// ```
    ///
    /// which is exactly shard `m`'s earliest pending event *after*
    /// absorbing the exchange — the same quantity the classic
    /// two-barrier loop (publish → barrier → run → exchange → barrier
    /// → absorb) reads at its first barrier. Bounds, epoch counts and
    /// results are therefore bit-identical to that loop; only the
    /// synchronization cost halves.
    ///
    /// Epoch bounds depend on [`LookaheadKind`]:
    ///
    /// * `GlobalFloor` — every shard runs the same epoch
    ///   `[min_eff, min_eff + global lookahead)`.
    /// * `Matrix` — shard `i` runs to
    ///   `min over shards m of (eff[m] + reach[m][i])`, with `reach`
    ///   the emission-chain closure of the exact pair lookaheads
    ///   ([`reachability_bounds`]): the earliest instant anything not
    ///   yet in `i`'s queue could become due at `i`, including replies
    ///   that `i`'s *own* emissions may draw out of a currently idle
    ///   peer (the `m = i` round-trip term). A fully idle peer
    ///   constrains nobody on its own — the temporal meaning of
    ///   "actually communicating" — and distant shard pairs
    ///   synchronize less often. Every bound is conservative, so
    ///   per-shard event orderings (and therefore results) are
    ///   bit-identical to the global-floor schedule; only the
    ///   barrier-round count shrinks.
    ///
    /// Rounds in which exactly one shard has any event below its
    /// bound are *fused*: the lone worker runs ahead under the
    /// extended bound of [`Shard::run_epoch_until_cross`] (no
    /// diagonal round-trip term — the emission stop replaces it)
    /// while everyone else skips the round, collapsing idle stretches
    /// — warm-up, drain tails, lulls — that the fixed barrier cadence
    /// would otherwise spin through one lookahead window at a time.
    fn run_sharded(&mut self, deadline: SimTime, limit: SimTime) {
        let k = self.shards.len();
        let lookahead_ms = self.lookahead.as_ms().max(1);
        let limit_ms = limit.as_ms();
        let kind = self.lookahead_kind;
        let reach = &self.reach_ms[..];
        let barrier = SenseBarrier::new(k);
        let grid: MailboxGrid<Staged<M>> = MailboxGrid::new(k);
        // Published state, double-buffered by round parity like the
        // mailbox slots (entry `p·k + m` / `p·k² + i·k + m`): with a
        // single barrier per round, the writes for round `r + 1`
        // overlap the reads for round `r`, and the parity split keeps
        // same-cell conflicts two barriers apart.
        let next_times: Vec<AtomicU64> = (0..2 * k).map(|_| AtomicU64::new(u64::MAX)).collect();
        let arrivals: Vec<AtomicU64> = (0..2 * k * k).map(|_| AtomicU64::new(u64::MAX)).collect();
        let topo = &*self.topo;
        let place = &self.place;
        let pin = self.pin;
        let core_map = &self.core_map[..];
        let barrier = &barrier;
        let grid = &grid;
        let next_times = &next_times[..];
        let arrivals = &arrivals[..];
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                scope.spawn(move || {
                    let me = shard.id;
                    if pin {
                        // Best-effort: a denied or unsupported call
                        // leaves the thread floating, which only
                        // costs wall clock.
                        let _ = crate::affinity::pin_current_thread(core_map[me]);
                    }
                    let mut waiter = barrier.waiter();
                    let mut outbox: Vec<Vec<Staged<M>>> = (0..k).map(|_| Vec::new()).collect();
                    let mut eff: Vec<u64> = vec![0; k];
                    let mut round: u64 = 0;
                    loop {
                        let p = (round & 1) as usize;
                        round += 1;
                        // (1) Publish: my earliest pending event, and
                        // the previous epoch's staged batches with
                        // their earliest arrival per receiver.
                        let next = shard.queue.peek_time().map_or(u64::MAX, |t| t.as_ms());
                        next_times[p * k + me].store(next, Ordering::Relaxed);
                        for (j, batch) in outbox.iter().enumerate() {
                            if j != me {
                                let min_at = batch
                                    .iter()
                                    .map(|(key, _)| key.at.as_ms())
                                    .min()
                                    .unwrap_or(u64::MAX);
                                arrivals[p * k * k + me * k + j].store(min_at, Ordering::Relaxed);
                            }
                        }
                        // SAFETY: this thread is the unique sender
                        // `me`, publishing before this round's
                        // barrier; receivers drain after it with the
                        // same parity.
                        unsafe { grid.publish(p, me, &mut outbox) };
                        let at_barrier = Instant::now();
                        barrier.wait(&mut waiter);
                        shard.metrics.add(
                            Counter::EngineBarrierIdleNs,
                            at_barrier.elapsed().as_nanos() as u64,
                        );
                        // (2) Absorb this round's incoming mail; the
                        // queue re-establishes key order. Relaxed
                        // loads below are sound for the same reason
                        // the grid is: the barrier orders and
                        // publishes every pre-barrier store.
                        // SAFETY: unique receiver `me`, after the
                        // barrier the senders published before.
                        unsafe {
                            grid.drain(p, me, |(key, pend)| shard.queue.push(key, pend));
                        }
                        // (3) Everyone's effective next = earliest
                        // pending event after the exchange.
                        for (m, e) in eff.iter_mut().enumerate() {
                            let mut v = next_times[p * k + m].load(Ordering::Relaxed);
                            for i in 0..k {
                                if i != m {
                                    let a = arrivals[p * k * k + i * k + m].load(Ordering::Relaxed);
                                    v = v.min(a);
                                }
                            }
                            *e = v;
                        }
                        let min_eff = *eff.iter().min().expect("at least one shard");
                        if min_eff >= limit_ms {
                            // Every thread computes the same minimum,
                            // so all exit on the same round.
                            shard.now = shard.now.max(deadline);
                            break;
                        }
                        shard.metrics.incr(Counter::EngineEpochs);
                        // (4) Conservative per-shard bound; identical
                        // on every thread for a given `i`.
                        let bound_of = |i: usize| -> u64 {
                            match kind {
                                LookaheadKind::GlobalFloor => min_eff.saturating_add(lookahead_ms),
                                LookaheadKind::Matrix => (0..k)
                                    .map(|m| eff[m].saturating_add(reach[m * k + i]))
                                    .min()
                                    .unwrap_or(u64::MAX),
                            }
                        };
                        let mut working = 0usize;
                        let mut solo = 0usize;
                        for (m, e) in eff.iter().enumerate() {
                            if *e < bound_of(m).min(limit_ms) {
                                working += 1;
                                solo = m;
                            }
                        }
                        if working == 1 {
                            // Fused solo round: the lone worker runs
                            // ahead to the earliest instant the
                            // *others'* events could reach it (no
                            // diagonal term — the emission stop in
                            // run_epoch_until_cross covers replies to
                            // its own mail); everyone else skips the
                            // round.
                            shard.metrics.incr(Counter::EngineFusedRounds);
                            if solo == me {
                                let inbound = (0..k)
                                    .filter(|m| *m != me)
                                    .map(|m| match kind {
                                        LookaheadKind::GlobalFloor => {
                                            eff[m].saturating_add(lookahead_ms)
                                        }
                                        LookaheadKind::Matrix => {
                                            eff[m].saturating_add(reach[m * k + me])
                                        }
                                    })
                                    .min()
                                    .unwrap_or(u64::MAX);
                                let end = SimTime::from_ms(inbound.min(limit_ms));
                                shard.run_epoch_until_cross(end, topo, place, &mut outbox);
                            }
                            continue;
                        }
                        // (5) One epoch up to this shard's bound.
                        let epoch_end = SimTime::from_ms(bound_of(me).min(limit_ms));
                        shard.run_epoch(epoch_end, topo, place, &mut outbox);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    /// Echo protocol: replies to every Ping with a Pong; counts pongs.
    #[derive(Clone, Debug)]
    enum PingMsg {
        Ping,
        Pong,
    }
    impl Message for PingMsg {
        fn wire_size(&self) -> u32 {
            8
        }
        fn class(&self) -> TrafficClass {
            TrafficClass::QueryControl
        }
    }

    #[derive(Default)]
    struct Echo {
        pongs: u32,
        undeliverable: u32,
        revived: u32,
        timer_fired: bool,
    }
    impl Node<PingMsg> for Echo {
        fn on_event(&mut self, ctx: &mut Ctx<'_, PingMsg>, ev: Event<PingMsg>) {
            match ev {
                Event::Recv {
                    from,
                    msg: PingMsg::Ping,
                } => ctx.send(from, PingMsg::Pong),
                Event::Recv {
                    msg: PingMsg::Pong, ..
                } => self.pongs += 1,
                Event::Undeliverable { .. } => self.undeliverable += 1,
                // Timer kind 2 originates a Ping to node `tag` (lets
                // tests start a cross-shard exchange from a pure-local
                // event, leaving the target's shard queue empty).
                Event::Timer { kind: 2, tag } => ctx.send(NodeId(tag as u32), PingMsg::Ping),
                Event::Timer { .. } => self.timer_fired = true,
                Event::NodeUp => self.revived += 1,
            }
        }
    }

    fn engine() -> Engine<PingMsg, Echo> {
        engine_sharded(1)
    }

    fn engine_sharded(shards: usize) -> Engine<PingMsg, Echo> {
        let topo = crate::topology::Topology::generate(&TopologyConfig::small_test(), 5);
        let nodes = (0..topo.num_nodes()).map(|_| Echo::default()).collect();
        Engine::with_shards(topo, nodes, 99, SimDuration::from_mins(30), shards)
    }

    #[test]
    fn ping_pong_round_trip_latency() {
        let mut e = engine();
        let a = NodeId(0);
        let b = NodeId(1);
        let one_way = e.topology().latency_ms(a, b);
        e.schedule_at(
            SimTime::ZERO,
            b,
            Event::Recv {
                from: a,
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.node(a).pongs, 1, "a should receive the pong");
        // The pong took one one-way latency from b to a.
        assert!(one_way > 0);
    }

    #[test]
    fn traffic_recorded_on_send() {
        let mut e = engine();
        e.schedule_at(
            SimTime::ZERO,
            NodeId(1),
            Event::Recv {
                from: NodeId(0),
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(5));
        assert_eq!(
            e.traffic()
                .sent_bytes(NodeId(1), TrafficClass::QueryControl),
            8
        );
        assert_eq!(
            e.traffic()
                .recv_bytes(NodeId(0), TrafficClass::QueryControl),
            8
        );
    }

    #[test]
    fn down_node_bounces_to_sender() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(1));
        // Node 0 receives a Ping "from" node 1 and pongs back to the
        // (dead) node 1; the engine must bounce the pong.
        e.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Recv {
                from: NodeId(1),
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        assert_eq!(
            e.node(NodeId(0)).undeliverable,
            1,
            "sender must learn of the bounce"
        );
    }

    #[test]
    fn partition_cut_drops_silently_without_bounce() {
        use crate::fault::{FaultPlane, Partition};
        let mut e = engine();
        let a = NodeId(0);
        let la = e.topology().locality(a);
        let b = e
            .topology()
            .node_ids()
            .find(|n| e.topology().locality(*n) != la)
            .expect("small_test has several localities");
        let lb = e.topology().locality(b);
        e.set_fault_plane(FaultPlane::new().partition(Partition {
            start: SimTime::ZERO,
            heal: SimTime::from_secs(5),
            side_a: vec![la],
            side_b: vec![lb],
        }));
        // `a` pongs the (partitioned) `b`: the pong is a real wire
        // send, so the cut swallows it — silently, with no bounce.
        e.schedule_at(
            SimTime::from_ms(1),
            a,
            Event::Recv {
                from: b,
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(4));
        assert_eq!(e.node(b).pongs, 0, "pong must be cut");
        assert_eq!(
            e.node(a).undeliverable,
            0,
            "a partition gives the sender no synchronous signal"
        );
        assert_eq!(e.metrics().counter(metrics::Counter::EngineFaultDrops), 1);
        assert_eq!(e.metrics().counter(metrics::Counter::DropQueryControl), 1);
        assert_eq!(e.metrics().counter(metrics::Counter::EngineBounces), 0);
        // After the heal the same exchange goes through.
        e.schedule_at(
            SimTime::from_secs(6),
            a,
            Event::Recv {
                from: b,
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.node(b).pongs, 1, "healed link must deliver");
    }

    #[test]
    fn certain_link_loss_drops_every_send() {
        use crate::fault::{FaultPlane, LinkLoss};
        let mut e = engine();
        e.set_fault_plane(FaultPlane::new().link_loss(LinkLoss {
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
            probability: 1.0,
            cross_locality_only: false,
        }));
        e.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Recv {
                from: NodeId(1),
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.node(NodeId(1)).pongs, 0);
        assert_eq!(e.metrics().counter(metrics::Counter::EngineFaultDrops), 1);
        assert_eq!(
            e.metrics().counter(metrics::Counter::SentQueryControl),
            e.metrics().counter(metrics::Counter::DropQueryControl),
            "with p = 1 every send is a drop"
        );
    }

    #[test]
    fn regional_failure_kills_locality_and_staggers_recovery() {
        use crate::fault::{FaultPlane, RegionalFailure};
        let mut e = engine();
        let loc = e.topology().locality(NodeId(0));
        let victims = e.topology().nodes_in(loc);
        e.set_fault_plane(FaultPlane::new().regional_failure(RegionalFailure {
            at: SimTime::from_secs(1),
            locality: loc,
            recover_start: SimTime::from_secs(2),
            stagger: SimDuration::from_ms(100),
        }));
        e.run_until(SimTime::from_ms(1500));
        for n in &victims {
            assert!(!e.is_up(*n), "{n:?} must be down mid-failure");
        }
        e.run_until(SimTime::from_secs(10));
        for n in &victims {
            assert!(e.is_up(*n), "{n:?} must have recovered");
            assert_eq!(e.node(*n).revived, 1);
        }
    }

    #[test]
    fn revive_delivers_node_up() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(3));
        e.schedule_up(SimTime::from_secs(1), NodeId(3));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.node(NodeId(3)).revived, 1);
        assert!(e.is_up(NodeId(3)));
    }

    #[test]
    fn timers_fire() {
        let mut e = engine();
        e.schedule_at(SimTime::ZERO, NodeId(0), Event::Timer { kind: 1, tag: 0 });
        e.run_until(SimTime::from_secs(1));
        assert!(e.node(NodeId(0)).timer_fired);
    }

    #[test]
    fn timers_die_with_node() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(0));
        e.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Timer { kind: 1, tag: 0 },
        );
        e.run_until(SimTime::from_secs(1));
        assert!(
            !e.node(NodeId(0)).timer_fired,
            "timer on a down node must be swallowed"
        );
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = engine();
        e.run_until(SimTime::from_secs(30));
        assert_eq!(e.now(), SimTime::from_secs(30));
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.run_until(SimTime::from_secs(10));
        e.schedule_at(SimTime::from_secs(5), NodeId(0), Event::NodeUp);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = engine();
            for i in 0..10u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 7),
                    NodeId(i % 4),
                    Event::Recv {
                        from: NodeId((i + 1) % 4),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.run_until(SimTime::from_secs(20));
            (e.events_processed(), e.traffic().messages())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_run_matches_single_shard() {
        let drive = |shards: usize| {
            let mut e = engine_sharded(shards);
            for i in 0..40u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 13),
                    NodeId(i % 20),
                    Event::Recv {
                        from: NodeId((i + 7) % 20),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.schedule_down(SimTime::from_ms(50), NodeId(2));
            e.schedule_up(SimTime::from_secs(2), NodeId(2));
            e.run_until(SimTime::from_secs(20));
            let pongs: Vec<u32> = e.topology().node_ids().map(|n| e.node(n).pongs).collect();
            (
                e.events_processed(),
                e.traffic().messages(),
                e.traffic().total_sent(TrafficClass::QueryControl),
                pongs,
            )
        };
        let reference = drive(1);
        for shards in [2, 3] {
            assert_eq!(drive(shards), reference, "shards={shards} diverged");
        }
    }

    #[test]
    fn fault_plane_results_are_shard_invariant() {
        use crate::fault::{FaultPlane, LinkLoss, Partition, RegionalFailure};
        let drive = |shards: usize| {
            let mut e = engine_sharded(shards);
            let la = e.topology().locality(NodeId(0));
            let lb = e
                .topology()
                .node_ids()
                .map(|n| e.topology().locality(n))
                .find(|l| *l != la)
                .expect("several localities");
            e.set_fault_plane(
                FaultPlane::new()
                    .partition(Partition {
                        start: SimTime::from_ms(100),
                        heal: SimTime::from_secs(3),
                        side_a: vec![la],
                        side_b: vec![lb],
                    })
                    .link_loss(LinkLoss {
                        start: SimTime::from_secs(4),
                        end: SimTime::from_secs(8),
                        probability: 0.4,
                        cross_locality_only: false,
                    })
                    .regional_failure(RegionalFailure {
                        at: SimTime::from_secs(9),
                        locality: lb,
                        recover_start: SimTime::from_secs(10),
                        stagger: SimDuration::from_ms(50),
                    }),
            );
            for i in 0..120u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 97),
                    NodeId(i % 20),
                    Event::Recv {
                        from: NodeId((i + 7) % 20),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.run_until(SimTime::from_secs(20));
            let pongs: Vec<u32> = e.topology().node_ids().map(|n| e.node(n).pongs).collect();
            (
                e.events_processed(),
                e.traffic().messages(),
                e.metrics().counter(metrics::Counter::EngineFaultDrops),
                e.metrics().counter(metrics::Counter::DropQueryControl),
                e.metrics().counter(metrics::Counter::EngineBounces),
                pongs,
            )
        };
        let reference = drive(1);
        assert!(reference.2 > 0, "the plane must actually drop something");
        for shards in [2, 3] {
            assert_eq!(drive(shards), reference, "shards={shards} diverged");
        }
    }

    #[test]
    fn recv_counter_table_matches_traffic_class_order() {
        assert_eq!(RECV_COUNTER.len(), TrafficClass::ALL.len());
        let expected = [
            (TrafficClass::Gossip, "engine_recv_gossip"),
            (TrafficClass::Push, "engine_recv_push"),
            (TrafficClass::KeepAlive, "engine_recv_keepalive"),
            (TrafficClass::DhtRouting, "engine_recv_dht_routing"),
            (TrafficClass::DhtMaintenance, "engine_recv_dht_maintenance"),
            (TrafficClass::QueryControl, "engine_recv_query_control"),
            (TrafficClass::Transfer, "engine_recv_transfer"),
        ];
        for (i, (class, name)) in expected.iter().enumerate() {
            assert_eq!(TrafficClass::ALL[i], *class, "class order drifted");
            assert_eq!(class.index(), i, "class index drifted");
            assert_eq!(
                RECV_COUNTER[i].def().name,
                *name,
                "RECV_COUNTER[{i}] does not match {class:?}"
            );
        }
    }

    #[test]
    fn sent_drop_bounce_counter_tables_match_traffic_class_order() {
        assert_eq!(SENT_COUNTER.len(), TrafficClass::ALL.len());
        assert_eq!(DROP_COUNTER.len(), TrafficClass::ALL.len());
        assert_eq!(BOUNCE_COUNTER.len(), TrafficClass::ALL.len());
        let suffixes = [
            "gossip",
            "push",
            "keepalive",
            "dht_routing",
            "dht_maintenance",
            "query_control",
            "transfer",
        ];
        for (i, suffix) in suffixes.iter().enumerate() {
            assert_eq!(
                SENT_COUNTER[i].def().name,
                format!("engine_sent_{suffix}"),
                "SENT_COUNTER[{i}] drifted"
            );
            assert_eq!(
                DROP_COUNTER[i].def().name,
                format!("engine_drop_{suffix}"),
                "DROP_COUNTER[{i}] drifted"
            );
            assert_eq!(
                BOUNCE_COUNTER[i].def().name,
                format!("engine_bounce_{suffix}"),
                "BOUNCE_COUNTER[{i}] drifted"
            );
        }
    }

    #[test]
    fn registry_counts_events_classes_and_bounces() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(1));
        e.schedule_at(
            SimTime::from_ms(5),
            NodeId(0),
            // Timer kind 2: node 0 pings the (dead) node 1.
            Event::Timer { kind: 2, tag: 1 },
        );
        e.schedule_at(
            SimTime::from_ms(7),
            NodeId(2),
            Event::Recv {
                from: NodeId(3),
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        let m = e.metrics();
        assert_eq!(
            m.counter(metrics::Counter::EngineEvents),
            e.events_processed(),
            "registry replaces the events side-channel"
        );
        assert_eq!(m.counter(metrics::Counter::EngineTimers), 1);
        assert_eq!(m.counter(metrics::Counter::EngineBounces), 1);
        // node 2's ping reply reached node 3: one QueryControl receive
        // (the ping to the dead node 1 was never received).
        assert!(m.counter(metrics::Counter::RecvQueryControl) >= 1);
        assert_eq!(m.counter(metrics::Counter::RecvGossip), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn registry_sim_cells_are_shard_invariant() {
        let drive = |shards: usize| {
            let mut e = engine_sharded(shards);
            for i in 0..40u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 13),
                    NodeId(i % 20),
                    Event::Recv {
                        from: NodeId((i + 7) % 20),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.schedule_down(SimTime::from_ms(50), NodeId(2));
            e.schedule_up(SimTime::from_secs(2), NodeId(2));
            e.run_until(SimTime::from_secs(20));
            e.metrics().sim_fingerprint()
        };
        let reference = drive(1);
        assert!(!reference.iter().all(|&v| v == 0));
        for shards in [2, 3] {
            assert_eq!(drive(shards), reference, "shards={shards} diverged");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_localities() {
        let e = engine_sharded(64);
        assert_eq!(e.num_shards(), 3, "small_test has 3 localities");
        assert!(e.lookahead() >= SimDuration::from_ms(1));
    }

    fn engine_with_lookahead(
        shards: usize,
        kind: crate::topology::LookaheadKind,
    ) -> Engine<PingMsg, Echo> {
        let cfg = TopologyConfig {
            lookahead: kind,
            ..TopologyConfig::small_test()
        };
        let topo = crate::topology::Topology::generate(&cfg, 5);
        let nodes = (0..topo.num_nodes()).map(|_| Echo::default()).collect();
        Engine::with_shards(topo, nodes, 99, SimDuration::from_mins(30), shards)
    }

    /// The tentpole guarantee of the lookahead matrix: the adaptive
    /// schedule is an execution detail — bit-identical observable
    /// behaviour, strictly fewer barrier rounds.
    #[test]
    fn lookahead_matrix_matches_global_floor_with_fewer_epochs() {
        use crate::topology::LookaheadKind;
        let drive = |shards: usize, kind: LookaheadKind| {
            let mut e = engine_with_lookahead(shards, kind);
            for i in 0..60u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 211),
                    NodeId(i % 20),
                    Event::Recv {
                        from: NodeId((i + 7) % 20),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.schedule_down(SimTime::from_ms(50), NodeId(2));
            e.schedule_up(SimTime::from_secs(2), NodeId(2));
            e.run_until(SimTime::from_secs(30));
            let pongs: Vec<u32> = e.topology().node_ids().map(|n| e.node(n).pongs).collect();
            let fingerprint = (e.events_processed(), e.traffic().messages(), pongs);
            (fingerprint, e.epochs())
        };
        for shards in [2usize, 3] {
            let (global_fp, global_epochs) = drive(shards, LookaheadKind::GlobalFloor);
            let (matrix_fp, matrix_epochs) = drive(shards, LookaheadKind::Matrix);
            assert_eq!(matrix_fp, global_fp, "shards={shards}: results diverged");
            assert!(global_epochs > 0, "sharded runs must count epochs");
            assert!(
                matrix_epochs <= global_epochs,
                "shards={shards}: matrix must not synchronize more often \
                 ({matrix_epochs} vs {global_epochs})"
            );
        }
        // Single-shard runs have no barrier and count no epochs.
        let (_, epochs) = drive(1, LookaheadKind::Matrix);
        assert_eq!(epochs, 0);
    }

    /// The causality trap a naive peers-only bound falls into: an
    /// idle shard looks unconstraining, but a message sent to it this
    /// round can wake it and draw a reply (here: a bounce off a dead
    /// node, emitted by the idle shard) due one round trip later. The
    /// overrunning shard must not process its own far-future events
    /// before that reply — the `reach` diagonal (round-trip
    /// reflection) enforces exactly this.
    #[test]
    fn matrix_mode_waits_for_replies_drawn_from_idle_shards() {
        use crate::topology::LookaheadKind;
        let drive = |kind: LookaheadKind| {
            let mut e = engine_with_lookahead(2, kind);
            // A node in shard 0 and a node in shard 1.
            let shard_of = |e: &Engine<PingMsg, Echo>, s: usize| {
                e.topology()
                    .node_ids()
                    .find(|n| e.place.shard(*n) == s)
                    .expect("both shards populated")
            };
            let a = shard_of(&e, 0);
            let c = shard_of(&e, 1);
            // Shard 1 starts with an *empty* queue. At t=1 a pure
            // shard-0 event (timer kind 2) makes `a` ping `c`; the
            // pong comes back one round trip later — while `a` also
            // holds a far-future timer that must not run first.
            e.schedule_at(
                SimTime::from_ms(1),
                a,
                Event::Timer {
                    kind: 2,
                    tag: c.0 as u64,
                },
            );
            e.schedule_at(SimTime::from_secs(50), a, Event::Timer { kind: 1, tag: 0 });
            e.run_until(SimTime::from_secs(60));
            (e.node(a).pongs, e.node(a).timer_fired, e.events_processed())
        };
        let global = drive(LookaheadKind::GlobalFloor);
        let matrix = drive(LookaheadKind::Matrix);
        assert_eq!(matrix, global, "reply chain processed out of order");
        assert_eq!(matrix.0, 1, "the pong must reach the pinger");
    }

    /// A lone working shard fuses rounds: with pending events on one
    /// shard only, every other shard's published idleness lets the
    /// solo shard run to the horizon in one fused round instead of
    /// creeping forward a round-trip per barrier — with results
    /// identical to the single-shard run.
    #[test]
    fn solo_work_fuses_rounds_bit_identically() {
        // Pick a shard-0 node once, then drive the identical schedule
        // through both engines (pure-local timers: no cross mail).
        let probe = engine_sharded(3);
        let local = probe
            .topology()
            .node_ids()
            .find(|n| probe.place.shard(*n) == 0)
            .expect("shard 0 populated");
        let drive = |shards: usize| {
            let mut e = engine_sharded(shards);
            for i in 0..60u64 {
                e.schedule_at(
                    SimTime::from_ms(i * 499),
                    local,
                    Event::Timer { kind: 1, tag: 0 },
                );
            }
            e.run_until(SimTime::from_secs(40));
            (e.events_processed(), e.traffic().messages(), e.now())
        };
        let reference = drive(1);
        let mut e = engine_sharded(3);
        for i in 0..60u64 {
            e.schedule_at(
                SimTime::from_ms(i * 499),
                local,
                Event::Timer { kind: 1, tag: 0 },
            );
        }
        e.run_until(SimTime::from_secs(40));
        assert_eq!(
            (e.events_processed(), e.traffic().messages(), e.now()),
            reference,
            "fused execution diverged from the single-shard run"
        );
        assert!(
            e.fused_rounds() >= 1,
            "a lone working shard must fuse ({} fused)",
            e.fused_rounds()
        );
        assert!(
            e.epochs() <= 4,
            "fusion must collapse the round count, got {}",
            e.epochs()
        );
    }

    /// The dual pin: when *every* shard has due work each lookahead
    /// window — the shape of the dense `scale` sweep cells like
    /// 10k nodes / 8 shards — no round ever fuses and the epoch count
    /// stays exactly at the conservative-synchronization cadence. The
    /// committed BENCH epochs for dense cells are pinned by this
    /// invariance; it is the barrier cost per round that the mailbox
    /// redesign shrinks there, not the number of rounds.
    #[test]
    fn dense_rounds_never_fuse_and_keep_the_epoch_cadence() {
        let drive = || {
            let mut e = engine_sharded(3);
            let reps: Vec<NodeId> = (0..3)
                .map(|s| {
                    e.topology()
                        .node_ids()
                        .find(|n| e.place.shard(*n) == s)
                        .expect("all shards populated")
                })
                .collect();
            for step in 0..1500u64 {
                for &n in &reps {
                    e.schedule_at(
                        SimTime::from_ms(step * 20),
                        n,
                        Event::Timer { kind: 1, tag: 0 },
                    );
                }
            }
            e.run_until(SimTime::from_secs(30));
            (e.events_processed(), e.epochs(), e.fused_rounds())
        };
        let (events, epochs, fused) = drive();
        assert_eq!(events, 3 * 1500);
        assert!(epochs > 0, "sharded runs count rounds");
        assert_eq!(fused, 0, "every round has multi-shard work");
        // And the cadence is reproducible from run to run.
        assert_eq!(drive(), (events, epochs, fused));
    }

    #[test]
    fn reachability_bounds_close_over_emission_chains() {
        // Two shards, asymmetric lookaheads 10/30.
        let l = vec![u64::MAX, 10, 30, u64::MAX];
        let r = reachability_bounds(&l, 2);
        // Diagonal = own round trip; off-diagonal = direct hop.
        assert_eq!(r, vec![10 + 30, 10, 30, 30 + 10]);
        // Three shards where relaying through 1 beats the direct
        // 0 → 2 lookahead: dist(0,2) = 5 + 5 < 100.
        let l3 = vec![
            u64::MAX,
            5,
            100, // from 0
            5,
            u64::MAX,
            5, // from 1
            100,
            5,
            u64::MAX, // from 2
        ];
        let r3 = reachability_bounds(&l3, 3);
        // Earliest an event of shard 0 can become due at shard 2:
        // relay 0 → 1 (5) then hop 1 → 2 (5).
        assert_eq!(r3[2], 10); // row 0, column 2
                               // Shard 0's own reflection: out and back via shard 1.
        assert_eq!(r3[0], 10);
    }

    #[test]
    fn pair_lookahead_is_at_least_the_global_floor() {
        let e = engine_sharded(3);
        assert_eq!(e.lookahead_kind(), crate::topology::LookaheadKind::Matrix);
        let floor = e.lookahead().as_ms();
        for i in 0..e.num_shards() {
            for j in 0..e.num_shards() {
                if i == j {
                    assert_eq!(e.pair_lookahead_ms(i, j), u64::MAX);
                } else {
                    assert!(e.pair_lookahead_ms(i, j) >= floor);
                }
            }
        }
    }

    #[test]
    fn per_node_rng_streams_differ() {
        use rand::RngCore;
        let mut a = StdRng::seed_from_u64(node_stream_seed(7, NodeId(0)));
        let mut b = StdRng::seed_from_u64(node_stream_seed(7, NodeId(1)));
        let mut a2 = StdRng::seed_from_u64(node_stream_seed(7, NodeId(0)));
        assert_ne!(a.next_u64(), b.next_u64(), "streams must be independent");
        let _ = a2.next_u64();
    }
}
