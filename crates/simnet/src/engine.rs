//! The protocol engine: message delivery with link latency, timers,
//! failure signalling, traffic accounting, and churn.
//!
//! Protocols are written as message-driven state machines: a node type
//! implements [`Node`] for a protocol-specific message enum `M`
//! implementing [`Message`]. All interaction with the outside world
//! goes through [`Ctx`] — sending messages, arming timers, reading the
//! clock/topology, and recording metrics — which keeps the protocol
//! logic purely deterministic and unit-testable.
//!
//! Failure model: messages to a node that is *down* are dropped, and
//! the sender receives an [`Event::Undeliverable`] notification one
//! round trip later (modelling a connection-refused error). This is
//! what drives the paper's redirection-failure handling (§5.1) and
//! directory-failure detection (§5.2) without a global liveness
//! oracle.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::EventQueue;
use crate::stats::{QueryStats, TimeSeries, Traffic, TrafficClass};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Locality, NodeId, Topology};

/// A simulated wire message: every protocol message reports its size
/// in bytes (for the paper's bandwidth metric) and its traffic class.
pub trait Message: std::fmt::Debug {
    /// Modelled serialized size in bytes.
    fn wire_size(&self) -> u32;
    /// Classification for traffic accounting.
    fn class(&self) -> TrafficClass;
}

/// What a node can observe.
#[derive(Debug)]
pub enum Event<M> {
    /// A message arrived from `from`.
    Recv {
        /// Sender of the message.
        from: NodeId,
        /// The message payload.
        msg: M,
    },
    /// A timer armed with [`Ctx::set_timer`] fired.
    Timer {
        /// Application-defined timer kind.
        kind: u16,
        /// Application-defined payload for the timer.
        tag: u64,
    },
    /// A message previously sent to `to` could not be delivered
    /// because `to` is down. Arrives one round-trip after the send.
    Undeliverable {
        /// The unreachable destination.
        to: NodeId,
        /// The original message.
        msg: M,
    },
    /// This node was revived after a churn-induced failure. State was
    /// NOT cleared automatically; the protocol decides what survives a
    /// restart (the paper: a revived peer rejoins as a new client).
    NodeUp,
}

/// A protocol state machine bound to one simulated node.
pub trait Node<M: Message> {
    /// Handle one event. Use `ctx` to send messages, arm timers and
    /// record metrics.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>);
}

/// Output actions buffered during an event handler.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to` (arrives after one link latency).
    Send {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Deliver `Event::Timer { kind, tag }` to self after `delay`.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Application-defined timer kind.
        kind: u16,
        /// Application-defined payload.
        tag: u64,
    },
}

/// The per-event execution context handed to [`Node::on_event`].
pub struct Ctx<'a, M> {
    now: SimTime,
    id: NodeId,
    topo: &'a Topology,
    rng: &'a mut StdRng,
    query_stats: &'a mut QueryStats,
    gauges: &'a mut GaugeSet,
    out: Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this event is executing on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the underlay.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Network locality of `n` (landmark measurement; §6.1).
    pub fn locality(&self, n: NodeId) -> Locality {
        self.topo.locality(n)
    }

    /// Number of localities `k`.
    pub fn num_localities(&self) -> usize {
        self.topo.num_localities()
    }

    /// Measured one-way latency between two nodes in milliseconds.
    /// Protocols use this for the transfer-distance metric and for
    /// latency-aware choices, mirroring the landmark-style probing the
    /// paper assumes peers can perform.
    pub fn latency_ms(&self, a: NodeId, b: NodeId) -> u64 {
        self.topo.latency_ms(a, b)
    }

    /// Deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send a message (delivered after one link latency).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(Action::Send { to, msg });
    }

    /// Arm a timer on this node.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u16, tag: u64) {
        self.out.push(Action::Timer { delay, kind, tag });
    }

    /// The paper's query metrics sink.
    pub fn query_stats(&mut self) -> &mut QueryStats {
        self.query_stats
    }

    /// Record an application gauge sample (e.g. participant count,
    /// server load) into a named windowed series.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.record(self.now, name, value);
    }
}

/// Named application-level time series (gauges).
#[derive(Debug, Default)]
pub struct GaugeSet {
    window: SimDuration,
    series: std::collections::HashMap<&'static str, TimeSeries>,
}

impl GaugeSet {
    fn new(window: SimDuration) -> Self {
        GaugeSet {
            window,
            series: Default::default(),
        }
    }

    fn record(&mut self, at: SimTime, name: &'static str, value: f64) {
        let window = self.window;
        self.series
            .entry(name)
            .or_insert_with(|| TimeSeries::new(window))
            .record(at, value);
    }

    /// Fetch a gauge series by name.
    pub fn get(&self, name: &'static str) -> Option<&TimeSeries> {
        self.series.get(name)
    }
}

/// Internal queue payload.
#[derive(Debug)]
enum Pending<M> {
    App {
        dst: NodeId,
        ev: Event<M>,
    },
    /// Traffic-accounted message in flight (recorded at send time;
    /// this wrapper only exists to detect dead destinations at
    /// delivery time).
    Wire {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    ChurnDown(NodeId),
    ChurnUp(NodeId),
}

/// The simulation driver.
///
/// Owns the topology, all protocol nodes, the event queue, the clock,
/// the RNG and all statistics. See the crate docs for an end-to-end
/// example.
pub struct Engine<M: Message, N: Node<M>> {
    topo: Topology,
    nodes: Vec<N>,
    up: Vec<bool>,
    queue: EventQueue<Pending<M>>,
    now: SimTime,
    rng: StdRng,
    traffic: Traffic,
    query_stats: QueryStats,
    gauges: GaugeSet,
    events_processed: u64,
}

impl<M: Message, N: Node<M>> Engine<M, N> {
    /// Build an engine over `topo` with one protocol node per underlay
    /// node and a 30-minute metric window (the paper's plots).
    pub fn new(topo: Topology, nodes: Vec<N>, seed: u64) -> Self {
        Self::with_window(topo, nodes, seed, SimDuration::from_mins(30))
    }

    /// As [`Engine::new`] with an explicit series window.
    pub fn with_window(topo: Topology, nodes: Vec<N>, seed: u64, window: SimDuration) -> Self {
        assert_eq!(
            topo.num_nodes(),
            nodes.len(),
            "one protocol node per underlay node"
        );
        let n = nodes.len();
        Engine {
            topo,
            nodes,
            up: vec![true; n],
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            traffic: Traffic::new(n, window),
            query_stats: QueryStats::new(window),
            gauges: GaugeSet::new(window),
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Immutable access to a protocol node (inspection in tests and
    /// harnesses).
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.idx()]
    }

    /// Mutable access to a protocol node (setup in harnesses).
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.idx()]
    }

    /// Whether `n` is currently up.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.up[n.idx()]
    }

    /// Traffic accounting.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Query metrics.
    pub fn query_stats(&self) -> &QueryStats {
        &self.query_stats
    }

    /// Application gauges.
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event for `node` at absolute time `at` (external
    /// injection: workload queries, test fixtures).
    pub fn schedule_at(&mut self, at: SimTime, node: NodeId, ev: Event<M>) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, Pending::App { dst: node, ev });
    }

    /// Schedule an event `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, node: NodeId, ev: Event<M>) {
        self.queue
            .push(self.now + delay, Pending::App { dst: node, ev });
    }

    /// Take `node` down at time `at` (messages to it bounce, its
    /// timers are swallowed).
    pub fn schedule_down(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, Pending::ChurnDown(node));
    }

    /// Bring `node` back up at time `at`; it receives
    /// [`Event::NodeUp`].
    pub fn schedule_up(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, Pending::ChurnUp(node));
    }

    /// Run until the queue is exhausted or `deadline` is reached.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start_count = self.events_processed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let item = self.queue.pop().expect("peeked");
            debug_assert!(item.at >= self.now, "time went backwards");
            self.now = item.at;
            self.dispatch(item.payload);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - start_count
    }

    fn dispatch(&mut self, p: Pending<M>) {
        match p {
            Pending::ChurnDown(n) => {
                self.up[n.idx()] = false;
            }
            Pending::ChurnUp(n) => {
                self.up[n.idx()] = true;
                self.deliver(n, Event::NodeUp);
            }
            Pending::App { dst, ev } => {
                if self.up[dst.idx()] {
                    self.deliver(dst, ev);
                }
                // Events to down nodes are dropped: timers die with the
                // node; externally injected events are lost, like a user
                // whose machine is off.
            }
            Pending::Wire { from, to, msg } => {
                if self.up[to.idx()] {
                    self.deliver(to, Event::Recv { from, msg });
                } else if self.up[from.idx()] {
                    // Bounce: the sender learns after one more one-way
                    // latency (connection refused round trip).
                    let back = self.topo.latency(to, from);
                    self.queue.push(
                        self.now + back,
                        Pending::App {
                            dst: from,
                            ev: Event::Undeliverable { to, msg },
                        },
                    );
                }
            }
        }
    }

    fn deliver(&mut self, dst: NodeId, ev: Event<M>) {
        self.events_processed += 1;
        let mut ctx = Ctx {
            now: self.now,
            id: dst,
            topo: &self.topo,
            rng: &mut self.rng,
            query_stats: &mut self.query_stats,
            gauges: &mut self.gauges,
            out: Vec::new(),
        };
        self.nodes[dst.idx()].on_event(&mut ctx, ev);
        let actions = ctx.out;
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    self.traffic
                        .record(self.now, dst, to, msg.class(), msg.wire_size());
                    let lat = self.topo.latency(dst, to);
                    self.queue
                        .push(self.now + lat, Pending::Wire { from: dst, to, msg });
                }
                Action::Timer { delay, kind, tag } => {
                    self.queue.push(
                        self.now + delay,
                        Pending::App {
                            dst,
                            ev: Event::Timer { kind, tag },
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    /// Echo protocol: replies to every Ping with a Pong; counts pongs.
    #[derive(Clone, Debug)]
    enum PingMsg {
        Ping,
        Pong,
    }
    impl Message for PingMsg {
        fn wire_size(&self) -> u32 {
            8
        }
        fn class(&self) -> TrafficClass {
            TrafficClass::QueryControl
        }
    }

    #[derive(Default)]
    struct Echo {
        pongs: u32,
        undeliverable: u32,
        revived: u32,
        timer_fired: bool,
    }
    impl Node<PingMsg> for Echo {
        fn on_event(&mut self, ctx: &mut Ctx<'_, PingMsg>, ev: Event<PingMsg>) {
            match ev {
                Event::Recv {
                    from,
                    msg: PingMsg::Ping,
                } => ctx.send(from, PingMsg::Pong),
                Event::Recv {
                    msg: PingMsg::Pong, ..
                } => self.pongs += 1,
                Event::Undeliverable { .. } => self.undeliverable += 1,
                Event::Timer { .. } => self.timer_fired = true,
                Event::NodeUp => self.revived += 1,
            }
        }
    }

    fn engine() -> Engine<PingMsg, Echo> {
        let topo = crate::topology::Topology::generate(&TopologyConfig::small_test(), 5);
        let nodes = (0..topo.num_nodes()).map(|_| Echo::default()).collect();
        Engine::new(topo, nodes, 99)
    }

    #[test]
    fn ping_pong_round_trip_latency() {
        let mut e = engine();
        let a = NodeId(0);
        let b = NodeId(1);
        let one_way = e.topology().latency_ms(a, b);
        e.schedule_at(
            SimTime::ZERO,
            a,
            Event::Recv {
                from: a,
                msg: PingMsg::Ping,
            },
        );
        // a "receives" a self-ping at t=0, sends Pong to itself... use b:
        let mut e = engine();
        e.schedule_at(
            SimTime::ZERO,
            b,
            Event::Recv {
                from: a,
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.node(a).pongs, 1, "a should receive the pong");
        // The pong took one one-way latency from b to a.
        assert!(one_way > 0);
    }

    #[test]
    fn traffic_recorded_on_send() {
        let mut e = engine();
        e.schedule_at(
            SimTime::ZERO,
            NodeId(1),
            Event::Recv {
                from: NodeId(0),
                msg: PingMsg::Ping,
            },
        );
        e.run_until(SimTime::from_secs(5));
        assert_eq!(
            e.traffic()
                .sent_bytes(NodeId(1), TrafficClass::QueryControl),
            8
        );
        assert_eq!(
            e.traffic()
                .recv_bytes(NodeId(0), TrafficClass::QueryControl),
            8
        );
    }

    #[test]
    fn down_node_bounces_to_sender() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(1));
        e.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Recv {
                from: NodeId(0),
                msg: PingMsg::Ping,
            },
        );
        // Node 0 replies Pong to itself (from==self), that's fine; instead
        // directly test wire bounce by having node 0 ping node 1:
        let mut e2 = engine();
        e2.schedule_down(SimTime::ZERO, NodeId(1));
        // Craft: node 2 receives Ping from node 1? Simpler: use a timer-
        // free direct send: node 0 receives a Ping "from" node 1 and
        // pongs back to the (dead) node 1.
        e2.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Recv {
                from: NodeId(1),
                msg: PingMsg::Ping,
            },
        );
        e2.run_until(SimTime::from_secs(10));
        assert_eq!(
            e2.node(NodeId(0)).undeliverable,
            1,
            "sender must learn of the bounce"
        );
        let _ = e; // silence unused
    }

    #[test]
    fn revive_delivers_node_up() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(3));
        e.schedule_up(SimTime::from_secs(1), NodeId(3));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.node(NodeId(3)).revived, 1);
        assert!(e.is_up(NodeId(3)));
    }

    #[test]
    fn timers_fire() {
        let mut e = engine();
        e.schedule_at(SimTime::ZERO, NodeId(0), Event::Timer { kind: 1, tag: 0 });
        e.run_until(SimTime::from_secs(1));
        assert!(e.node(NodeId(0)).timer_fired);
    }

    #[test]
    fn timers_die_with_node() {
        let mut e = engine();
        e.schedule_down(SimTime::ZERO, NodeId(0));
        e.schedule_at(
            SimTime::from_ms(1),
            NodeId(0),
            Event::Timer { kind: 1, tag: 0 },
        );
        e.run_until(SimTime::from_secs(1));
        assert!(
            !e.node(NodeId(0)).timer_fired,
            "timer on a down node must be swallowed"
        );
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = engine();
        e.run_until(SimTime::from_secs(30));
        assert_eq!(e.now(), SimTime::from_secs(30));
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.run_until(SimTime::from_secs(10));
        e.schedule_at(SimTime::from_secs(5), NodeId(0), Event::NodeUp);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = engine();
            for i in 0..10u32 {
                e.schedule_at(
                    SimTime::from_ms(i as u64 * 7),
                    NodeId(i % 4),
                    Event::Recv {
                        from: NodeId((i + 1) % 4),
                        msg: PingMsg::Ping,
                    },
                );
            }
            e.run_until(SimTime::from_secs(20));
            (e.events_processed(), e.traffic().messages())
        };
        assert_eq!(run(), run());
    }
}
