//! The deterministic event queue.
//!
//! A binary heap keyed by `(time, sequence number)`. The sequence
//! number makes ordering of same-instant events FIFO with respect to
//! scheduling order, which in turn makes the whole simulation
//! deterministic: two runs with the same seed process events in the
//! same order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: an opaque payload `T` scheduled at `at`.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// Delivery instant.
    pub at: SimTime,
    /// Monotonic tie-breaker assigned by the queue.
    pub seq: u64,
    /// The payload to deliver.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and,
        // within an instant, the lowest sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` for delivery at `at`. Events scheduled for
    /// the same instant are delivered in scheduling order.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(30), "c");
        q.push(SimTime::from_ms(10), "a");
        q.push(SimTime::from_ms(20), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ms(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(10), 1);
        q.push(SimTime::from_ms(5), 0);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.push(SimTime::from_ms(7), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ms(42), ());
        q.push(SimTime::from_ms(41), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(41)));
    }

    #[test]
    fn zero_time_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, "x");
        assert_eq!(q.pop().unwrap().at, SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue is a stable priority queue: popping yields times
        /// in non-decreasing order, and equal times preserve insertion
        /// order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ms(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(s) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(s.at >= lt);
                    if s.at == lt {
                        prop_assert!(s.payload > li, "FIFO violated for equal times");
                    }
                }
                last = Some((s.at, s.payload));
            }
        }
    }
}
