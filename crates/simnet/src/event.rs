//! The deterministic future-event list.
//!
//! Events are totally ordered by [`EventKey`] — `(time, source stream,
//! per-stream sequence number)`. The key is a *total order over all
//! events of a run that does not depend on how the simulation is
//! sharded*: external injections draw from one engine-wide counter
//! (stream 0), and every event a node emits is numbered by that node's
//! own emission counter (stream `node_id + 1`). Because each node's
//! processing order is itself deterministic, the keys — and therefore
//! the global event order — are identical whether the run executes on
//! one shard or many. This is the property the engine's epoch barrier
//! relies on for bit-identical parallel execution (see
//! [`crate::engine`]).
//!
//! ## Storage backends
//!
//! [`EventQueue`] pops strictly in key order under either of two
//! interchangeable backends ([`EventQueueKind`]):
//!
//! * **`Heap`** — a `BinaryHeap` over inverted keys: `O(log n)` per
//!   operation, the reference implementation.
//! * **`Calendar`** (the default) — a self-resizing calendar queue
//!   (R. Brown, "Calendar Queues: A Fast O(1) Priority Queue
//!   Implementation for the Simulation Event Set Problem", CACM 1988).
//!   Pending events are bucketed into *days* of a fixed millisecond
//!   width. The day currently being drained is kept sorted by full
//!   `EventKey` (so same-instant ties break exactly like the heap:
//!   stream id, then per-stream sequence); future days are unsorted
//!   append-only buckets, sorted once when the clock reaches them; and
//!   events beyond the bucket ring's horizon wait in a small overflow
//!   heap that is drip-fed back into the ring as days advance. At
//!   steady state enqueue and dequeue are `O(1)` — one bucket append,
//!   one pop off the sorted current day — instead of an `O(log n)`
//!   sift through one large heap whose entries (full protocol
//!   messages) are expensive to move.
//!
//! ### Bucket width and resize policy
//!
//! The queue rebuilds its geometry whenever the population crosses a
//! threshold — growing past `2 ×` the bucket count or shrinking below
//! `1/8` of it — and whenever the ring is exhausted and only overflow
//! events remain (the calendar's "next year"). A rebuild samples the
//! pending events and sets the day width to roughly `3 ×` the average
//! inter-event gap of the earlier half of the queue (Brown's rule of
//! thumb: a handful of events per day), clamped to at least 1 ms, and
//! the ring size to the population rounded up to a power of two
//! (within `[16, 65536]`). All of this is a pure function of the
//! push/pop sequence — no wall clock, no RNG — so the backend choice
//! can never affect simulation results, only wall-clock speed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Globally unique, shard-layout-independent ordering key of a
/// scheduled event.
///
/// Ordering is lexicographic: delivery instant first, then the source
/// stream (0 = externally injected; `n + 1` = emitted by node `n`),
/// then the per-stream sequence number. Same-instant events from the
/// same stream are therefore FIFO, and ties across streams resolve by
/// stream id — deterministically, without any global insertion
/// counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// Delivery instant.
    pub at: SimTime,
    /// Source stream: 0 for external injections, `node_id + 1` for
    /// node-emitted events.
    pub src: u64,
    /// Sequence number within the source stream.
    pub seq: u64,
}

/// Which storage backend an [`EventQueue`] runs on. Pop order — and
/// therefore every simulation result — is identical for both; only
/// the wall-clock cost profile differs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EventQueueKind {
    /// Self-resizing calendar queue: `O(1)` amortized hold operations
    /// at steady state (Brown, CACM 1988). The default.
    #[default]
    Calendar,
    /// Binary heap over inverted keys: `O(log n)`, the reference
    /// implementation the calendar backend is verified against.
    Heap,
}

impl EventQueueKind {
    /// Parse `"calendar"` or `"heap"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "calendar" => Ok(EventQueueKind::Calendar),
            "heap" => Ok(EventQueueKind::Heap),
            other => Err(format!("unknown event queue {other:?} (calendar|heap)")),
        }
    }
}

impl std::fmt::Display for EventQueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EventQueueKind::Calendar => "calendar",
            EventQueueKind::Heap => "heap",
        })
    }
}

/// Heap entry: an opaque payload `T` under an *inverted* ordering so
/// `BinaryHeap`'s max-heap pops the smallest key first. Internal —
/// the public API deals in `(EventKey, T)` pairs only.
#[derive(Debug)]
struct Scheduled<T> {
    key: EventKey,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: the smallest key (earliest event) pops first.
        other.key.cmp(&self.key)
    }
}

/// Smallest and largest ring sizes the calendar will resize to.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;

/// The calendar backend. Invariant: whenever the queue is non-empty,
/// `current` is non-empty and holds (sorted descending by key, so the
/// global minimum is `current.last()`) exactly the pending events with
/// `at < day_end`; ring bucket `i` holds the unsorted events of day
/// `[day_end + i·width, day_end + (i+1)·width)`; `far` min-heaps
/// everything at or beyond the ring horizon.
#[derive(Debug)]
struct Calendar<T> {
    /// The day being drained, sorted descending by key (pop = `pop()`
    /// off the tail).
    current: Vec<(EventKey, T)>,
    /// Exclusive end of the current day, in ms.
    day_end: u64,
    /// Day width in ms (≥ 1).
    width: u64,
    /// Future days; `ring[i]` covers `[day_end + i·width, +width)`.
    ring: VecDeque<Vec<(EventKey, T)>>,
    /// Events held in `ring` (so ring exhaustion is O(1) to detect).
    in_ring: usize,
    /// Overflow events at or beyond `day_end + ring.len()·width`.
    far: BinaryHeap<Scheduled<T>>,
    len: usize,
}

impl<T> Calendar<T> {
    fn new() -> Self {
        Calendar {
            current: Vec::new(),
            day_end: 0,
            width: 1,
            ring: VecDeque::from_iter((0..MIN_BUCKETS).map(|_| Vec::new())),
            in_ring: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    fn push(&mut self, key: EventKey, payload: T) {
        self.len += 1;
        if self.len == 1 {
            // Queue was empty: re-anchor the current day at the event.
            self.day_end = key.at.as_ms().saturating_add(self.width);
            self.current.push((key, payload));
            return;
        }
        let at = key.at.as_ms();
        if at < self.day_end {
            // Into the (sorted) current day; unique keys make the
            // binary-search position deterministic. A duplicate key
            // (a caller contract violation the heap backend would also
            // accept silently) slots in adjacent to its twin.
            let pos = match self.current.binary_search_by(|(k, _)| key.cmp(k)) {
                Ok(pos) | Err(pos) => pos,
            };
            self.current.insert(pos, (key, payload));
        } else {
            let idx = ((at - self.day_end) / self.width) as usize;
            if idx < self.ring.len() {
                self.ring[idx].push((key, payload));
                self.in_ring += 1;
            } else {
                self.far.push(Scheduled { key, payload });
            }
        }
        if self.len > 2 * self.ring.len() && self.ring.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    fn pop(&mut self) -> Option<(EventKey, T)> {
        let (key, payload) = self.current.pop()?;
        self.len -= 1;
        if self.current.is_empty() && self.len > 0 {
            self.advance();
        } else if self.len < self.ring.len() / 8 && self.ring.len() > MIN_BUCKETS {
            self.rebuild();
        }
        Some((key, payload))
    }

    fn peek(&self) -> Option<&(EventKey, T)> {
        self.current.last()
    }

    /// Walk forward day by day until the current day is non-empty.
    /// Called only when `current` is empty and events remain.
    fn advance(&mut self) {
        loop {
            if self.in_ring == 0 {
                // Only overflow events remain: start the next "year"
                // re-anchored at their minimum.
                debug_assert!(!self.far.is_empty());
                self.rebuild();
                return;
            }
            // Advance one day: recycle the bucket, move the horizon,
            // and drip overflow events that entered it into the ring.
            let bucket = self.ring.pop_front().expect("ring is never empty");
            self.day_end += self.width;
            self.ring.push_back(Vec::new());
            while let Some(s) = self.far.peek() {
                let idx = ((s.key.at.as_ms() - self.day_end) / self.width) as usize;
                if idx >= self.ring.len() {
                    break;
                }
                let s = self.far.pop().expect("peeked");
                self.ring[idx].push((s.key, s.payload));
                self.in_ring += 1;
            }
            if !bucket.is_empty() {
                self.in_ring -= bucket.len();
                self.current = bucket;
                // Descending, so the earliest key sits at the tail.
                self.current.sort_unstable_by(|(a, _), (b, _)| b.cmp(a));
                return;
            }
        }
    }

    /// Collect every pending event and redistribute it under a fresh
    /// geometry: ring size ≈ population (power of two in
    /// `[MIN_BUCKETS, MAX_BUCKETS]`), day width ≈ 3× the average
    /// inter-event gap of the earlier half of the queue, day origin at
    /// the earliest pending event.
    fn rebuild(&mut self) {
        let mut all: Vec<(EventKey, T)> = Vec::with_capacity(self.len);
        all.append(&mut self.current);
        for bucket in self.ring.iter_mut() {
            all.append(bucket);
        }
        self.in_ring = 0;
        while let Some(s) = self.far.pop() {
            all.push((s.key, s.payload));
        }
        debug_assert_eq!(all.len(), self.len);
        if all.is_empty() {
            return;
        }

        // Width policy on the earlier half only: far-future outliers
        // (long-delay timers) must not stretch the day width, or the
        // near-term bulk would all collapse into one giant day.
        let half = (all.len() / 2).max(1).min(all.len() - 1);
        let (lower, median, _) = all.select_nth_unstable_by(half, |(a, _), (b, _)| a.cmp(b));
        let min_at = lower
            .iter()
            .map(|(k, _)| k.at.as_ms())
            .min()
            .unwrap_or(median.0.at.as_ms());
        let lower_span = median.0.at.as_ms() - min_at;
        let lower_count = half.max(1) as u64;
        self.width = (lower_span.saturating_mul(3) / lower_count).max(1);

        let buckets = all
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.ring = VecDeque::from_iter((0..buckets).map(|_| Vec::new()));
        self.day_end = min_at.saturating_add(self.width);

        for (key, payload) in all {
            let at = key.at.as_ms();
            if at < self.day_end {
                self.current.push((key, payload));
            } else {
                let idx = ((at - self.day_end) / self.width) as usize;
                if idx < self.ring.len() {
                    self.ring[idx].push((key, payload));
                    self.in_ring += 1;
                } else {
                    self.far.push(Scheduled { key, payload });
                }
            }
        }
        self.current.sort_unstable_by(|(a, _), (b, _)| b.cmp(a));
        debug_assert!(!self.current.is_empty(), "day origin holds the minimum");
    }
}

#[derive(Debug)]
enum Backend<T> {
    Heap(BinaryHeap<Scheduled<T>>),
    Calendar(Calendar<T>),
}

/// A deterministic future-event list (see the module docs for the
/// ordering contract and the two storage backends).
#[derive(Debug)]
pub struct EventQueue<T> {
    backend: Backend<T>,
    peak: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue on the default backend
    /// ([`EventQueueKind::Calendar`]).
    pub fn new() -> Self {
        Self::with_kind(EventQueueKind::default())
    }

    /// An empty queue on an explicit backend.
    pub fn with_kind(kind: EventQueueKind) -> Self {
        EventQueue {
            backend: match kind {
                EventQueueKind::Heap => Backend::Heap(BinaryHeap::new()),
                EventQueueKind::Calendar => Backend::Calendar(Calendar::new()),
            },
            peak: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> EventQueueKind {
        match &self.backend {
            Backend::Heap(_) => EventQueueKind::Heap,
            Backend::Calendar(_) => EventQueueKind::Calendar,
        }
    }

    /// Schedule `payload` for delivery under `key`. The caller is
    /// responsible for key uniqueness (the engine derives keys from
    /// per-stream counters, which guarantees it).
    pub fn push(&mut self, key: EventKey, payload: T) {
        match &mut self.backend {
            Backend::Heap(h) => h.push(Scheduled { key, payload }),
            Backend::Calendar(c) => c.push(key, payload),
        }
        self.peak = self.peak.max(self.len());
    }

    /// Remove and return the event with the smallest key, if any.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|s| (s.key, s.payload)),
            Backend::Calendar(c) => c.pop(),
        }
    }

    /// As [`EventQueue::pop`], but only if the earliest event is due
    /// strictly before `limit` — the engine's epoch inner loop, as one
    /// queue operation instead of a peek-then-pop pair.
    pub fn pop_if_before(&mut self, limit: SimTime) -> Option<(EventKey, T)> {
        if self.peek_time()? >= limit {
            return None;
        }
        self.pop()
    }

    /// The earliest pending event: its delivery time and a view of its
    /// payload.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|s| (s.key.at, &s.payload)),
            Backend::Calendar(c) => c.peek().map(|(k, p)| (k.at, p)),
        }
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|k| k.at)
    }

    /// The full key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|s| s.key),
            Backend::Calendar(c) => c.peek().map(|(k, _)| *k),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue length over the queue's lifetime
    /// (the "peak queue depth" benchmark metric).
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at_ms: u64, src: u64, seq: u64) -> EventKey {
        EventKey {
            at: SimTime::from_ms(at_ms),
            src,
            seq,
        }
    }

    const BOTH: [EventQueueKind; 2] = [EventQueueKind::Calendar, EventQueueKind::Heap];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.kind(), kind);
            q.push(key(30, 0, 0), "c");
            q.push(key(10, 0, 1), "a");
            q.push(key(20, 0, 2), "b");
            assert_eq!(q.pop().unwrap().1, "a");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "c");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn same_instant_same_stream_is_fifo() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100u64 {
                q.push(key(5, 3, i), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn same_instant_orders_by_stream() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(key(5, 7, 0), "node6");
            q.push(key(5, 0, 9), "external");
            q.push(key(5, 2, 0), "node1");
            assert_eq!(q.pop().unwrap().1, "external");
            assert_eq!(q.pop().unwrap().1, "node1");
            assert_eq!(q.pop().unwrap().1, "node6");
        }
    }

    #[test]
    fn interleaved_push_pop() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(key(10, 0, 0), 1);
            q.push(key(5, 0, 1), 0);
            assert_eq!(q.pop().unwrap().1, 0);
            q.push(key(7, 0, 2), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 1);
        }
    }

    #[test]
    fn peek_len_and_peak() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            assert_eq!(q.peek_key(), None);
            assert_eq!(q.peek(), None::<(SimTime, &())>);
            q.push(key(42, 0, 0), ());
            q.push(key(41, 0, 1), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.peak_len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_ms(41)));
            assert_eq!(q.peek(), Some((SimTime::from_ms(41), &())));
            q.pop();
            q.pop();
            assert_eq!(q.peak_len(), 2, "peak survives drains");
        }
    }

    #[test]
    fn pop_if_before_respects_the_limit() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(key(10, 0, 0), "x");
            assert!(q.pop_if_before(SimTime::from_ms(10)).is_none());
            assert!(q.pop_if_before(SimTime::from_ms(5)).is_none());
            assert_eq!(q.len(), 1, "a refused pop must not drop the event");
            let (k, p) = q.pop_if_before(SimTime::from_ms(11)).unwrap();
            assert_eq!((k.at, p), (SimTime::from_ms(10), "x"));
            assert!(q.pop_if_before(SimTime::from_ms(u64::MAX)).is_none());
        }
    }

    #[test]
    fn zero_time_events() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(key(0, 0, 0), "x");
            assert_eq!(q.pop().unwrap().0.at, SimTime::ZERO);
        }
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        // Events hours apart at ms resolution exercise the overflow
        // heap and the next-year rebuild.
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            let hour = 3_600_000u64;
            q.push(key(3 * hour, 0, 0), 3u64);
            q.push(key(1, 0, 1), 0);
            q.push(key(hour, 0, 2), 1);
            q.push(key(2 * hour + 5, 0, 3), 2);
            for want in 0..4u64 {
                assert_eq!(q.pop().unwrap().1, want, "kind={kind}");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn grows_and_shrinks_through_rebuilds() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            // Push enough to force several grow rebuilds…
            for i in 0..10_000u64 {
                q.push(key((i * 37) % 4096, 1, i), i);
            }
            assert_eq!(q.len(), 10_000);
            // …then drain fully (shrink rebuilds), checking order.
            let mut last = None;
            let mut n = 0;
            while let Some((k, _)) = q.pop() {
                if let Some(prev) = last {
                    assert!(k > prev);
                }
                last = Some(k);
                n += 1;
            }
            assert_eq!(n, 10_000);
        }
    }

    #[test]
    fn queue_kind_parses_and_displays() {
        assert_eq!(
            EventQueueKind::parse("calendar").unwrap(),
            EventQueueKind::Calendar
        );
        assert_eq!(EventQueueKind::parse("heap").unwrap(), EventQueueKind::Heap);
        assert!(EventQueueKind::parse("wheel").is_err());
        assert_eq!(EventQueueKind::Calendar.to_string(), "calendar");
        assert_eq!(EventQueueKind::Heap.to_string(), "heap");
        assert_eq!(EventQueueKind::default(), EventQueueKind::Calendar);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn key(at_ms: u64, src: u64, seq: u64) -> EventKey {
        EventKey {
            at: SimTime::from_ms(at_ms),
            src,
            seq,
        }
    }

    proptest! {
        /// The queue is a stable priority queue over full keys:
        /// popping yields non-decreasing keys, and within one source
        /// stream the per-stream sequence numbers come out in order.
        #[test]
        fn pop_order_is_sorted_by_key(entries in proptest::collection::vec((0u64..1000, 0u64..4), 0..200)) {
            for kind in [EventQueueKind::Calendar, EventQueueKind::Heap] {
                let mut q = EventQueue::with_kind(kind);
                let mut seqs = [0u64; 4];
                for (i, &(t, src)) in entries.iter().enumerate() {
                    let seq = seqs[src as usize];
                    seqs[src as usize] += 1;
                    q.push(key(t, src, seq), i);
                }
                let mut last: Option<EventKey> = None;
                let mut popped = 0usize;
                while let Some((k, _)) = q.pop() {
                    popped += 1;
                    if let Some(lk) = last {
                        prop_assert!(k > lk, "keys must strictly increase");
                    }
                    last = Some(k);
                }
                prop_assert_eq!(popped, entries.len());
            }
        }

        /// Backend parity: for an arbitrary insert sequence — narrow
        /// time range, so same-timestamp bursts are common — the
        /// calendar queue pops the exact payload sequence the binary
        /// heap does.
        #[test]
        fn calendar_matches_heap_pop_order(entries in proptest::collection::vec((0u64..64, 0u64..6), 0..300)) {
            let mut cal = EventQueue::with_kind(EventQueueKind::Calendar);
            let mut heap = EventQueue::with_kind(EventQueueKind::Heap);
            let mut seqs = [0u64; 6];
            for (i, &(t, src)) in entries.iter().enumerate() {
                let seq = seqs[src as usize];
                seqs[src as usize] += 1;
                cal.push(key(t, src, seq), i);
                heap.push(key(t, src, seq), i);
            }
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b, "backends diverged");
                if a.is_none() {
                    break;
                }
            }
        }

        /// Backend parity under interleaved pops: drain a pseudorandom
        /// prefix between insert batches (the engine's actual usage:
        /// epochs of pops between bursts of pushes).
        #[test]
        fn calendar_matches_heap_interleaved(batches in proptest::collection::vec((proptest::collection::vec((0u64..48, 0u64..3), 0..40), 0usize..30), 1..8)) {
            let mut cal = EventQueue::with_kind(EventQueueKind::Calendar);
            let mut heap = EventQueue::with_kind(EventQueueKind::Heap);
            let mut seqs = [0u64; 3];
            let mut clock = 0u64; // keys must never be scheduled "past"
            let mut i = 0usize;
            for (pushes, pops) in &batches {
                for &(dt, src) in pushes {
                    let seq = seqs[src as usize];
                    seqs[src as usize] += 1;
                    cal.push(key(clock + dt, src, seq), i);
                    heap.push(key(clock + dt, src, seq), i);
                    i += 1;
                }
                for _ in 0..*pops {
                    let (a, b) = (cal.pop(), heap.pop());
                    prop_assert_eq!(&a, &b, "backends diverged mid-drain");
                    if let Some((k, _)) = a {
                        clock = k.at.as_ms();
                    }
                }
            }
        }
    }
}
