//! The deterministic event queue.
//!
//! A binary heap keyed by [`EventKey`] — `(time, source stream,
//! per-stream sequence number)`. The key is a *total order over all
//! events of a run that does not depend on how the simulation is
//! sharded*: external injections draw from one engine-wide counter
//! (stream 0), and every event a node emits is numbered by that node's
//! own emission counter (stream `node_id + 1`). Because each node's
//! processing order is itself deterministic, the keys — and therefore
//! the global event order — are identical whether the run executes on
//! one shard or many. This is the property the engine's epoch barrier
//! relies on for bit-identical parallel execution (see
//! [`crate::engine`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Globally unique, shard-layout-independent ordering key of a
/// scheduled event.
///
/// Ordering is lexicographic: delivery instant first, then the source
/// stream (0 = externally injected; `n + 1` = emitted by node `n`),
/// then the per-stream sequence number. Same-instant events from the
/// same stream are therefore FIFO, and ties across streams resolve by
/// stream id — deterministically, without any global insertion
/// counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// Delivery instant.
    pub at: SimTime,
    /// Source stream: 0 for external injections, `node_id + 1` for
    /// node-emitted events.
    pub src: u64,
    /// Sequence number within the source stream.
    pub seq: u64,
}

/// An entry in the queue: an opaque payload `T` scheduled under `key`.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// The ordering key (delivery instant + tie-breakers).
    pub key: EventKey,
    /// The payload to deliver.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key (the
        // earliest event) pops first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    peak: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            peak: 0,
        }
    }

    /// Schedule `payload` for delivery under `key`. The caller is
    /// responsible for key uniqueness (the engine derives keys from
    /// per-stream counters, which guarantees it).
    pub fn push(&mut self, key: EventKey, payload: T) {
        self.heap.push(Scheduled { key, payload });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Remove and return the event with the smallest key, if any.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.key.at)
    }

    /// The full key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|s| s.key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the queue length over the queue's lifetime
    /// (the "peak queue depth" benchmark metric).
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at_ms: u64, src: u64, seq: u64) -> EventKey {
        EventKey {
            at: SimTime::from_ms(at_ms),
            src,
            seq,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(key(30, 0, 0), "c");
        q.push(key(10, 0, 1), "a");
        q.push(key(20, 0, 2), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_same_stream_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(key(5, 3, i), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn same_instant_orders_by_stream() {
        let mut q = EventQueue::new();
        q.push(key(5, 7, 0), "node6");
        q.push(key(5, 0, 9), "external");
        q.push(key(5, 2, 0), "node1");
        assert_eq!(q.pop().unwrap().payload, "external");
        assert_eq!(q.pop().unwrap().payload, "node1");
        assert_eq!(q.pop().unwrap().payload, "node6");
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(key(10, 0, 0), 1);
        q.push(key(5, 0, 1), 0);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.push(key(7, 0, 2), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
    }

    #[test]
    fn peek_len_and_peak() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.peek_key(), None);
        q.push(key(42, 0, 0), ());
        q.push(key(41, 0, 1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(41)));
        q.pop();
        q.pop();
        assert_eq!(q.peak_len(), 2, "peak survives drains");
    }

    #[test]
    fn zero_time_events() {
        let mut q = EventQueue::new();
        q.push(key(0, 0, 0), "x");
        assert_eq!(q.pop().unwrap().key.at, SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue is a stable priority queue over full keys:
        /// popping yields non-decreasing keys, and within one source
        /// stream the per-stream sequence numbers come out in order.
        #[test]
        fn pop_order_is_sorted_by_key(entries in proptest::collection::vec((0u64..1000, 0u64..4), 0..200)) {
            let mut q = EventQueue::new();
            let mut seqs = [0u64; 4];
            for (i, &(t, src)) in entries.iter().enumerate() {
                let seq = seqs[src as usize];
                seqs[src as usize] += 1;
                q.push(EventKey { at: SimTime::from_ms(t), src, seq }, i);
            }
            let mut last: Option<EventKey> = None;
            let mut popped = 0usize;
            while let Some(s) = q.pop() {
                popped += 1;
                if let Some(lk) = last {
                    prop_assert!(s.key > lk, "keys must strictly increase");
                }
                last = Some(s.key);
            }
            prop_assert_eq!(popped, entries.len());
        }
    }
}
