//! Churn generation: session-based node failures and recoveries.
//!
//! The paper's evaluation runs in a stable environment and announces
//! churn analysis as ongoing work (§8); the protocol sections (§5)
//! nevertheless specify full failure handling. This module generates
//! deterministic churn scripts — alternating up/down sessions with
//! exponentially distributed lengths — used by the recovery tests and
//! the `churn` experiment extension.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// What happens to a node at a churn event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChurnKind {
    /// The node crashes (or leaves without notice).
    Down,
    /// The node comes back online.
    Up,
}

/// One scheduled churn action.
#[derive(Clone, Copy, Debug)]
pub struct ChurnEvent {
    /// When the action happens.
    pub at: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Crash or recovery.
    pub kind: ChurnKind,
}

/// Parameters of the session-based churn model.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Churn starts after this warm-up offset.
    pub start: SimTime,
    /// No churn events are generated after this time.
    pub end: SimTime,
    /// Mean online-session length (exponential).
    pub mean_session: SimDuration,
    /// Mean offline time before recovery (exponential).
    pub mean_downtime: SimDuration,
    /// If set, a node that goes down stays down forever (pure failure
    /// model rather than rejoin model).
    pub permanent: bool,
}

impl ChurnConfig {
    /// A moderate default: 2 h mean sessions, 10 min mean downtime.
    pub fn moderate(start: SimTime, end: SimTime) -> Self {
        ChurnConfig {
            start,
            end,
            mean_session: SimDuration::from_hours(2),
            mean_downtime: SimDuration::from_mins(10),
            permanent: false,
        }
    }
}

/// A deterministic list of churn events for a set of nodes.
#[derive(Clone, Debug, Default)]
pub struct ChurnScript {
    events: Vec<ChurnEvent>,
}

impl ChurnScript {
    /// An empty script (no churn).
    pub fn none() -> Self {
        ChurnScript::default()
    }

    /// Generate alternating down/up events for each node in
    /// `affected`, deterministically from `seed`.
    pub fn generate(cfg: &ChurnConfig, affected: &[NodeId], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4_11);
        let mut events = Vec::new();
        for &node in affected {
            let mut t = cfg.start;
            loop {
                // Online session, then crash.
                t += exponential(&mut rng, cfg.mean_session);
                if t >= cfg.end {
                    break;
                }
                events.push(ChurnEvent {
                    at: t,
                    node,
                    kind: ChurnKind::Down,
                });
                if cfg.permanent {
                    break;
                }
                // Offline period, then recovery.
                t += exponential(&mut rng, cfg.mean_downtime);
                if t >= cfg.end {
                    break;
                }
                events.push(ChurnEvent {
                    at: t,
                    node,
                    kind: ChurnKind::Up,
                });
            }
        }
        events.sort_by_key(|e| e.at);
        ChurnScript { events }
    }

    /// A script that kills exactly the given nodes at the given times
    /// (targeted failure injection, e.g. killing a directory peer).
    ///
    /// Unsorted input is accepted (the script sorts it), but a
    /// duplicate `(time, node)` pair panics: a node killed twice at
    /// the same instant would silently corrupt the per-node down/up
    /// alternation every other script constructor guarantees, and the
    /// caller is always in a position to dedupe deliberately.
    pub fn kill_at(kills: &[(SimTime, NodeId)]) -> Self {
        let mut events: Vec<ChurnEvent> = kills
            .iter()
            .map(|(at, node)| ChurnEvent {
                at: *at,
                node: *node,
                kind: ChurnKind::Down,
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.node.0));
        for w in events.windows(2) {
            assert!(
                (w[0].at, w[0].node) != (w[1].at, w[1].node),
                "ChurnScript::kill_at: duplicate kill of {:?} at {:?} — \
                 dedupe the kill list before building the script",
                w[0].node,
                w[0].at,
            );
        }
        ChurnScript { events }
    }

    /// The ordered events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Install every event of this script into `engine`.
    pub fn install<M, N>(&self, engine: &mut crate::engine::Engine<M, N>)
    where
        M: crate::engine::Message,
        N: crate::engine::Node<M>,
    {
        for ev in &self.events {
            match ev.kind {
                ChurnKind::Down => engine.schedule_down(ev.at, ev.node),
                ChurnKind::Up => engine.schedule_up(ev.at, ev.node),
            }
        }
    }
}

/// Exponentially distributed duration with the given mean (at least
/// 1 ms so events never collapse onto the same instant en masse).
fn exponential(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let ms = -u.ln() * mean.as_ms() as f64;
    SimDuration::from_ms((ms.round() as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig::moderate(SimTime::from_hours(1), SimTime::from_hours(24))
    }

    #[test]
    fn script_is_deterministic() {
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let a = ChurnScript::generate(&cfg(), &nodes, 7);
        let b = ChurnScript::generate(&cfg(), &nodes, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.node, y.node);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn events_are_time_ordered_and_in_range() {
        let nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
        let s = ChurnScript::generate(&cfg(), &nodes, 3);
        assert!(!s.is_empty(), "24h of churn should produce events");
        let mut last = SimTime::ZERO;
        for e in s.events() {
            assert!(e.at >= last);
            assert!(e.at >= cfg().start && e.at < cfg().end);
            last = e.at;
        }
    }

    #[test]
    fn per_node_alternates_down_up() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let s = ChurnScript::generate(&cfg(), &nodes, 11);
        for &n in &nodes {
            let kinds: Vec<ChurnKind> = s
                .events()
                .iter()
                .filter(|e| e.node == n)
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    ChurnKind::Down
                } else {
                    ChurnKind::Up
                };
                assert_eq!(*k, expect, "node {n:?} event {i}");
            }
        }
    }

    #[test]
    fn permanent_failures_never_recover() {
        let cfg = ChurnConfig {
            permanent: true,
            ..cfg()
        };
        let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
        let s = ChurnScript::generate(&cfg, &nodes, 5);
        assert!(s.events().iter().all(|e| e.kind == ChurnKind::Down));
        // At most one event per node.
        for &n in &nodes {
            assert!(s.events().iter().filter(|e| e.node == n).count() <= 1);
        }
    }

    #[test]
    fn kill_at_sorted() {
        let s = ChurnScript::kill_at(&[
            (SimTime::from_secs(10), NodeId(2)),
            (SimTime::from_secs(5), NodeId(1)),
        ]);
        assert_eq!(s.events()[0].node, NodeId(1));
        assert_eq!(s.events()[1].node, NodeId(2));
        assert!(s.events().iter().all(|e| e.kind == ChurnKind::Down));
    }

    #[test]
    fn kill_at_accepts_same_node_at_distinct_times_and_same_time_distinct_nodes() {
        let s = ChurnScript::kill_at(&[
            (SimTime::from_secs(5), NodeId(1)),
            (SimTime::from_secs(5), NodeId(2)),
            (SimTime::from_secs(9), NodeId(1)),
        ]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate kill")]
    fn kill_at_rejects_duplicate_time_node_pairs() {
        let _ = ChurnScript::kill_at(&[
            (SimTime::from_secs(9), NodeId(3)),
            (SimTime::from_secs(5), NodeId(1)),
            (SimTime::from_secs(9), NodeId(3)),
        ]);
    }
}
