//! Lock-free synchronization primitives for the sharded engine's
//! epoch loop: a sense-reversing barrier tuned for short rounds and a
//! double-buffered mailbox grid for the staged cross-shard exchange.
//!
//! Both exist because the barrier round of
//! [`Engine::run_sharded`](crate::engine::Engine) is *short* — at a
//! 60 ms lookahead a saturated run crosses the barrier thousands of
//! times per simulated minute, so a `std::sync::Barrier` (mutex +
//! condvar, two kernel round trips per wait under contention) and
//! `Mutex<Vec>` inbox appends dominate the wall clock once the
//! per-round work shrinks. The replacements here never touch the
//! kernel on the happy path when the host has a core per shard
//! (waiters spin, parking only on oversubscription) and recycle every
//! buffer across rounds, so the steady-state epoch loop performs no
//! allocation and takes no hot-path lock.
//!
//! ## Memory ordering contract
//!
//! [`SenseBarrier::wait`] is a full synchronization point: every
//! write performed by any participating thread *before* its `wait`
//! happens-before every read performed by any thread *after* that
//! same `wait` returns (arrivals release into the counter, the
//! release sequence carries through the fetch-sub chain, and both the
//! last arriver's sense flip and the waiters' sense loads are
//! acquire/release). [`MailboxGrid`] relies on exactly this: a slot
//! written before a barrier may be read by its receiver after it with
//! no further synchronization.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How many times a waiter polls the sense flag with a pure spin hint
/// before it starts yielding the CPU between polls (spin mode only:
/// hosts with at least as many cores as parties).
const SPIN_BUDGET: u32 = 256;

/// A sense-reversing barrier for `parties` threads.
///
/// Each thread carries a [`SenseWaiter`] whose private sense flips
/// every round; the barrier releases a round by flipping its shared
/// sense to match. On a host with at least as many cores as parties —
/// the configuration where barrier latency matters — a wait is one
/// atomic fetch-sub per arrival plus a bounded spin on the sense
/// flag: the classic centralized barrier (Mellor-Crummey & Scott,
/// TOCS 1991) that beats `std::sync::Barrier` by an order of
/// magnitude on rounds shorter than a scheduler quantum.
///
/// On an *oversubscribed* host (more shards than cores — the 1-CPU CI
/// smoke) spinning or yield-looping only steals the quantum from the
/// threads being waited on, so waiters park on a mutex + condvar
/// instead, exactly like `std::sync::Barrier`. The mode is fixed at
/// construction, so all parties always take the same path.
pub struct SenseBarrier {
    parties: usize,
    /// Threads still missing from the current round.
    count: AtomicUsize,
    /// Flips each round; waiters spin until it equals their private
    /// sense.
    sense: AtomicBool,
    /// Whether the host has at least `parties` cores (spin mode); if
    /// not, waiters park instead.
    spin: bool,
    /// Parking lot for the oversubscribed path; unused in spin mode.
    lock: Mutex<()>,
    parked: Condvar,
}

impl SenseBarrier {
    /// A barrier for `parties` threads (must be ≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        SenseBarrier {
            parties,
            count: AtomicUsize::new(parties),
            sense: AtomicBool::new(false),
            spin: cores >= parties,
            lock: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    /// The per-thread handle; create exactly one per participating
    /// thread, before the first round.
    pub fn waiter(&self) -> SenseWaiter {
        SenseWaiter { sense: true }
    }

    /// Block until all `parties` threads have called `wait` with
    /// their waiter for this round.
    pub fn wait(&self, w: &mut SenseWaiter) {
        let my_sense = w.sense;
        w.sense = !my_sense;
        // The AcqRel fetch-sub makes every arriver's prior writes
        // visible to the last arriver (release sequence through the
        // RMW chain), and the Release store / Acquire loads on the
        // sense flag publish them to every waiter.
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.count.store(self.parties, Ordering::Relaxed);
            if self.spin {
                self.sense.store(my_sense, Ordering::Release);
            } else {
                // Flip under the lock so a parking waiter either sees
                // the new sense before it sleeps or is already on the
                // condvar when the wakeup fires — no missed notify.
                let guard = self.lock.lock().unwrap();
                self.sense.store(my_sense, Ordering::Release);
                drop(guard);
                self.parked.notify_all();
            }
            return;
        }
        if self.spin {
            let mut polls: u32 = 0;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if polls < SPIN_BUDGET {
                    polls += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        } else {
            let mut guard = self.lock.lock().unwrap();
            while self.sense.load(Ordering::Acquire) != my_sense {
                guard = self.parked.wait(guard).unwrap();
            }
        }
    }
}

/// Per-thread state for a [`SenseBarrier`]: the thread's private
/// sense, flipped on every wait.
pub struct SenseWaiter {
    sense: bool,
}

/// A `shards × shards` grid of single-producer single-consumer
/// mailboxes, double-buffered by round parity, for the epoch-boundary
/// cross-shard exchange.
///
/// Slot `(parity, sender, receiver)` is written by thread `sender`
/// *before* the barrier of a round with that parity
/// ([`MailboxGrid::publish`] swaps the sender's staged batch in) and
/// drained by thread `receiver` *after* the same barrier
/// ([`MailboxGrid::drain`]). Publishing is a `Vec` swap: the sender
/// hands over its full batch and takes back the empty-but-allocated
/// buffer the receiver left behind two rounds ago, so buffers
/// circulate forever and the steady-state exchange allocates nothing.
///
/// Draining visits senders in index order and batches preserve stage
/// order, so the merged inbox order is a pure function of
/// (sender shard, stage order) — the determinism contract the seed-42
/// pins in `tests/shard_parity.rs` hold the engine to. (The retired
/// `Mutex<Vec>` inboxes appended in racy arrival order; that was
/// result-neutral only because event keys are unique, but the grid
/// makes the order itself deterministic.)
///
/// # Why the parity dimension
///
/// With a single barrier per round, a sender's publish for round
/// `r + 1` may overlap a slow receiver's drain of round `r` — the two
/// operations are separated by one barrier, not two. Indexing slots
/// by `r & 1` pushes any write/drain pair on the *same* slot two
/// rounds apart, i.e. across two barrier synchronizations, which
/// makes every slot access a data-race-free handoff (see the module
/// docs for the ordering argument).
pub struct MailboxGrid<T> {
    k: usize,
    /// `2 · k · k` slots, indexed `parity · k² + sender · k +
    /// receiver`.
    slots: Box<[UnsafeCell<Vec<T>>]>,
}

// SAFETY: a slot is only ever touched by its sender (publish, before
// the round's barrier) and its receiver (drain, after it); the
// barrier orders the two, and the parity split keeps same-slot
// accesses from consecutive rounds two barriers apart. `T: Send`
// because values cross from the sender's thread to the receiver's.
unsafe impl<T: Send> Sync for MailboxGrid<T> {}

impl<T> MailboxGrid<T> {
    /// An empty grid for `k` shards.
    pub fn new(k: usize) -> Self {
        MailboxGrid {
            k,
            slots: (0..2 * k * k)
                .map(|_| UnsafeCell::new(Vec::new()))
                .collect(),
        }
    }

    /// Number of shards the grid serves.
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Publish `sender`'s staged batches for this round: swap
    /// `outbox[receiver]` into slot `(parity, sender, receiver)` for
    /// every other shard, leaving the recycled (empty) buffer in the
    /// outbox.
    ///
    /// # Safety
    ///
    /// The caller must be the unique thread acting as `sender`, must
    /// call this *before* the round's barrier, and every receiver
    /// must drain with the same `parity` *after* that barrier.
    pub unsafe fn publish(&self, parity: usize, sender: usize, outbox: &mut [Vec<T>]) {
        debug_assert_eq!(outbox.len(), self.k);
        let base = (parity & 1) * self.k * self.k + sender * self.k;
        for (receiver, batch) in outbox.iter_mut().enumerate() {
            if receiver == sender {
                debug_assert!(batch.is_empty(), "self-sends are routed locally");
                continue;
            }
            // SAFETY: per the contract above, no other thread touches
            // this slot between the previous barrier and the next.
            let slot = unsafe { &mut *self.slots[base + receiver].get() };
            debug_assert!(slot.is_empty(), "slot not drained last round");
            std::mem::swap(slot, batch);
        }
    }

    /// Drain every batch published *to* `receiver` this round, in
    /// sender-index order, preserving stage order within each batch.
    /// Buffers are emptied in place so their capacity returns to the
    /// senders on the next same-parity publish.
    ///
    /// # Safety
    ///
    /// The caller must be the unique thread acting as `receiver` and
    /// must call this *after* the barrier of the round in which the
    /// senders published with the same `parity`.
    pub unsafe fn drain(&self, parity: usize, receiver: usize, mut sink: impl FnMut(T)) {
        let base = (parity & 1) * self.k * self.k;
        for sender in 0..self.k {
            if sender == receiver {
                continue;
            }
            // SAFETY: per the contract above, the sender finished its
            // swap before the barrier and will not touch the slot
            // again until two barriers from now.
            let slot = unsafe { &mut *self.slots[base + sender * self.k + receiver].get() };
            for item in slot.drain(..) {
                sink(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_counting_rounds() {
        let parties = 4;
        let rounds = 200;
        let barrier = SenseBarrier::new(parties);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    let mut w = barrier.waiter();
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut w);
                        // After the wait, every thread's increment for
                        // this round must be visible.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (r + 1) * parties as u64, "round {r}: saw {seen}");
                        barrier.wait(&mut w);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * parties as u64);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut w = b.waiter();
        for _ in 0..10 {
            b.wait(&mut w);
        }
    }

    #[test]
    fn grid_delivers_in_sender_then_stage_order_and_recycles() {
        let k = 3;
        let grid: MailboxGrid<(usize, u32)> = MailboxGrid::new(k);
        let barrier = SenseBarrier::new(k);
        let rounds = 50u32;
        std::thread::scope(|s| {
            for me in 0..k {
                let grid = &grid;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut w = barrier.waiter();
                    let mut outbox: Vec<Vec<(usize, u32)>> = vec![Vec::new(); k];
                    for r in 0..rounds {
                        let parity = (r & 1) as usize;
                        for (j, batch) in outbox.iter_mut().enumerate() {
                            if j != me {
                                batch.push((me, 2 * r));
                                batch.push((me, 2 * r + 1));
                            }
                        }
                        // SAFETY: unique sender, pre-barrier.
                        unsafe { grid.publish(parity, me, &mut outbox) };
                        for batch in &outbox {
                            assert!(batch.is_empty(), "publish must take the batch");
                        }
                        barrier.wait(&mut w);
                        let mut got = Vec::new();
                        // SAFETY: unique receiver, post-barrier.
                        unsafe { grid.drain(parity, me, |item| got.push(item)) };
                        let expect: Vec<(usize, u32)> = (0..k)
                            .filter(|s| *s != me)
                            .flat_map(|s| [(s, 2 * r), (s, 2 * r + 1)])
                            .collect();
                        assert_eq!(got, expect, "round {r} at shard {me}");
                        barrier.wait(&mut w);
                    }
                });
            }
        });
    }
}
