//! Underlay topology: node placement, link latencies, and network
//! localities.
//!
//! The paper generates a 5000-node underlay with BRITE and assigns
//! link latencies between 10 and 500 ms, then splits the Internet into
//! `k` *network localities* using a landmark-based technique
//! (Ratnasamy et al., INFOCOM 2002): every peer measures its latency
//! to a small set of well-known landmarks and derives its locality
//! from those measurements.
//!
//! We reproduce that pipeline with a metric-space embedding:
//!
//! 1. `k` cluster centres are placed on a circle in the unit square
//!    (geographically dispersed regions);
//! 2. each node is assigned to a region with non-uniform probability
//!    (the paper: localities are "non-uniformly populated") and placed
//!    around its centre with Gaussian spread, plus a small fraction of
//!    uniformly scattered "background" nodes;
//! 3. the latency of a link is an affine function of the Euclidean
//!    distance between its endpoints, clamped to the configured
//!    `[min,max]` range — close nodes talk in ~10–60 ms, cross-region
//!    links cost hundreds of ms;
//! 4. one landmark sits at each region centre and a node's locality is
//!    the landmark it measures the lowest latency to, exactly the
//!    measurement the paper assumes every peer can perform.
//!
//! Latencies are symmetric and deterministic, so the "transfer
//! distance" metric is well defined.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Identifier of a physical node in the underlay (index into the
/// topology's node table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network locality (the paper's `loc`), an integer in `[0, k)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Locality(pub u16);

impl Locality {
    /// The locality as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// How the sharded engine derives its epoch synchronization bounds
/// from the topology. An execution knob like
/// [`crate::event::EventQueueKind`]: results are bit-identical for
/// both — only the number of barrier rounds (and therefore wall
/// clock) changes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LookaheadKind {
    /// Per-shard-pair lookaheads: each pair's bound is the exact
    /// minimum latency between the two shards' locality point sets,
    /// and a shard's epoch runs to the earliest instant any *other*
    /// shard could still reach it — distant shard pairs synchronize
    /// less often.
    #[default]
    Matrix,
    /// The pre-matrix behaviour: one global epoch of
    /// [`Topology::cross_locality_lookahead`] length for every shard
    /// (kept for comparison runs and the parity tests).
    GlobalFloor,
}

impl LookaheadKind {
    /// Parse `"matrix"` or `"global"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "matrix" => Ok(LookaheadKind::Matrix),
            "global" => Ok(LookaheadKind::GlobalFloor),
            other => Err(format!("unknown lookahead kind {other:?} (matrix|global)")),
        }
    }
}

impl std::fmt::Display for LookaheadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LookaheadKind::Matrix => "matrix",
            LookaheadKind::GlobalFloor => "global",
        })
    }
}

/// A grid cell index used by the locality-distance computation.
type Cell = (usize, usize);

/// A point in the unit square used for latency embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Configuration for topology generation. Defaults reproduce Table 1
/// of the paper: 5000 nodes, 6 localities, 10–500 ms latencies.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Number of underlay nodes.
    pub nodes: usize,
    /// Number of network localities `k`.
    pub localities: usize,
    /// Minimum link latency in milliseconds.
    pub min_latency_ms: u64,
    /// Maximum link latency in milliseconds.
    pub max_latency_ms: u64,
    /// Standard deviation of a node's offset from its region centre
    /// (unit-square units). Smaller values give tighter localities.
    pub cluster_spread: f64,
    /// Fraction of nodes scattered uniformly instead of clustered
    /// (models poorly-connected stragglers).
    pub background_fraction: f64,
    /// Skew of the region population distribution. 0.0 = uniform; at
    /// 1.0 region `i` has weight proportional to `i + 1` (the paper's
    /// localities are non-uniformly populated).
    pub population_skew: f64,
    /// Minimum latency of any *cross-locality* link, in milliseconds
    /// (0 = no extra floor beyond `min_latency_ms`). Real inter-domain
    /// links have a higher base latency than intra-domain ones; the
    /// floor also determines the sharded engine's epoch length
    /// (lookahead): larger floors permit longer epochs and therefore
    /// less synchronization between shards. See
    /// [`Topology::cross_locality_lookahead`].
    pub inter_locality_floor_ms: u64,
    /// Storage backend of the engine's per-shard event queues. An
    /// execution knob, not a network-model parameter — it rides on the
    /// topology config because that is the one configuration object
    /// every engine construction path already receives. Results are
    /// bit-identical for both backends; see
    /// [`crate::event::EventQueueKind`].
    pub event_queue: crate::event::EventQueueKind,
    /// How the sharded engine bounds its epochs: the per-shard-pair
    /// lookahead matrix (default) or the single global floor. Another
    /// execution knob riding here for the same reason as
    /// `event_queue`; results are bit-identical for both.
    pub lookahead: LookaheadKind,
    /// Whether the sharded engine pins its worker threads to cores
    /// under the latency-aware placement ([`crate::affinity`]). A
    /// wall-clock knob only — placement moves threads, never events,
    /// so results are bit-identical with pinning on or off, and the
    /// engine degrades gracefully when the host denies affinity or
    /// has fewer cores than shards.
    pub pin: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            nodes: 5000,
            localities: 6,
            min_latency_ms: 10,
            max_latency_ms: 500,
            cluster_spread: 0.045,
            background_fraction: 0.05,
            population_skew: 1.0,
            inter_locality_floor_ms: 0,
            event_queue: crate::event::EventQueueKind::default(),
            lookahead: LookaheadKind::default(),
            pin: false,
        }
    }
}

impl TopologyConfig {
    /// A tiny topology suitable for unit tests (fast to generate).
    pub fn small_test() -> Self {
        TopologyConfig {
            nodes: 60,
            localities: 3,
            ..Default::default()
        }
    }

    /// Paper-scale topology (Table 1): 5000 nodes, 6 localities.
    pub fn paper() -> Self {
        TopologyConfig::default()
    }
}

/// The generated underlay: node coordinates, landmark positions, and
/// locality assignment.
#[derive(Clone, Debug)]
pub struct Topology {
    points: Vec<Point>,
    locality_of: Vec<Locality>,
    landmarks: Vec<Point>,
    min_latency_ms: u64,
    max_latency_ms: u64,
    inter_floor_ms: u64,
    /// Scale factor mapping unit-square distance to milliseconds.
    ms_per_unit: f64,
    populations: Vec<u32>,
    event_queue: crate::event::EventQueueKind,
    lookahead: LookaheadKind,
    pin: bool,
    /// Exact minimum latency (ms) between the point sets of every
    /// locality pair, row-major `k × k`; `u64::MAX` on the diagonal
    /// and for pairs involving an unpopulated locality (no link
    /// exists, so any bound is vacuously sound). Each entry is a hard
    /// lower bound on the latency of *any* link between the two
    /// localities — the sharded engine's per-pair lookahead.
    loc_min_lat_ms: Vec<u64>,
}

impl Topology {
    /// Generate a topology from `cfg`, deterministically from `seed`.
    pub fn generate(cfg: &TopologyConfig, seed: u64) -> Topology {
        assert!(cfg.nodes > 0, "topology needs at least one node");
        assert!(cfg.localities > 0, "topology needs at least one locality");
        assert!(
            cfg.min_latency_ms <= cfg.max_latency_ms,
            "min latency must not exceed max latency"
        );
        assert!(
            cfg.inter_locality_floor_ms <= cfg.max_latency_ms,
            "inter-locality floor must not exceed max latency"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_70_70);

        // Region centres on a circle of radius 0.38 around the square
        // centre: maximally separated for small k.
        let k = cfg.localities;
        let landmarks: Vec<Point> = (0..k)
            .map(|i| {
                let angle = (i as f64) * std::f64::consts::TAU / (k as f64);
                Point {
                    x: 0.5 + 0.38 * angle.cos(),
                    y: 0.5 + 0.38 * angle.sin(),
                }
            })
            .collect();

        // Non-uniform region weights: weight(i) = 1 + skew * i.
        let weights: Vec<f64> = (0..k)
            .map(|i| 1.0 + cfg.population_skew * i as f64)
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut points = Vec::with_capacity(cfg.nodes);
        for _ in 0..cfg.nodes {
            if rng.gen::<f64>() < cfg.background_fraction {
                points.push(Point {
                    x: rng.gen(),
                    y: rng.gen(),
                });
                continue;
            }
            // Weighted region choice.
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut region = k - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    region = i;
                    break;
                }
                pick -= *w;
            }
            let centre = landmarks[region];
            // Box-Muller Gaussian offset, clamped into the unit square.
            let (g1, g2) = gaussian_pair(&mut rng);
            points.push(Point {
                x: (centre.x + g1 * cfg.cluster_spread).clamp(0.0, 1.0),
                y: (centre.y + g2 * cfg.cluster_spread).clamp(0.0, 1.0),
            });
        }

        // Latency scale: the unit-square diagonal maps onto the full
        // latency range.
        let diag = std::f64::consts::SQRT_2;
        let ms_per_unit = (cfg.max_latency_ms - cfg.min_latency_ms) as f64 / diag;

        let mut topo = Topology {
            points,
            locality_of: Vec::new(),
            landmarks,
            min_latency_ms: cfg.min_latency_ms,
            max_latency_ms: cfg.max_latency_ms,
            inter_floor_ms: cfg.inter_locality_floor_ms,
            ms_per_unit,
            populations: vec![0; k],
            event_queue: cfg.event_queue,
            lookahead: cfg.lookahead,
            pin: cfg.pin,
            loc_min_lat_ms: Vec::new(),
        };

        // Landmark binning: locality = argmin latency-to-landmark.
        let localities: Vec<Locality> = (0..topo.points.len())
            .map(|i| {
                let p = topo.points[i];
                let best = topo
                    .landmarks
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        p.dist(**a)
                            .partial_cmp(&p.dist(**b))
                            .expect("distances are finite")
                    })
                    .map(|(j, _)| j)
                    .expect("at least one landmark");
                Locality(best as u16)
            })
            .collect();
        for l in &localities {
            topo.populations[l.idx()] += 1;
        }
        topo.locality_of = localities;
        topo.loc_min_lat_ms = topo.compute_locality_min_latencies();
        topo
    }

    /// Exact minimum distance between every pair of locality point
    /// sets (bichromatic closest pair), accelerated by a uniform grid:
    /// cell-level bounds first narrow the candidate cell pairs, then
    /// only near-boundary cells are compared point by point. Runs once
    /// per topology; a few milliseconds even at 100k nodes.
    fn compute_locality_min_latencies(&self) -> Vec<u64> {
        const GRID: usize = 64;
        let k = self.num_localities();
        let cell_of = |p: Point| -> Cell {
            let cx = ((p.x * GRID as f64) as usize).min(GRID - 1);
            let cy = ((p.y * GRID as f64) as usize).min(GRID - 1);
            (cx, cy)
        };
        let centre_of = |(cx, cy): Cell| Point {
            x: (cx as f64 + 0.5) / GRID as f64,
            y: (cy as f64 + 0.5) / GRID as f64,
        };
        // Two points of the same cell are at most one cell diagonal
        // apart from its centre combined, so cell-centre distance ±
        // one diagonal brackets every cross-cell point distance.
        let diag = std::f64::consts::SQRT_2 / GRID as f64;
        // Per-locality buckets: cell → point indices.
        let mut buckets: Vec<HashMap<Cell, Vec<usize>>> = vec![HashMap::new(); k];
        for (i, p) in self.points.iter().enumerate() {
            buckets[self.locality_of[i].idx()]
                .entry(cell_of(*p))
                .or_default()
                .push(i);
        }
        let mut out = vec![u64::MAX; k * k];
        for a in 0..k {
            for b in (a + 1)..k {
                let (ca, cb) = (&buckets[a], &buckets[b]);
                if ca.is_empty() || cb.is_empty() {
                    continue;
                }
                // Pass 1: cell-level upper bound on the pair minimum —
                // every non-empty cell pair contains a point pair no
                // farther than centre distance + diagonal. Bound-only,
                // no allocation: localities spanning many cells would
                // otherwise materialize a |Ca|·|Cb| cross product.
                let mut upper = f64::INFINITY;
                for cell_a in ca.keys() {
                    let pa = centre_of(*cell_a);
                    for cell_b in cb.keys() {
                        upper = upper.min(pa.dist(centre_of(*cell_b)) + diag);
                    }
                }
                // Pass 2: collect only the near-boundary cell pairs
                // whose lower bound can still beat that, then compare
                // their points exactly, nearest pairs first.
                let mut candidates: Vec<(f64, Cell, Cell)> = Vec::new();
                for cell_a in ca.keys() {
                    let pa = centre_of(*cell_a);
                    for cell_b in cb.keys() {
                        let lb = (pa.dist(centre_of(*cell_b)) - diag).max(0.0);
                        if lb <= upper {
                            candidates.push((lb, *cell_a, *cell_b));
                        }
                    }
                }
                candidates.sort_unstable_by(|x, y| x.0.total_cmp(&y.0));
                let mut best = f64::INFINITY;
                for (lb, cell_a, cell_b) in candidates {
                    if lb >= best {
                        break;
                    }
                    for &i in &ca[&cell_a] {
                        for &j in &cb[&cell_b] {
                            best = best.min(self.points[i].dist(self.points[j]));
                        }
                    }
                }
                // Same mapping as `latency_ms` (round, clamp, cross
                // floor) — monotone in distance, so applying it to the
                // exact minimum distance yields the exact minimum
                // latency of any link between the two localities.
                let lat = self.dist_to_latency_ms(best, true);
                out[a * k + b] = lat;
                out[b * k + a] = lat;
            }
        }
        out
    }

    /// Number of underlay nodes.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// The event-queue backend engines over this topology should use
    /// (from [`TopologyConfig::event_queue`]).
    pub fn event_queue(&self) -> crate::event::EventQueueKind {
        self.event_queue
    }

    /// Number of network localities `k`.
    pub fn num_localities(&self) -> usize {
        self.landmarks.len()
    }

    /// The locality a node belongs to (the paper: detected via latency
    /// measurements to landmarks).
    pub fn locality(&self, n: NodeId) -> Locality {
        self.locality_of[n.idx()]
    }

    /// Number of nodes assigned to `loc`.
    pub fn population(&self, loc: Locality) -> u32 {
        self.populations[loc.idx()]
    }

    /// All node ids in a locality (computed on demand).
    pub fn nodes_in(&self, loc: Locality) -> Vec<NodeId> {
        (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|n| self.locality(*n) == loc)
            .collect()
    }

    /// One-way link latency between two nodes, in milliseconds.
    /// Symmetric, deterministic, and clamped to the configured range.
    /// The latency of a node to itself is zero (local delivery).
    /// Cross-locality links are additionally floored at
    /// [`Topology::cross_locality_lookahead`], which is what makes the
    /// sharded engine's conservative epoch barrier sound.
    pub fn latency_ms(&self, a: NodeId, b: NodeId) -> u64 {
        if a == b {
            return 0;
        }
        let d = self.points[a.idx()].dist(self.points[b.idx()]);
        self.dist_to_latency_ms(d, self.locality_of[a.idx()] != self.locality_of[b.idx()])
    }

    /// The distance → latency mapping shared by [`Topology::latency_ms`]
    /// and the lookahead-matrix computation: affine in the embedding
    /// distance, rounded, clamped to the configured range, and floored
    /// for cross-locality links. Monotone non-decreasing in `d`.
    fn dist_to_latency_ms(&self, d: f64, cross_locality: bool) -> u64 {
        let ms = self.min_latency_ms as f64 + d * self.ms_per_unit;
        let ms = (ms.round() as u64).clamp(self.min_latency_ms, self.max_latency_ms);
        if cross_locality {
            ms.max(self.cross_floor_ms())
        } else {
            ms
        }
    }

    /// The effective cross-locality latency floor: the configured
    /// floor, at least 1 ms (so lookahead is always positive), and at
    /// most the configured maximum latency.
    fn cross_floor_ms(&self) -> u64 {
        self.inter_floor_ms.clamp(1, self.max_latency_ms.max(1))
    }

    /// A guaranteed lower bound on the latency of *any* cross-locality
    /// link: `max(min_latency, inter_locality_floor, 1)` milliseconds.
    ///
    /// This is the sharded engine's *lookahead*: a message sent at
    /// simulated time `t` between nodes of different localities (and
    /// therefore possibly different shards) can never arrive before
    /// `t + lookahead`, so shards that synchronize every `lookahead`
    /// milliseconds always exchange cross-shard messages a full epoch
    /// before they are due.
    pub fn cross_locality_lookahead(&self) -> SimDuration {
        SimDuration::from_ms(self.min_latency_ms.max(self.cross_floor_ms()))
    }

    /// The lookahead mode engines over this topology should run
    /// (from [`TopologyConfig::lookahead`]).
    pub fn lookahead_kind(&self) -> LookaheadKind {
        self.lookahead
    }

    /// Whether engines over this topology should pin shard threads to
    /// cores (from [`TopologyConfig::pin`]).
    pub fn pin_threads(&self) -> bool {
        self.pin
    }

    /// The exact minimum latency of any link between localities `a`
    /// and `b` (ms): the latency of the closest cross pair of their
    /// point sets. `u64::MAX` when `a == b` or either locality is
    /// unpopulated (no such link exists). Always at least
    /// [`Topology::cross_locality_lookahead`].
    pub fn min_inter_locality_latency_ms(&self, a: Locality, b: Locality) -> u64 {
        self.loc_min_lat_ms[a.idx() * self.num_localities() + b.idx()]
    }

    /// The sharded engine's per-shard-pair lookahead matrix under a
    /// [`Topology::shard_map`] assignment: entry `[from · shards + to]`
    /// is the minimum of [`Topology::min_inter_locality_latency_ms`]
    /// over the locality pairs the two shards hold — a hard lower
    /// bound (ms) on how long any message needs to travel from a node
    /// of shard `from` to a node of shard `to`. Diagonal entries are
    /// `u64::MAX` (a shard never constrains itself: its own events sit
    /// in its own queue in key order). Symmetric, like the latencies.
    pub fn shard_lookahead_ms(&self, shard_map: &[usize], shards: usize) -> Vec<u64> {
        let k = self.num_localities();
        assert_eq!(shard_map.len(), k, "one shard assignment per locality");
        let mut m = vec![u64::MAX; shards * shards];
        for la in 0..k {
            for lb in 0..k {
                let (sa, sb) = (shard_map[la], shard_map[lb]);
                if sa == sb {
                    continue;
                }
                let cell = &mut m[sa * shards + sb];
                *cell = (*cell).min(self.loc_min_lat_ms[la * k + lb]);
            }
        }
        m
    }

    /// Partition the localities over `shards` shards, balancing shard
    /// populations greedily (largest locality first onto the lightest
    /// shard). Returns `map[locality] = shard`; the number of shards
    /// actually used is `min(shards, k)`. Deterministic: ties resolve
    /// by locality and shard index.
    pub fn shard_map(&self, shards: usize) -> Vec<usize> {
        let k = self.num_localities();
        let s = shards.clamp(1, k);
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&l| (std::cmp::Reverse(self.populations[l]), l));
        let mut load = vec![0u64; s];
        let mut map = vec![0usize; k];
        for l in order {
            let target = (0..s)
                .min_by_key(|&j| (load[j], j))
                .expect("at least one shard");
            map[l] = target;
            load[target] += u64::from(self.populations[l]);
        }
        map
    }

    /// One-way link latency as a [`SimDuration`].
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        SimDuration::from_ms(self.latency_ms(a, b))
    }

    /// The configured minimum link latency (ms).
    pub fn min_latency_ms_cfg(&self) -> u64 {
        self.min_latency_ms
    }

    /// The configured maximum link latency (ms).
    pub fn max_latency_ms_cfg(&self) -> u64 {
        self.max_latency_ms
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }
}

/// One pair of independent standard Gaussian samples (Box-Muller).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::generate(&TopologyConfig::small_test(), 1)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(&TopologyConfig::small_test(), 9);
        let b = Topology::generate(&TopologyConfig::small_test(), 9);
        for n in a.node_ids() {
            assert_eq!(a.locality(n), b.locality(n));
            assert_eq!(a.latency_ms(NodeId(0), n), b.latency_ms(NodeId(0), n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Topology::generate(&TopologyConfig::small_test(), 1);
        let b = Topology::generate(&TopologyConfig::small_test(), 2);
        let same = a
            .node_ids()
            .all(|n| a.latency_ms(NodeId(0), n) == b.latency_ms(NodeId(0), n));
        assert!(!same, "seeds should change the embedding");
    }

    #[test]
    fn latency_bounds_and_symmetry() {
        let t = topo();
        for a in t.node_ids() {
            for b in t.node_ids() {
                let l = t.latency_ms(a, b);
                assert_eq!(l, t.latency_ms(b, a), "latency must be symmetric");
                if a == b {
                    assert_eq!(l, 0);
                } else {
                    assert!((10..=500).contains(&l), "latency {l} out of range");
                }
            }
        }
    }

    #[test]
    fn every_locality_populated_at_paper_scale() {
        let t = Topology::generate(&TopologyConfig::default(), 3);
        assert_eq!(t.num_localities(), 6);
        for l in 0..6 {
            assert!(t.population(Locality(l)) > 0, "locality {l} empty");
        }
    }

    #[test]
    fn populations_are_non_uniform() {
        let t = Topology::generate(&TopologyConfig::default(), 3);
        let pops: Vec<u32> = (0..6).map(|l| t.population(Locality(l))).collect();
        let min = *pops.iter().min().unwrap();
        let max = *pops.iter().max().unwrap();
        assert!(max > min, "populations should be skewed: {pops:?}");
    }

    #[test]
    fn intra_locality_latency_is_lower_than_inter() {
        let t = Topology::generate(&TopologyConfig::default(), 7);
        let mut intra = (0u64, 0u64);
        let mut inter = (0u64, 0u64);
        // Sample pairs deterministically.
        for i in (0..t.num_nodes() as u32).step_by(97) {
            for j in (0..t.num_nodes() as u32).step_by(89) {
                if i == j {
                    continue;
                }
                let (a, b) = (NodeId(i), NodeId(j));
                let l = t.latency_ms(a, b);
                if t.locality(a) == t.locality(b) {
                    intra = (intra.0 + l, intra.1 + 1);
                } else {
                    inter = (inter.0 + l, inter.1 + 1);
                }
            }
        }
        let intra_avg = intra.0 as f64 / intra.1 as f64;
        let inter_avg = inter.0 as f64 / inter.1 as f64;
        assert!(
            intra_avg * 2.0 < inter_avg,
            "locality structure too weak: intra {intra_avg:.1}ms inter {inter_avg:.1}ms"
        );
    }

    #[test]
    fn nodes_in_matches_population() {
        let t = topo();
        for l in 0..t.num_localities() as u16 {
            assert_eq!(
                t.nodes_in(Locality(l)).len() as u32,
                t.population(Locality(l))
            );
        }
    }

    #[test]
    fn shard_map_partitions_and_balances() {
        let t = Topology::generate(&TopologyConfig::default(), 3);
        for shards in [1usize, 2, 3, 6, 10] {
            let map = t.shard_map(shards);
            assert_eq!(map.len(), t.num_localities());
            let used = shards.min(t.num_localities());
            assert!(map.iter().all(|&s| s < used), "shard index out of range");
            // Every shard gets at least one locality when shards <= k.
            for s in 0..used {
                assert!(map.contains(&s), "shard {s} empty with {shards} shards");
            }
        }
        // One shard maps everything to shard 0.
        assert!(t.shard_map(1).iter().all(|&s| s == 0));
        // Deterministic.
        assert_eq!(t.shard_map(4), t.shard_map(4));
    }

    #[test]
    fn cross_locality_floor_applies_only_across_localities() {
        let cfg = TopologyConfig {
            nodes: 200,
            localities: 4,
            inter_locality_floor_ms: 120,
            ..Default::default()
        };
        let t = Topology::generate(&cfg, 5);
        assert_eq!(t.cross_locality_lookahead(), SimDuration::from_ms(120));
        let mut saw_intra_below_floor = false;
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a == b {
                    continue;
                }
                let l = t.latency_ms(a, b);
                if t.locality(a) != t.locality(b) {
                    assert!(l >= 120, "cross-locality link {a}->{b} below floor: {l}");
                } else {
                    saw_intra_below_floor |= l < 120;
                }
            }
        }
        assert!(
            saw_intra_below_floor,
            "floor should not inflate intra-locality links"
        );
    }

    #[test]
    fn default_floor_leaves_latencies_unchanged() {
        // With the default (0) floor the lookahead degrades to the
        // global minimum latency, and no link is inflated.
        let t = Topology::generate(&TopologyConfig::small_test(), 1);
        assert_eq!(t.cross_locality_lookahead(), SimDuration::from_ms(10));
    }

    /// Brute-force reference for the grid-accelerated computation.
    fn brute_min_inter_latency(t: &Topology, a: u16, b: u16) -> u64 {
        let mut best = u64::MAX;
        for u in t.node_ids() {
            for v in t.node_ids() {
                if t.locality(u) == Locality(a) && t.locality(v) == Locality(b) && a != b {
                    best = best.min(t.latency_ms(u, v));
                }
            }
        }
        best
    }

    #[test]
    fn locality_min_latency_is_exact() {
        for (seed, floor) in [(1u64, 0u64), (9, 120)] {
            let cfg = TopologyConfig {
                nodes: 120,
                localities: 4,
                inter_locality_floor_ms: floor,
                ..Default::default()
            };
            let t = Topology::generate(&cfg, seed);
            for a in 0..4u16 {
                for b in 0..4u16 {
                    let got = t.min_inter_locality_latency_ms(Locality(a), Locality(b));
                    if a == b {
                        assert_eq!(got, u64::MAX, "diagonal must be unconstrained");
                    } else {
                        assert_eq!(
                            got,
                            brute_min_inter_latency(&t, a, b),
                            "seed {seed} floor {floor}: pair ({a},{b}) not exact"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_lookahead_matrix_lower_bounds_every_cross_link() {
        let t = Topology::generate(&TopologyConfig::default(), 3);
        let shards = 3;
        let map = t.shard_map(shards);
        let m = t.shard_lookahead_ms(&map, shards);
        let global = t.cross_locality_lookahead().as_ms();
        for i in 0..shards {
            assert_eq!(m[i * shards + i], u64::MAX, "diagonal unconstrained");
            for j in 0..shards {
                if i != j {
                    assert_eq!(m[i * shards + j], m[j * shards + i], "symmetric");
                    assert!(
                        m[i * shards + j] >= global,
                        "pair lookahead below the global floor"
                    );
                }
            }
        }
        // Spot-check the bound against actual links (sampled).
        for a in (0..t.num_nodes() as u32).step_by(131).map(NodeId) {
            for b in (0..t.num_nodes() as u32).step_by(97).map(NodeId) {
                let (sa, sb) = (map[t.locality(a).idx()], map[t.locality(b).idx()]);
                if sa != sb {
                    assert!(t.latency_ms(a, b) >= m[sa * shards + sb]);
                }
            }
        }
    }

    #[test]
    fn lookahead_kind_parses_and_rides_the_config() {
        assert_eq!(
            LookaheadKind::parse("matrix").unwrap(),
            LookaheadKind::Matrix
        );
        assert_eq!(
            LookaheadKind::parse("global").unwrap(),
            LookaheadKind::GlobalFloor
        );
        assert!(LookaheadKind::parse("x").is_err());
        assert_eq!(format!("{}", LookaheadKind::Matrix), "matrix");
        assert_eq!(format!("{}", LookaheadKind::GlobalFloor), "global");
        let t = Topology::generate(
            &TopologyConfig {
                lookahead: LookaheadKind::GlobalFloor,
                ..TopologyConfig::small_test()
            },
            1,
        );
        assert_eq!(t.lookahead_kind(), LookaheadKind::GlobalFloor);
    }

    #[test]
    #[should_panic(expected = "floor must not exceed max latency")]
    fn floor_above_max_rejected() {
        let _ = Topology::generate(
            &TopologyConfig {
                inter_locality_floor_ms: 1000,
                ..Default::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_rejected() {
        let _ = Topology::generate(
            &TopologyConfig {
                nodes: 0,
                ..Default::default()
            },
            0,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Latency is symmetric, zero on the diagonal, and within the
        /// configured bounds for any generated topology.
        #[test]
        fn latency_laws(seed in 0u64..500, nodes in 2usize..40, k in 1usize..5) {
            let cfg = TopologyConfig { nodes, localities: k, ..Default::default() };
            let t = Topology::generate(&cfg, seed);
            for a in t.node_ids() {
                prop_assert_eq!(t.latency_ms(a, a), 0);
                for b in t.node_ids() {
                    prop_assert_eq!(t.latency_ms(a, b), t.latency_ms(b, a));
                    if a != b {
                        let l = t.latency_ms(a, b);
                        prop_assert!((10..=500).contains(&l));
                    }
                }
            }
        }

        /// The epoch barrier's correctness assumption: cross-locality
        /// latencies are symmetric and never below the computed
        /// lookahead, for any generated topology and floor.
        #[test]
        fn cross_locality_latency_at_least_lookahead(
            seed in 0u64..500,
            nodes in 2usize..40,
            k in 2usize..6,
            floor in 0u64..400,
        ) {
            let cfg = TopologyConfig {
                nodes,
                localities: k,
                inter_locality_floor_ms: floor,
                ..Default::default()
            };
            let t = Topology::generate(&cfg, seed);
            let lookahead = t.cross_locality_lookahead().as_ms();
            prop_assert!(lookahead >= 1, "lookahead must be positive");
            for a in t.node_ids() {
                for b in t.node_ids() {
                    prop_assert_eq!(t.latency_ms(a, b), t.latency_ms(b, a));
                    if a != b && t.locality(a) != t.locality(b) {
                        prop_assert!(
                            t.latency_ms(a, b) >= lookahead,
                            "cross-locality link below lookahead: {} < {}",
                            t.latency_ms(a, b), lookahead
                        );
                    }
                }
            }
        }

        /// The grid-accelerated per-locality-pair minimum latency is
        /// exact: it equals the brute-force minimum over all cross
        /// pairs, for any generated topology and floor.
        #[test]
        fn locality_min_latency_matches_brute_force(
            seed in 0u64..200,
            nodes in 2usize..50,
            k in 2usize..5,
            floor in 0u64..300,
        ) {
            let cfg = TopologyConfig {
                nodes,
                localities: k,
                inter_locality_floor_ms: floor,
                ..Default::default()
            };
            let t = Topology::generate(&cfg, seed);
            for a in 0..k as u16 {
                for b in 0..k as u16 {
                    let got = t.min_inter_locality_latency_ms(Locality(a), Locality(b));
                    if a == b {
                        prop_assert_eq!(got, u64::MAX);
                    } else {
                        let mut brute = u64::MAX;
                        for u in t.node_ids() {
                            for v in t.node_ids() {
                                if t.locality(u) == Locality(a) && t.locality(v) == Locality(b) {
                                    brute = brute.min(t.latency_ms(u, v));
                                }
                            }
                        }
                        prop_assert_eq!(got, brute, "pair ({}, {})", a, b);
                    }
                }
            }
        }

        /// Every node gets a locality below k, and populations sum to
        /// the node count.
        #[test]
        fn localities_partition_nodes(seed in 0u64..500, nodes in 1usize..60, k in 1usize..6) {
            let cfg = TopologyConfig { nodes, localities: k, ..Default::default() };
            let t = Topology::generate(&cfg, seed);
            let mut total = 0u32;
            for l in 0..k as u16 {
                total += t.population(Locality(l));
            }
            prop_assert_eq!(total as usize, nodes);
            for n in t.node_ids() {
                prop_assert!(t.locality(n).idx() < k);
            }
        }
    }
}
